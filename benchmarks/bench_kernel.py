"""DES-kernel + data-plane throughput at cluster scale.

The scenario is the control plane's steady-state diet: a real
:class:`~repro.cluster.cluster.Cluster` with ``n`` nodes, a real
:class:`~repro.yarn.rm.ResourceManager` heartbeating every simulated
second and running its liveness check, a progress sampler recording
cluster series every five seconds, and a mid-run network-loss storm
that takes out 1% of the fleet (declared lost by the RM 70 s later,
exercising periodic shutdown, columnar slot state and trace logging).

Three implementations run the same workload:

- ``reference``: the pre-overhaul generator kernel
  (``REPRO_KERNEL=reference``) with the scalar data plane — the
  original baseline, swept only at <= 1024 nodes.
- ``pooled``: the pooled/batched kernel with the scalar per-object
  data plane (``REPRO_DATA_PLANE=reference``): one pure periodic per
  NM heartbeat, python loops in the liveness tick.
- ``columnar``: the pooled kernel with the columnar data plane — one
  batched heartbeat stamp, one vectorized liveness scan, O(1) heap
  entries for the whole control plane.

Speedups are only admissible because the trace digests are
byte-identical across all modes — same events, same series, same
ordering. Throughput is *model events per wall second* with a common
numerator: every mode divides the pooled/scalar run's kernel event
count by its own wall time, so the columnar plane (which deliberately
schedules ~n fewer kernel events for the same modelled behaviour) is
credited for simulating the same cluster-second, not penalised for
scheduling less.

Numbers land in ``BENCH_kernel.json`` at the repo root. Acceptance:
>=3x events/sec for columnar over pooled at 4096+ nodes, identical
digests everywhere, and a sub-linear events/sec degradation curve (no
O(n^2) cliff). ``--smoke [--nodes N]`` (script mode, used by CI) runs
a single equivalence check without touching the JSON.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.metrics.trace import ProgressSampler, Trace
from repro.sim.core import Simulator
from repro.yarn.rm import ResourceManager

NODE_COUNTS = [64, 256, 1024, 4096, 10000]
#: The generator-kernel baseline is too slow to sweep past this.
REFERENCE_MAX_NODES = 1024
HORIZON = 600.0
SAMPLE_INTERVAL = 5.0
REPEATS = 3
REPEATS_AT_SCALE = 2  # 4096+ nodes: runs are seconds long, noise amortizes

_MODE_ENV = {
    "reference": {"REPRO_KERNEL": "reference", "REPRO_DATA_PLANE": "reference"},
    "pooled": {"REPRO_KERNEL": None, "REPRO_DATA_PLANE": "reference"},
    "columnar": {"REPRO_KERNEL": None, "REPRO_DATA_PLANE": None},
}


def _cluster_block(sim: Simulator, rm: ResourceManager):
    """Batched sampler probe: live-node count and worst heartbeat lag.

    One pass over the RM's node state per tick. The columnar branch is
    two reductions over the columns; the scalar branch is the python
    loop the per-name probes used to run twice. Both produce identical
    values, so series (and digests) agree across planes.
    """

    def block():
        cols = rm.columns
        if cols is not None:
            n = cols.size
            used = cols.used[:n]
            live = int((used & ~cols.col("lost")[:n]).sum())
            lag = sim.now - cols.col("last_heartbeat")[:n][used].min().item()
        else:
            nms = rm.node_managers.values()
            live = sum(not nm.lost for nm in nms)
            lag = sim.now - min(nm.last_heartbeat for nm in nms)
        return (("live_nodes", live), ("heartbeat_lag", lag))

    return block


def _loss_storm(sim: Simulator, cluster: Cluster, at: float, count: int):
    yield sim.timeout(at)
    for node in cluster.nodes[:count]:
        cluster.stop_network(node)


def run_workload(mode: str, nodes: int, horizon: float = HORIZON) -> dict:
    """One cluster control-plane run under the named implementation."""
    saved = {key: os.environ.get(key) for key in ("REPRO_KERNEL", "REPRO_DATA_PLANE")}
    for key, value in _MODE_ENV[mode].items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    try:
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=nodes))
        trace = Trace(sim)
        # node_lost is the storm's high-volume kind: columnar rows
        # (capacity 64, so the 10k-node storm of 100 crosses a
        # doubling boundary) instead of per-event objects.
        trace.columnar("node_lost", capacity=64, node="i8")
        # Time the control plane, not cluster construction: RM build
        # (NM allocation + heartbeat registration) counts, node/device
        # object construction does not.
        t0 = time.perf_counter()
        rm = ResourceManager(sim, cluster)
        rm.node_lost_listeners.append(
            lambda node: trace.log("node_lost", node=node.node_id))
        sampler = ProgressSampler(sim, trace, interval=SAMPLE_INTERVAL)
        sampler.add_probe_block(_cluster_block(sim, rm))
        sampler.start()
        sim.process(_loss_storm(sim, cluster, at=horizon / 2,
                                count=max(1, nodes // 100)),
                    name="loss-storm")
        sim.run(until=horizon)
        wall = time.perf_counter() - t0
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return {
        "mode": mode,
        "model_events": sim._seq,
        "wall_seconds": wall,
        "digest": trace.digest(),
        "trace_events": trace.total_events(),
        "series_points": sum(len(p) for p in trace.series.values()),
    }


def _best_of(mode: str, nodes: int, horizon: float, repeats: int) -> dict:
    runs = [run_workload(mode, nodes, horizon) for _ in range(repeats)]
    digests = {r["digest"] for r in runs}
    assert len(digests) == 1, f"{mode} is not deterministic: {digests}"
    return min(runs, key=lambda r: r["wall_seconds"])


def compare_modes(nodes: int, horizon: float = HORIZON,
                  repeats: int = REPEATS, with_reference: bool = True) -> dict:
    modes = ["pooled", "columnar"]
    if with_reference and nodes <= REFERENCE_MAX_NODES:
        modes.insert(0, "reference")
    results = {mode: _best_of(mode, nodes, horizon, repeats) for mode in modes}
    pooled = results["pooled"]
    # Byte-identical digests: same trace events, same sampled series,
    # same ordering. The speedups are inadmissible without this.
    for mode, res in results.items():
        assert res["digest"] == pooled["digest"], (nodes, mode, results)
        assert res["trace_events"] == pooled["trace_events"], (nodes, mode, results)
        assert res["series_points"] == pooled["series_points"], (nodes, mode, results)
    row = {"nodes": nodes, "horizon": horizon, "identical_digests": True}
    for mode, res in results.items():
        # Common numerator: the pooled/scalar kernel event count is the
        # work of one cluster-second regardless of how few heap events
        # another mode needs to model it.
        eps = pooled["model_events"] / max(res["wall_seconds"], 1e-9)
        row[mode] = {
            "model_events": res["model_events"],
            "wall_seconds": round(res["wall_seconds"], 4),
            "events_per_sec": round(eps, 1),
            "trace_events": res["trace_events"],
            "series_points": res["series_points"],
        }
    row["columnar_vs_pooled_speedup"] = round(
        pooled["wall_seconds"] / max(results["columnar"]["wall_seconds"], 1e-9), 2)
    if "reference" in results:
        row["pooled_vs_reference_speedup"] = round(
            results["reference"]["wall_seconds"] / max(pooled["wall_seconds"], 1e-9), 2)
    return row


def _assert_sublinear(rows: list[dict], mode: str) -> None:
    """events/sec may degrade with cluster size, but slower than the
    node count grows — an O(n^2) hot loop would degrade ~linearly."""
    for prev, cur in zip(rows, rows[1:]):
        if mode not in prev or mode not in cur:
            continue
        node_ratio = cur["nodes"] / prev["nodes"]
        degradation = (prev[mode]["events_per_sec"]
                       / max(cur[mode]["events_per_sec"], 1e-9))
        assert degradation <= 0.75 * node_ratio, (
            f"{mode}: events/sec degraded {degradation:.2f}x from "
            f"{prev['nodes']} to {cur['nodes']} nodes (ratio {node_ratio:.1f})")


def test_kernel_throughput(report):
    rows = [compare_modes(nodes,
                          repeats=REPEATS if nodes <= 1024 else REPEATS_AT_SCALE)
            for nodes in NODE_COUNTS]

    payload = {
        "horizon": HORIZON,
        "sample_interval": SAMPLE_INTERVAL,
        "repeats": REPEATS,
        "repeats_at_scale": REPEATS_AT_SCALE,
        "events_per_sec_numerator": "pooled model_events (common across modes)",
        "identical_digests": all(r["identical_digests"] for r in rows),
        "sweep": rows,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    report("DES kernel + data plane — columnar vs scalar vs reference",
           json.dumps(payload, indent=2))

    # Acceptance: >=3x model-events/sec for the columnar plane over the
    # pooled/scalar kernel at 4096+ nodes, sub-linear scaling curves.
    for row in rows:
        if row["nodes"] >= 4096:
            assert row["columnar_vs_pooled_speedup"] >= 3.0, row
    _assert_sublinear(rows, "pooled")
    _assert_sublinear(rows, "columnar")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="single digest-equivalence check (CI); "
                             "no BENCH_kernel.json update")
    parser.add_argument("--nodes", type=int, default=32,
                        help="cluster size for --smoke (default 32)")
    args = parser.parse_args(argv)
    if args.smoke:
        row = compare_modes(nodes=args.nodes, horizon=120.0, repeats=1,
                            with_reference=args.nodes <= 256)
        print(f"smoke ok at {args.nodes} nodes: digests identical across modes, "
              f"columnar vs pooled speedup {row['columnar_vs_pooled_speedup']}x "
              f"({row['pooled']['model_events']} pooled kernel events)")
        return 0
    for nodes in NODE_COUNTS:
        print(json.dumps(compare_modes(nodes), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
