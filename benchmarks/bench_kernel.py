"""DES-kernel throughput: the pooled/batched hot path vs the
pre-overhaul reference kernel (``REPRO_KERNEL=reference``).

The scenario is the kernel's steady-state diet at scale — the
heartbeat+sampler workload that dominates ``REPRO_PROFILE`` runs once
the flow scheduler is fast: ``n`` node-manager heartbeats ticking every
simulated second (the ``pure`` periodic path), a progress sampler
recording cluster series into a :class:`Trace` every five seconds, and
a mid-run node-loss storm that stops 1% of the heartbeats (exercising
periodic shutdown and trace logging). The same workload runs under both
kernels; the speedup is only admissible because the trace digests are
byte-identical — same events, same series, same ordering.

Throughput is *model events per wall second*: every scheduled kernel
event (heartbeat ticks, sampler wakeups, fault timers) as counted by
the event sequence counter. Each (kernel, scale) cell is the best of
``REPEATS`` runs so a noisy core doesn't publish a phantom regression.

Numbers land in ``BENCH_kernel.json`` at the repo root; the acceptance
bar is >=3x events/sec at 1024 nodes with identical digests. ``--smoke``
(script mode, used by CI) runs the 32-node equivalence check only,
without touching the JSON.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.metrics.trace import ProgressSampler, Trace
from repro.sim.core import Simulator

NODE_COUNTS = [64, 256, 1024]
HORIZON = 600.0
HEARTBEAT_INTERVAL = 1.0
SAMPLE_INTERVAL = 5.0
REPEATS = 3


class _NodeManager:
    """Heartbeat bookkeeping, shaped like ``yarn.rm`` node state."""

    __slots__ = ("name", "last_heartbeat", "lost")

    def __init__(self, name: str) -> None:
        self.name = name
        self.last_heartbeat = 0.0
        self.lost = False


def _heartbeat(sim: Simulator, nm: _NodeManager):
    def tick():
        if nm.lost:
            return False
        nm.last_heartbeat = sim._now

    return tick


def _node_loss_storm(sim: Simulator, trace: Trace, nms, at: float, count: int):
    yield sim.timeout(at)
    for nm in nms[:count]:
        nm.lost = True
        trace.log("node_lost", node=nm.name, at=sim.now)


def run_workload(kernel: str, nodes: int, horizon: float = HORIZON) -> dict:
    """One heartbeat+sampler run under the named kernel."""
    previous = os.environ.get("REPRO_KERNEL")
    if kernel == "reference":
        os.environ["REPRO_KERNEL"] = "reference"
    else:
        os.environ.pop("REPRO_KERNEL", None)
    try:
        sim = Simulator()
        trace = Trace(sim)
        nms = [_NodeManager(f"node{i}") for i in range(nodes)]
        t0 = time.perf_counter()
        for nm in nms:
            # pure: the tick only stamps last_heartbeat — never schedules.
            sim.periodic(HEARTBEAT_INTERVAL, _heartbeat(sim, nm),
                         pure=True, name=f"hb:{nm.name}")
        sampler = ProgressSampler(sim, trace, interval=SAMPLE_INTERVAL)
        sampler.add_probe("live_nodes",
                          lambda: sum(not nm.lost for nm in nms))
        sampler.add_probe("heartbeat_lag",
                          lambda: sim.now - min(nm.last_heartbeat for nm in nms))
        sampler.start()
        sim.process(_node_loss_storm(sim, trace, nms, at=horizon / 2,
                                     count=max(1, nodes // 100)),
                    name="loss-storm")
        sim.run(until=horizon)
        wall = time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous
    events = sim._seq
    return {
        "kernel": kernel,
        "model_events": events,
        "wall_seconds": wall,
        "events_per_sec": events / max(wall, 1e-9),
        "digest": trace.digest(),
        "trace_events": len(trace.events),
        "series_points": sum(len(p) for p in trace.series.values()),
    }


def _best_of(kernel: str, nodes: int, horizon: float, repeats: int) -> dict:
    runs = [run_workload(kernel, nodes, horizon) for _ in range(repeats)]
    digests = {r["digest"] for r in runs}
    assert len(digests) == 1, f"{kernel} kernel is not deterministic: {digests}"
    return min(runs, key=lambda r: r["wall_seconds"])


def compare_kernels(nodes: int, horizon: float = HORIZON,
                    repeats: int = REPEATS) -> dict:
    ref = _best_of("reference", nodes, horizon, repeats)
    new = _best_of("pooled", nodes, horizon, repeats)
    # Byte-identical digests: same trace events, same sampled series,
    # same ordering. The speedup is inadmissible without this.
    assert new["digest"] == ref["digest"], (nodes, ref, new)
    assert new["trace_events"] == ref["trace_events"], (nodes, ref, new)
    assert new["series_points"] == ref["series_points"], (nodes, ref, new)
    return {
        "nodes": nodes,
        "horizon": horizon,
        "identical_digests": True,
        "reference": {k: (round(v, 4) if isinstance(v, float) else v)
                      for k, v in ref.items() if k != "digest"},
        "pooled": {k: (round(v, 4) if isinstance(v, float) else v)
                   for k, v in new.items() if k != "digest"},
        "events_per_sec_speedup": round(
            new["events_per_sec"] / max(ref["events_per_sec"], 1e-9), 2),
    }


def test_kernel_throughput(report):
    rows = [compare_kernels(nodes) for nodes in NODE_COUNTS]

    payload = {
        "heartbeat_interval": HEARTBEAT_INTERVAL,
        "sample_interval": SAMPLE_INTERVAL,
        "repeats": REPEATS,
        "identical_digests": all(r["identical_digests"] for r in rows),
        "sweep": rows,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    report("DES kernel — pooled/batched hot path vs reference kernel",
           json.dumps(payload, indent=2))

    # Acceptance: >=3x model-events/sec on the 1024-node workload.
    big = rows[-1]
    assert big["nodes"] == 1024
    assert big["events_per_sec_speedup"] >= 3.0, big


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="32-node digest-equivalence check only (CI); "
                             "no BENCH_kernel.json update")
    args = parser.parse_args(argv)
    if args.smoke:
        row = compare_kernels(nodes=32, horizon=120.0, repeats=1)
        print(f"smoke ok: digests identical across kernels, "
              f"events/sec speedup {row['events_per_sec_speedup']}x "
              f"({row['pooled']['model_events']} events)")
        return 0
    for nodes in NODE_COUNTS:
        print(json.dumps(compare_kernels(nodes), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
