"""Fig. 9 — SFM vs YARN under a node failure at varying reduce-phase
points, for the three benchmarks.

Paper: SFM shortens migration+recovery by 10.9/39.4/18.8% on average
(Terasort/Wordcount/Secondarysort); Wordcount with an early failure can
even beat the failure-free run.
"""

from repro.experiments import fig09_sfm_node_failure, format_table


def test_fig09_sfm_node_failure(benchmark, report):
    rows = benchmark.pedantic(fig09_sfm_node_failure, rounds=1, iterations=1)
    report("Fig. 9 — SFM vs YARN, node failure in reduce phase", format_table(
        ["workload", "system", "failure point", "job time (s)", "extra reduce failures"],
        [(r.workload, r.system, r.progress, r.job_time, r.additional_reduce_failures)
         for r in rows],
    ))
    paper_mean = {"terasort": 10.9, "wordcount": 39.4, "secondarysort": 18.8}
    for wl in paper_mean:
        by_p = {}
        for r in rows:
            if r.workload == wl and r.progress >= 0:
                by_p.setdefault(r.progress, {})[r.system] = r.job_time
        gains = [(1 - v["sfm"] / v["yarn"]) * 100 for v in by_p.values()
                 if "yarn" in v and "sfm" in v]
        mean_gain = sum(gains) / len(gains)
        print(f"{wl}: mean SFM improvement {mean_gain:.1f}% (paper: {paper_mean[wl]}%)")
        assert mean_gain > 0.0
