"""Fig. 2 — delayed execution from a single Map- vs ReduceTask failure.

Paper claim: map failure is negligible; a ReduceTask failure degrades
Terasort/Wordcount by >43.2%/>50.3%, growing with the failure point.
"""

from repro.experiments import fig02_delayed_execution, format_table


def test_fig02_delayed_execution(benchmark, report):
    rows = benchmark.pedantic(fig02_delayed_execution, rounds=1, iterations=1)
    report("Fig. 2 — job delay from a single task failure", format_table(
        ["workload", "failure", "progress", "job time (s)", "baseline (s)", "degradation %"],
        [(r.workload, r.failure, r.progress, r.job_time, r.baseline, r.degradation_pct)
         for r in rows],
    ))
    for wl in ("terasort", "wordcount"):
        map_deg = max(r.degradation_pct for r in rows
                      if r.workload == wl and r.failure == "maptask")
        red_deg = max(r.degradation_pct for r in rows
                      if r.workload == wl and r.failure == "reducetask")
        print(f"{wl}: worst map degradation {map_deg:.1f}%, "
              f"worst reduce degradation {red_deg:.1f}%")
        assert red_deg > map_deg + 10.0
