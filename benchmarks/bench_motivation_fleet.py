"""The §I motivating claim, measured: a trace-like fleet of jobs on a
shared cluster suffers node failures; stock YARN amplifies them into
ReduceTask failures and heavy delays, ALM contains them.

(Not a paper figure — it operationalises the Kavulya-trace argument the
introduction builds on.)
"""

from repro.experiments import format_table
from repro.experiments.motivation import motivation_fleet


def test_motivation_fleet(benchmark, report):
    # Fixed small scale: the fleet runs 4 whole shared-cluster
    # simulations (clean+faulty x 2 policies); the claim is qualitative
    # and does not need paper-sized inputs.
    results = benchmark.pedantic(
        motivation_fleet, rounds=1, iterations=1,
        kwargs={"num_jobs": 5, "scale": 0.3})
    rows = []
    for name, r in results.items():
        rows.append((name, r.mean_slowdown, r.worst_slowdown,
                     r.delayed_jobs(), r.failed_jobs, r.total_reduce_failures))
    report("Motivation — trace-like fleet under node failures", format_table(
        ["policy", "mean slowdown", "worst slowdown", "delayed >1.3x",
         "failed jobs", "reduce task failures"],
        rows,
    ))
    yarn, alm = results["yarn"], results["alm"]
    # ALM contains the damage: fewer reducer casualties and milder
    # fleet-level slowdown under identical failures.
    assert alm.total_reduce_failures <= yarn.total_reduce_failures
    assert alm.mean_slowdown <= yarn.mean_slowdown
    assert alm.failed_jobs <= yarn.failed_jobs
