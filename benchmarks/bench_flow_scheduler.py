"""Flow-scheduler hot-path throughput: incremental coalescing vs the
eager full-recompute reference (the seed implementation).

The scenario is the simulator's worst case — a shuffle wave: every
reachable node fetches from ``FANIN`` peers at one instant (~4n
concurrent flows on an n-node cluster), sizes staggered so completions
arrive as a long stream of individual rate-change events, plus one
mid-wave node death (the failure-amplification path the paper studies).
The same scenario runs under both schedulers; wave-end and final
simulated times must match exactly — the speedup is only admissible
because the allocations are bit-identical.

Throughput is reported as *model events per wall second* (flow
admissions + completions + cancellations — a scheduler-independent
count of the work the scenario demands), alongside event-heap pushes,
which show the stale-timer traffic the cancellable timer eliminates.

A second sweep scales the *cluster* rather than the wave: the same
bounded shuffle window (128 active nodes) inside clusters of 512 to
10,000 nodes. Model work is constant, so events/sec staying flat is
direct evidence the admission/completion/cancellation hot loops carry
no O(cluster) term — only the once-per-wave reachable scan touches all
nodes, and that is a single vectorized pass over the liveness columns.

A third sweep is the *heavy-shuffle* case: one ring component of
window * fanin concurrent flows (3k-8k), completions streaming in, on
clusters of 512 to 10,000 nodes. Every completion's refill touches the
whole component, which is where the columnar scheduler's vectorized
max-min rounds beat the incremental scheduler's per-flow python loop
(acceptance: >=3x events/sec at >=4096 nodes, bit-identical times).

Numbers land in ``BENCH_flows.json`` at the repo root; the acceptance
bar is >=5x events/sec on the 128-node wave and a flat cluster-scaling
curve. ``--smoke`` (script mode, used by CI) runs the 8-node scenario
under reference/incremental/columnar schedulers and asserts exact
agreement without touching the JSON.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cluster import Cluster, ClusterSpec
from repro.cluster.node import MB
from repro.sim.core import Simulator

NODE_COUNTS = [8, 32, 128]
#: Cluster sizes for the fixed-window scaling sweep (default scheduler).
SCALING_NODE_COUNTS = [512, 4096, 10000]
SCALING_WINDOW = 128
FANIN = 4
#: Heavy-shuffle sweep: one large connected component per wave
#: (window * fanin concurrent flows in a ring), so every completion's
#: refill touches thousands of flows — the regime where the columnar
#: scheduler's vectorized max-min rounds beat the scalar loop.
#: (cluster size, shuffle-window size): bigger clusters run bigger
#: waves — the refill component grows with the window, which is where
#: the scalar per-flow loop falls behind the vectorized rounds.
HEAVY_SWEEP = [(512, 384), (4096, 768), (10000, 1024)]
HEAVY_WINDOW = 384
HEAVY_FANIN = 8


def _driver(sim: Simulator, cluster: Cluster, waves: int, kill_wave: int,
            wave_ends: list, window: int | None = None, fanin: int = FANIN):
    for w in range(waves):
        reachable = cluster.reachable_nodes()
        if window is not None:
            reachable = reachable[:window]
        n = len(reachable)
        flows = []
        with cluster.flows.batch():
            for i, dst in enumerate(reachable):
                for k in range(1, fanin + 1):
                    src = reachable[(i + k) % n]
                    if src is dst:
                        continue
                    size = MB * (32 + 16 * ((i * 7 + k * 13 + w * 3) % 8))
                    flows.append(cluster.net_transfer(
                        src, dst, size, name=f"wave{w}:{i}.{k}"))
        if w == kill_wave:
            yield sim.timeout(0.05)
            victim = reachable[n // 2]
            cluster.stop_network(victim)
            flows = [f for f in flows if not f.done.triggered or f.done.ok]
        yield sim.all_of([f.done for f in flows])
        wave_ends.append(sim.now)
    return sim.now


def run_scenario(scheduler: str, nodes: int, waves: int,
                 window: int | None = None, fanin: int = FANIN) -> dict:
    """One full shuffle-wave scenario under the named scheduler."""
    previous = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = scheduler
    try:
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=nodes, num_racks=2, seed=7))
        wave_ends: list = []
        t0 = time.perf_counter()
        done = sim.process(_driver(sim, cluster, waves, kill_wave=waves // 2,
                                   wave_ends=wave_ends, window=window,
                                   fanin=fanin))
        sim.run(done)
        wall = time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULER", None)
        else:
            os.environ["REPRO_SCHEDULER"] = previous
    stats = dict(cluster.flows.stats)
    model_events = stats["transfers"] + stats["completions"] + stats["cancels"]
    return {
        "finish_time": sim.now,
        "wave_ends": wave_ends,
        "wall_seconds": wall,
        "model_events": model_events,
        "events_per_sec": model_events / max(wall, 1e-9),
        "heap_pushes": sim._seq,
        "stats": stats,
    }


def run_scaling(nodes: int, waves: int = 3, window: int = SCALING_WINDOW) -> dict:
    """Fixed shuffle window inside an ``nodes``-node cluster, default
    (columnar) scheduler: constant model work, growing cluster."""
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=nodes, num_racks=2, seed=7))
    wave_ends: list = []
    t0 = time.perf_counter()
    done = sim.process(_driver(sim, cluster, waves, kill_wave=waves // 2,
                               wave_ends=wave_ends, window=window))
    sim.run(done)
    wall = time.perf_counter() - t0
    stats = cluster.flows.stats
    model_events = stats["transfers"] + stats["completions"] + stats["cancels"]
    return {
        "nodes": nodes,
        "window": window,
        "waves": waves,
        "model_events": model_events,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(model_events / max(wall, 1e-9), 1),
        "finish_time": round(sim.now, 6),
    }


def heavy_shuffle_row(nodes: int, waves: int = 2, window: int = HEAVY_WINDOW,
                      fanin: int = HEAVY_FANIN) -> dict:
    """Columnar vs incremental on one heavy-shuffle component.

    Exact (==) agreement on end/wave times and event counts is asserted
    — the speedup is only admissible because the columnar scheduler's
    allocations are bit-identical to the scalar ones.
    """
    window = min(window, nodes)
    inc = run_scenario("incremental", nodes, waves, window=window, fanin=fanin)
    col = run_scenario("columnar", nodes, waves, window=window, fanin=fanin)
    assert col["finish_time"] == inc["finish_time"], (nodes, inc, col)
    assert col["wave_ends"] == inc["wave_ends"], (nodes, inc, col)
    assert col["model_events"] == inc["model_events"], (nodes, inc, col)
    return {
        "nodes": nodes,
        "window": window,
        "fanin": fanin,
        "waves": waves,
        "flows": inc["stats"]["transfers"],
        "identical_completion_times": True,
        "incremental": {k: (round(v, 4) if isinstance(v, float) else v)
                        for k, v in inc.items() if k != "wave_ends"},
        "columnar": {k: (round(v, 4) if isinstance(v, float) else v)
                     for k, v in col.items() if k != "wave_ends"},
        "events_per_sec_speedup": round(
            col["events_per_sec"] / max(inc["events_per_sec"], 1e-9), 2),
    }


def compare_schedulers(nodes: int, waves: int) -> dict:
    ref = run_scenario("reference", nodes, waves)
    inc = run_scenario("incremental", nodes, waves)
    # Exact (==) agreement: same simulated end time, same wave-end
    # times, same event counts. No tolerance — the incremental
    # scheduler is only a valid optimisation if it is bit-identical.
    assert inc["finish_time"] == ref["finish_time"], (nodes, ref, inc)
    assert inc["wave_ends"] == ref["wave_ends"], (nodes, ref, inc)
    assert inc["model_events"] == ref["model_events"], (nodes, ref, inc)
    return {
        "nodes": nodes,
        "waves": waves,
        "flows": ref["stats"]["transfers"],
        "identical_completion_times": True,
        "reference": {k: (round(v, 4) if isinstance(v, float) else v)
                      for k, v in ref.items() if k != "wave_ends"},
        "incremental": {k: (round(v, 4) if isinstance(v, float) else v)
                        for k, v in inc.items() if k != "wave_ends"},
        "events_per_sec_speedup": round(
            inc["events_per_sec"] / max(ref["events_per_sec"], 1e-9), 2),
        "heap_push_reduction": round(
            ref["heap_pushes"] / max(inc["heap_pushes"], 1), 2),
    }


def test_flow_scheduler_throughput(report):
    rows = []
    for nodes in NODE_COUNTS:
        waves = 4 if nodes <= 32 else 2
        rows.append(compare_schedulers(nodes, waves))
    scaling = [run_scaling(nodes) for nodes in SCALING_NODE_COUNTS]
    heavy = [heavy_shuffle_row(nodes, window=window)
             for nodes, window in HEAVY_SWEEP]

    payload = {"fanin": FANIN, "sweep": rows, "cluster_scaling": scaling,
               "heavy_shuffle": heavy}
    out = Path(__file__).resolve().parents[1] / "BENCH_flows.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    report("Flow scheduler — incremental/coalesced vs eager reference",
           json.dumps(payload, indent=2))

    # Acceptance: >=5x model-events/sec on the 128-node shuffle wave.
    big = rows[-1]
    assert big["nodes"] == 128
    assert big["events_per_sec_speedup"] >= 5.0, big
    # Constant model work must not slow down with cluster size: an
    # O(cluster) term in the per-flow hot loops would sink events/sec
    # as nodes grow 512 -> 10,000 with the window fixed.
    assert all(row["model_events"] == scaling[0]["model_events"] for row in scaling)
    eps = [row["events_per_sec"] for row in scaling]
    assert min(eps) >= 0.5 * eps[0], scaling
    # Columnar acceptance: >=3x events/sec over the incremental
    # scheduler on the heavy-shuffle component at large cluster sizes.
    for row in heavy:
        if row["nodes"] >= 4096:
            assert row["events_per_sec_speedup"] >= 3.0, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="8-node equivalence check only (CI); "
                             "no BENCH_flows.json update")
    args = parser.parse_args(argv)
    if args.smoke:
        row = compare_schedulers(nodes=8, waves=3)
        heavy = heavy_shuffle_row(nodes=8, waves=2, window=8, fanin=4)
        print(f"smoke ok: {row['flows']} flows, completion times identical, "
              f"events/sec speedup {row['events_per_sec_speedup']}x; "
              f"columnar identical on {heavy['flows']} heavy-shuffle flows")
        return 0
    for nodes in NODE_COUNTS:
        row = compare_schedulers(nodes, 4 if nodes <= 32 else 2)
        print(json.dumps(row, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
