"""Durable campaign store: throughput, resume overhead, crash recovery.

Three numbers the campaign layer (``src/repro/campaign/``) must defend:

1. **Durability tax** — trials/second through a sqlite-backed store vs
   the same campaign on ``:memory:``. Per-trial WAL commits must cost a
   rounding error next to the trials themselves.
2. **Resume overhead** — re-running a *complete* campaign executes zero
   trials; the wall time of that pass is the fixed cost a crash-resume
   pays before its first fresh trial.
3. **Crash recovery** — SIGKILL a subprocess campaign around the
   midpoint, resume in-process, and require zero re-executed trials
   with a digest list bit-identical to an uninterrupted run.

Numbers land in ``BENCH_campaign.json`` at the repo root. ``--smoke``
(script mode, used by CI) runs the crash-recovery check on a smaller
campaign without touching the JSON.
"""

import argparse
import json
import os
import sqlite3
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.campaign import CampaignStore
from repro.faults.chaos import run_campaign

TRIALS = 24
SCALE = 0.5
SEED = 7

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _quiet(*_args, **_kwargs):
    pass


def run_once(store, seed: int, trials: int, scale: float) -> dict:
    t0 = time.perf_counter()
    summary = run_campaign(seed, trials, scale=scale, out_dir=None,
                           minimize=False, echo=_quiet, store=store)
    summary["bench_wall_seconds"] = time.perf_counter() - t0
    return summary


def measure_throughput(tmp: Path, seed: int, trials: int, scale: float) -> dict:
    run_once(None, seed, trials, scale)  # warm-up: worker pool fork cost
    durable = run_once(tmp / "throughput.db", seed, trials, scale)
    in_memory = run_once(None, seed, trials, scale)
    assert durable["digests"] == in_memory["digests"], \
        "durable and in-memory campaigns must be bit-identical"
    d_rate = trials / max(durable["bench_wall_seconds"], 1e-9)
    m_rate = trials / max(in_memory["bench_wall_seconds"], 1e-9)
    return {
        "trials": trials,
        "durable_trials_per_sec": round(d_rate, 3),
        "memory_trials_per_sec": round(m_rate, 3),
        "durability_overhead_pct": round(100.0 * (m_rate - d_rate) / m_rate, 2),
    }


def measure_resume_overhead(tmp: Path, seed: int, trials: int,
                            scale: float) -> dict:
    """Wall time of resuming a campaign with nothing left to run."""
    db = tmp / "resume.db"
    first = run_once(db, seed, trials, scale)
    resumed = run_once(db, seed, trials, scale)
    assert resumed["executed"] == 0 and resumed["skipped"] == trials, resumed
    assert resumed["digests"] == first["digests"]
    wall = resumed["bench_wall_seconds"]
    return {
        "trials": trials,
        "resume_wall_seconds": round(wall, 4),
        "resume_ms_per_stored_trial": round(1000.0 * wall / trials, 3),
    }


# -- crash recovery ----------------------------------------------------------

def _spawn_campaign(store: Path, seed: int, trials: int, scale: float):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_JOBS", None)  # serial child: finest checkpoint granularity
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "submit",
         "--store", str(store), "--seed", str(seed),
         "--trials", str(trials), "--scale", str(scale)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _trials_done(store: Path) -> int:
    try:
        conn = sqlite3.connect(store, timeout=5.0)
        try:
            return conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
        finally:
            conn.close()
    except sqlite3.Error:
        return 0


def check_crash_recovery(tmp: Path, seed: int, trials: int, scale: float,
                         attempts: int = 5) -> dict:
    """SIGKILL a subprocess campaign mid-run, resume, compare digests.

    Retries with a fresh store if the child finishes before the kill
    lands (possible on a fast machine with a small campaign).
    """
    threshold = max(2, trials // 2)
    for attempt in range(attempts):
        db = tmp / f"crash-{attempt}.db"
        proc = _spawn_campaign(db, seed, trials, scale)
        deadline = time.monotonic() + 300.0
        done_at_kill = None
        while time.monotonic() < deadline:
            done = _trials_done(db)
            if done >= threshold:
                proc.kill()
                proc.wait()
                done_at_kill = done
                break
            if proc.poll() is not None:
                break  # finished before the kill landed; retry
            time.sleep(0.02)
        else:
            proc.kill()
            proc.wait()
            raise AssertionError(f"campaign never reached {threshold} trials")
        if done_at_kill is None or done_at_kill >= trials:
            continue

        t0 = time.perf_counter()
        resumed = run_campaign(seed=seed, trials=trials, scale=scale,
                               out_dir=None, minimize=False, echo=_quiet,
                               store=db)
        resume_wall = time.perf_counter() - t0
        assert resumed["skipped"] >= done_at_kill, resumed
        assert resumed["executed"] == trials - resumed["skipped"], resumed
        with CampaignStore(db) as store:
            assert store.max_run_count(resumed["campaign_id"]) == 1, \
                "resume re-executed an already-completed trial"
        fresh = run_campaign(seed=seed, trials=trials, scale=scale,
                             out_dir=None, minimize=False, echo=_quiet)
        assert resumed["digests"] == fresh["digests"], \
            "resumed campaign diverged from the uninterrupted run"
        return {
            "trials": trials,
            "killed_at_trials": done_at_kill,
            "resumed_executed": resumed["executed"],
            "re_executed_trials": 0,
            "digests_bit_identical": True,
            "resume_wall_seconds": round(resume_wall, 3),
        }
    raise AssertionError(
        f"campaign finished before SIGKILL in all {attempts} attempts; "
        "raise --trials")


def collect(trials: int) -> dict:
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        return {
            "seed": SEED,
            "scale": SCALE,
            "throughput": measure_throughput(tmp, SEED, trials, SCALE),
            "resume_overhead": measure_resume_overhead(tmp, SEED, trials, SCALE),
            "crash_recovery": check_crash_recovery(tmp, SEED + 1, trials, SCALE),
        }


def test_campaign_store_durability(report):
    row = collect(TRIALS)

    out = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
    out.write_text(json.dumps(row, indent=2) + "\n")

    report("Durable campaign store — throughput, resume, crash recovery",
           json.dumps(row, indent=2))

    assert row["crash_recovery"]["digests_bit_identical"], row
    assert row["crash_recovery"]["re_executed_trials"] == 0, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="crash-recovery check only, no BENCH JSON update")
    args = parser.parse_args(argv)
    if args.smoke:
        with tempfile.TemporaryDirectory() as tmpdir:
            row = check_crash_recovery(Path(tmpdir), seed=11, trials=16,
                                       scale=0.25)
        print(f"smoke ok: killed at {row['killed_at_trials']}/"
              f"{row['trials']} trials, resume executed "
              f"{row['resumed_executed']}, re-executed 0, "
              "digests bit-identical")
        return 0
    row = collect(TRIALS)
    out = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
    out.write_text(json.dumps(row, indent=2) + "\n")
    print(json.dumps(row, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
