"""Table II — speculative recovery scheduling curbs infectious node
failures.

Paper rows (Terasort, 20 reducers):
  YARN @10/20/30%: 2/5/3 additional failures, 429/533/516 s
  SFM  @10/20/30%: 0/0/0 additional failures, 435/449/445 s
"""

from repro.experiments import format_table, table2_spatial_recovery


def test_table2_spatial_recovery(benchmark, report):
    rows = benchmark.pedantic(table2_spatial_recovery, rounds=1, iterations=1)
    paper = {
        ("YARN", 0.1): (2, 429), ("SFM", 0.1): (0, 435),
        ("YARN", 0.2): (5, 533), ("SFM", 0.2): (0, 449),
        ("YARN", 0.3): (3, 516), ("SFM", 0.3): (0, 445),
    }
    report("Table II — spatial amplification, YARN vs SFM", format_table(
        ["type", "first failure", "add'l failures", "exec time (s)",
         "paper add'l", "paper time (s)"],
        [(r.system, f"{int(r.first_failure_point*100)}%", r.additional_failures,
          r.execution_time, *paper[(r.system, r.first_failure_point)])
         for r in rows],
    ))
    # SFM: zero additional failures at every point.
    for r in rows:
        if r.system == "SFM":
            assert r.additional_failures == 0
    # YARN: amplification visible somewhere in the sweep.
    assert sum(r.additional_failures for r in rows if r.system == "YARN") >= 1
    # SFM never slower than YARN when YARN amplified.
    for p in (0.1, 0.2, 0.3):
        y = next(r for r in rows if r.system == "YARN" and r.first_failure_point == p)
        s = next(r for r in rows if r.system == "SFM" and r.first_failure_point == p)
        if y.additional_failures > 0:
            assert s.execution_time <= y.execution_time
