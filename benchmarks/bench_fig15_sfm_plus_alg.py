"""Fig. 15 — benefits of enabling both ALG and SFM.

Paper: SFM+ALG further accelerates recovery vs SFM-only by 11.4%
(Terasort), 16.1% (Wordcount) and 25.8% (Secondarysort) — biggest for
Secondarysort because its logged reduce progress is the most expensive
to recompute.
"""

from repro.experiments import fig15_sfm_plus_alg, format_table
from repro.experiments.fig15_combined import further_improvement


def test_fig15_sfm_plus_alg(benchmark, report):
    rows = benchmark.pedantic(fig15_sfm_plus_alg, rounds=1, iterations=1)
    report("Fig. 15 — SFM-only vs SFM+ALG recovery", format_table(
        ["workload", "system", "job time (s)", "recovery time (s)"],
        [(r.workload, r.system, r.job_time, r.recovery_time) for r in rows],
    ))
    paper = {"terasort": 11.4, "wordcount": 16.1, "secondarysort": 25.8}
    gains = further_improvement(rows)
    for wl, pct in gains.items():
        print(f"{wl}: SFM+ALG further improvement {pct:+.1f}% (paper: {paper[wl]}%)")
    # The combined framework should not be slower anywhere, and must
    # show a clear benefit for at least the CPU-heavy workloads.
    assert all(pct >= -3.0 for pct in gains.values())
    assert max(gains.values()) > 3.0
