"""Fig. 8 — ALG vs YARN under single transient ReduceTask failures at
10..90% progress, for Terasort / Wordcount / Secondarysort.

Paper: ALG outperforms YARN by 15.4/20.1/15.9% on average, up to
28.9/40.8/31.3% at the 90% point, and stays close to failure-free.
"""

from repro.experiments import fig08_alg_task_failure, format_table
from repro.experiments.fig08_alg import mean_improvement


def test_fig08_alg_task_failure(benchmark, report):
    rows = benchmark.pedantic(fig08_alg_task_failure, rounds=1, iterations=1)
    report("Fig. 8 — ALG vs YARN, single ReduceTask failure", format_table(
        ["workload", "system", "failure point", "job time (s)"],
        [(r.workload, r.system, r.progress, r.job_time) for r in rows],
    ))
    paper_mean = {"terasort": 15.4, "wordcount": 20.1, "secondarysort": 15.9}
    for wl in ("terasort", "wordcount", "secondarysort"):
        gain = mean_improvement(rows, wl)
        print(f"{wl}: mean ALG improvement {gain:.1f}% (paper: {paper_mean[wl]}%)")
        assert gain > 0.0, f"ALG should beat YARN on {wl}"

    # ALG stays close to failure-free at the worst point.
    for wl in ("terasort", "wordcount", "secondarysort"):
        base = next(r.job_time for r in rows
                    if r.workload == wl and r.system == "failure-free")
        worst_alg = max(r.job_time for r in rows
                        if r.workload == wl and r.system == "alg")
        print(f"{wl}: worst ALG vs failure-free +{(worst_alg/base-1)*100:.1f}%")
