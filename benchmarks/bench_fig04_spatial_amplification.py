"""Fig. 4 — one node failure infects healthy ReduceTasks (stock YARN).

Paper: a single node crash (hosting MOFs, no ReduceTasks) at 176 s
causes 6 additional failures among the 20 healthy ReduceTasks.
"""

from repro.experiments import fig04_spatial_amplification, format_table


def test_fig04_spatial_amplification(benchmark, report):
    res = benchmark.pedantic(fig04_spatial_amplification, rounds=1, iterations=1)
    report("Fig. 4 — spatial amplification (stock YARN)", "\n".join([
        f"victim node               {res.victim}",
        f"crash time                {res.crash_time:8.1f} s",
        f"additional failures       {res.additional_failures:8d}     (paper: 6)",
        f"job time                  {res.job_time:8.1f} s",
        "",
        format_table(["time (s)", "reducer attempt", "node"],
                     [(t, a, n) for t, a, n in res.infected_failures]),
    ]))
    assert res.additional_failures >= 1, "expected infected healthy reducers"
