"""Ablations of ALM's design choices (beyond the paper's figures).

Decomposes SFM into its levers, sweeps the FCM cap (Algorithm 1 line
16), quantifies the liveness-timeout floor, and pits the §VI ISS
baseline against stock YARN and SFM.
"""

from repro.experiments import format_table
from repro.experiments.ablations import (
    ablate_alg_frequency_recovery,
    ablate_fcm_cap,
    ablate_liveness_timeout,
    ablate_sfm_components,
    compare_iss,
)


def _table(rows):
    return format_table(
        ["variant", "job time (s)", "extra reduce failures", "map reruns"],
        [(r.variant, r.job_time, r.additional_reduce_failures, r.map_reruns)
         for r in rows],
    )


def test_ablation_sfm_components(benchmark, report):
    rows = benchmark.pedantic(ablate_sfm_components, rounds=1, iterations=1)
    report("Ablation — SFM anti-amplification levers", _table(rows))
    by = {r.variant: r for r in rows}
    # Either lever alone already removes (or greatly reduces) the
    # amplification; the full mechanism removes it entirely.
    assert by["full sfm"].additional_reduce_failures == 0
    assert by["full sfm"].additional_reduce_failures <= by["yarn (neither)"].additional_reduce_failures
    assert by["wait only"].additional_reduce_failures <= by["yarn (neither)"].additional_reduce_failures


def test_ablation_fcm_cap(benchmark, report):
    rows = benchmark.pedantic(ablate_fcm_cap, rounds=1, iterations=1)
    report("Ablation — FCM budget under 5 concurrent reducer failures", _table(rows))
    by = {r.variant: r.job_time for r in rows}
    # FCM-mode recovery should not lose to regular-mode recovery.
    assert by["fcm_cap=10"] <= by["fcm_cap=0"] * 1.05


def test_ablation_liveness_timeout(benchmark, report):
    rows = benchmark.pedantic(ablate_liveness_timeout, rounds=1, iterations=1)
    report("Ablation — NM liveness timeout (detection floor)", _table(rows))
    times = [r.job_time for r in rows]
    # Longer expiry -> strictly later detection -> longer job.
    assert times[0] < times[1] < times[2]


def test_ablation_alg_frequency_recovery(benchmark, report):
    rows = benchmark.pedantic(ablate_alg_frequency_recovery, rounds=1, iterations=1)
    report("Ablation — ALG interval vs post-failure job time", _table(rows))
    times = [r.job_time for r in rows]
    # Sparser logging loses more work on a late failure.
    assert times[0] <= times[-1] + 1.0


def test_compare_iss_baseline(benchmark, report):
    rows = benchmark.pedantic(compare_iss, rounds=1, iterations=1)
    report("Baseline — ISS (Ko et al., §VI) vs YARN vs SFM", _table(rows))
    by = {r.variant: r.job_time for r in rows}
    # ISS pays replication overhead on the failure-free run...
    assert by["iss failure-free"] > by["yarn failure-free"] * 1.02
    # ...beats stock YARN on a node failure (no map re-execution)...
    assert by["iss node-failure"] < by["yarn node-failure"]
    # ...but does not reach SFM (no migration/FCM/logging).
    assert by["sfm node-failure"] <= by["iss node-failure"] * 1.05
