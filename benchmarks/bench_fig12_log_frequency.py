"""Fig. 12 — ALG performance across logging frequencies (Terasort).

Paper: performance is fairly stable across frequencies; more frequent
logging means less analytics progress to persist per tick.
"""

from repro.experiments import fig12_log_frequency, format_table


def test_fig12_log_frequency(benchmark, report):
    rows = benchmark.pedantic(fig12_log_frequency, rounds=1, iterations=1)
    report("Fig. 12 — ALG at different logging frequencies", format_table(
        ["log interval (s)", "job time (s)", "log ticks"],
        [(r.frequency, r.job_time, r.log_ticks) for r in rows],
    ))
    times = [r.job_time for r in rows]
    spread = (max(times) / min(times) - 1.0) * 100.0
    print(f"spread across frequencies: {spread:.1f}% (paper: 'fairly stable')")
    assert spread < 15.0
    # More frequent logging -> more ticks.
    assert rows[0].log_ticks >= rows[-1].log_ticks
