"""Fig. 11 — ALG overhead on failure-free runs (Terasort 10..320 GB).

Paper: negligible penalty at every size.
"""

from repro.experiments import fig11_alg_overhead, format_table
from repro.experiments.fig11_overhead import overhead_pct


def test_fig11_alg_overhead(benchmark, report):
    rows = benchmark.pedantic(fig11_alg_overhead, rounds=1, iterations=1)
    over = overhead_pct(rows)
    report("Fig. 11 — ALG failure-free overhead", format_table(
        ["input (GB, paper-scale)", "system", "job time (s)"],
        [(r.input_gb, r.system, r.job_time) for r in rows],
    ))
    for gb, pct in sorted(over.items()):
        print(f"{gb:.0f} GB: ALG overhead {pct:+.1f}% (paper: ~0%)")
        # "Negligible": small in either direction (ALG's rack-local
        # output pipeline can even come out marginally ahead of the
        # default cross-rack placement).
        assert -10.0 < pct < 8.0, f"ALG overhead not negligible at {gb} GB"
