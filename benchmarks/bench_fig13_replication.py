"""Fig. 13 — impact of ALG's replication level on the reduce stage.

Paper: rack-level replication delays the reduce phase ~18.4% at 320 GB;
cluster-level replication ~55.7%.
"""

from repro.experiments import fig13_replication_levels, format_table


def test_fig13_replication_levels(benchmark, report):
    rows = benchmark.pedantic(fig13_replication_levels, rounds=1, iterations=1)
    report("Fig. 13 — ALG replication level vs reduce-stage time", format_table(
        ["input (GB, paper-scale)", "level", "job time (s)", "reduce phase (s)"],
        [(r.input_gb, r.level, r.job_time, r.reduce_phase_time) for r in rows],
    ))
    by_gb = {}
    for r in rows:
        by_gb.setdefault(r.input_gb, {})[r.level] = r.reduce_phase_time
    biggest = max(by_gb)
    v = by_gb[biggest]
    rack_pct = (v["rack"] / v["node"] - 1.0) * 100.0
    cluster_pct = (v["cluster"] / v["node"] - 1.0) * 100.0
    print(f"at {biggest:.0f} GB: rack +{rack_pct:.1f}% (paper: +18.4%), "
          f"cluster +{cluster_pct:.1f}% (paper: +55.7%)")
    # Ordering must hold: cluster > rack >= node.
    assert cluster_pct > rack_pct
    assert cluster_pct > 5.0
    # Rack-level overhead grows with data size (small at small inputs).
    smallest = min(by_gb)
    small_rack_pct = (by_gb[smallest]["rack"] / by_gb[smallest]["node"] - 1.0) * 100.0
    assert rack_pct >= small_rack_pct - 2.0
