"""Fig. 3 — temporal repetition of a ReduceTask failure under stock YARN.

Paper timeline: crash at 48 s; detection after the ~70 s liveness
timeout; recovery launches at 129 s; the recovered ReduceTask is
declared failed a second time at ~180 s (51 s later).
"""

from repro.experiments import fig03_temporal_amplification


def test_fig03_temporal_amplification(benchmark, report):
    res = benchmark.pedantic(fig03_temporal_amplification, rounds=1, iterations=1)
    report("Fig. 3 — temporal amplification timeline (stock YARN)", "\n".join([
        f"crash time                {res.crash_time:8.1f} s   (paper: 48 s)",
        f"detection delay           {res.detection_delay:8.1f} s   (paper: ~70 s)",
        f"recovery start            {res.recovery_start:8.1f} s   (paper: 129 s)",
        f"repeat failures at        {[round(t, 1) for t in res.repeat_failure_times]}",
        f"second-failure delay      {res.second_failure_delay:8.1f} s   (paper: ~51 s)",
        f"job time                  {res.job_time:8.1f} s",
    ]))
    # Temporal amplification: at least one repeated failure of the
    # recovered ReduceTask, arriving well after the stall window.
    assert len(res.repeat_failure_times) >= 1
    assert 60.0 <= res.detection_delay <= 75.0
    assert res.second_failure_delay > 20.0
