"""Chaos campaign throughput and seed-reproducibility.

Runs one small campaign twice with the same seed and once with a
different seed: the same seed must reproduce the identical campaign —
the generated schedules *and* every per-trial trace digest — while a
different seed must diverge (otherwise the generator is ignoring its
seed). Also reports trials/second as a budget number for CI smoke
sizing.

Numbers land in ``BENCH_chaos.json`` at the repo root. ``--smoke``
(script mode, used by CI) runs the reproducibility check on a smaller
campaign without touching the JSON.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.faults.chaos import generate_trial, run_campaign

TRIALS = 20
SCALE = 0.5


def run_once(seed: int, trials: int) -> dict:
    t0 = time.perf_counter()
    summary = run_campaign(seed, trials, scale=SCALE, out_dir=None,
                           minimize=False, echo=lambda *_: None)
    wall = time.perf_counter() - t0
    return {
        "summary": summary,
        "wall_seconds": wall,
        "trials_per_sec": trials / max(wall, 1e-9),
    }


def check_reproducibility(seed: int, trials: int) -> dict:
    campaign = {"seed": seed, "scale": SCALE}
    schedules = [generate_trial(campaign, i) for i in range(trials)]
    a = run_once(seed, trials)
    b = run_once(seed, trials)
    assert [generate_trial(campaign, i) for i in range(trials)] == schedules
    assert a["summary"]["digests"] == b["summary"]["digests"], \
        "same campaign seed must reproduce identical trace digests"
    other = run_once(seed + 1, trials)
    assert other["summary"]["digests"] != a["summary"]["digests"], \
        "a different campaign seed must produce a different campaign"
    return {
        "seed": seed,
        "trials": trials,
        "violations": a["summary"]["violations"],
        "jobs_failed": a["summary"]["jobs_failed"],
        "by_policy": a["summary"]["by_policy"],
        "by_kind": a["summary"]["by_kind"],
        "digests_identical_across_runs": True,
        "wall_seconds": round(a["wall_seconds"], 3),
        "trials_per_sec": round(a["trials_per_sec"], 3),
    }


def test_chaos_campaign_reproducibility(report):
    row = check_reproducibility(seed=7, trials=TRIALS)

    out = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"
    out.write_text(json.dumps(row, indent=2) + "\n")

    report("Chaos campaign — seed reproducibility and throughput",
           json.dumps(row, indent=2))

    assert row["violations"] == 0, row
    assert len(row["by_policy"]) == 5, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller campaign, no BENCH_chaos.json update")
    args = parser.parse_args(argv)
    trials = 8 if args.smoke else TRIALS
    row = check_reproducibility(seed=7, trials=trials)
    if args.smoke:
        print(f"smoke ok: {trials} trials reproduce bit-identically, "
              f"{row['violations']} violations, "
              f"{row['trials_per_sec']:.2f} trials/sec")
    else:
        out = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"
        out.write_text(json.dumps(row, indent=2) + "\n")
        print(json.dumps(row, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
