"""Runner throughput: parallel fan-out and trial memoization vs the
serial baseline.

This bench establishes the perf baseline for the experiment pipeline
itself (not a paper figure): a multi-trial experiment is executed (a)
serially in-process, (b) fanned out across ``REPRO_JOBS`` worker
processes, and (c) twice against a trial cache (cold, then warm).
Per-seed trace digests must be bit-identical across all modes — the
speedup must never come at the cost of determinism.

On a single-core host process fan-out cannot beat the clock, and the
runner auto-selects serial execution there (``REPRO_FORCE_PARALLEL=1``
overrides, which is what the parallel-equivalence *test* uses). This
bench therefore measures the fan-out only when real cores exist, and
otherwise records *why* no parallel number is published instead of
publishing a slowdown as if it were a result.

Numbers land in ``BENCH_runner.json`` at the repo root. The >=2x
acceptance bar applies to the best available accelerator: process
fan-out on multi-core hosts, cache hits everywhere (a warm cache skips
the simulation entirely, so its speedup also bounds what re-running a
figure costs after an interrupted sweep).
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.common import ExperimentConfig, run_benchmark_trial
from repro.runner import TrialRunner, shutdown_pools
from repro.workloads import terasort

SEEDS = [2015 + 101 * k for k in range(6)]
TRIAL_KWARGS = dict(
    workload=terasort(20.0),
    system="yarn",
    base_config=ExperimentConfig(),
    job_name="bench-runner",
)


def _timed_run(jobs: int, cache_dir=None):
    runner = TrialRunner(jobs=jobs, cache_dir=cache_dir, verify=False)
    t0 = time.perf_counter()
    results = runner.run("bench_runner_throughput", run_benchmark_trial,
                         SEEDS, kwargs=TRIAL_KWARGS)
    return time.perf_counter() - t0, results


def test_runner_throughput(report, tmp_path):
    jobs = max(2, int(os.environ.get("REPRO_JOBS", "4") or 4))
    cores = os.cpu_count() or 1

    serial_s, serial_res = _timed_run(jobs=1)
    serial_digests = [r.payload["digest"] for r in serial_res]

    parallel_fields: dict
    if cores > 1:
        shutdown_pools()  # first parallel run pays the full pool spawn cost
        parallel_s, parallel_res = _timed_run(jobs=jobs)
        # Second fan-out reuses the cached worker pool: this is the
        # per-sweep-step cost an experiment driver actually pays.
        parallel_warm_s, parallel_warm_res = _timed_run(jobs=jobs)

        # Determinism: the parallel fan-out reproduces the serial
        # digests bit-for-bit, seed by seed.
        assert [r.payload["digest"] for r in parallel_res] == serial_digests
        assert [r.payload["digest"] for r in parallel_warm_res] == serial_digests

        parallel_speedup = serial_s / max(parallel_s, 1e-9)
        parallel_fields = {
            "parallel_seconds": round(parallel_s, 3),
            "parallel_warm_seconds": round(parallel_warm_s, 3),
            "parallel_speedup": round(parallel_speedup, 2),
            "pool_reuse_speedup": round(parallel_s / max(parallel_warm_s, 1e-9), 2),
            "digests_identical": True,
        }
    else:
        parallel_speedup = None
        parallel_fields = {
            "parallel_speedup": None,
            "parallel_skipped_reason": (
                "single-core host: process fan-out cannot beat the clock, "
                "runner auto-selects serial (REPRO_FORCE_PARALLEL=1 overrides; "
                "parallel-vs-serial digest equivalence is covered by "
                "tests/test_runner.py)"),
        }

    cache_dir = tmp_path / "trials"
    cold_s, cold_res = _timed_run(jobs=1, cache_dir=cache_dir)
    warm_s, warm_res = _timed_run(jobs=1, cache_dir=cache_dir)
    assert all(not r.cached for r in cold_res)
    assert all(r.cached for r in warm_res)
    assert [r.payload["digest"] for r in warm_res] == serial_digests

    cache_speedup = cold_s / max(warm_s, 1e-9)

    payload = {
        "trials": len(SEEDS),
        "workload": "terasort-20GB",
        "cores": cores,
        "jobs": jobs,
        "serial_seconds": round(serial_s, 3),
        **parallel_fields,
        "cache_cold_seconds": round(cold_s, 3),
        "cache_warm_seconds": round(warm_s, 3),
        "cache_speedup": round(cache_speedup, 2),
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_runner.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    report("Runner throughput — parallel fan-out + trial cache", json.dumps(payload, indent=2))
    if parallel_speedup is None:
        print(f"parallel-speedup assertion skipped: "
              f"{parallel_fields['parallel_skipped_reason']}")

    # The best accelerator must buy at least 2x over serial execution.
    # On single-core hosts process fan-out cannot beat the clock, so the
    # memoized path carries the bar there; on multi-core hosts the
    # fan-out itself is expected to clear it.
    best = max(filter(None, (parallel_speedup, cache_speedup)))
    assert best >= 2.0, payload
    if cores >= 2 * jobs:  # plenty of headroom: fan-out itself must win
        assert parallel_speedup >= 2.0, payload
