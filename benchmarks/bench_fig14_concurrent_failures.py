"""Fig. 14 — SFM recovery of multiple concurrent ReduceTask failures.

Paper: SFM cuts recovery time by up to 40.7/44.3/49.5% for 1/5/10
concurrent failures, and the improvement grows with the per-reducer
data size (37.2% at 1 GB -> 62.1% at 32 GB under 5 failures).
"""

from repro.experiments import fig14_concurrent_failures, format_table


def test_fig14_concurrent_failures(benchmark, report):
    rows = benchmark.pedantic(fig14_concurrent_failures, rounds=1, iterations=1)
    report("Fig. 14 — concurrent-failure recovery, YARN vs SFM", format_table(
        ["per-reducer (GB, paper-scale)", "failures", "system",
         "job time (s)", "recovery (s)"],
        [(r.per_reducer_gb, r.concurrent_failures, r.system, r.job_time,
          r.recovery_time) for r in rows],
    ))
    # Compute improvement per (size, count).
    by_key = {}
    for r in rows:
        by_key.setdefault((r.per_reducer_gb, r.concurrent_failures), {})[r.system] = r.recovery_time
    gains = {}
    for (gb, k), v in sorted(by_key.items()):
        if v.get("yarn", 0) > 0 and "sfm" in v:
            g = (1.0 - v["sfm"] / v["yarn"]) * 100.0
            gains[(gb, k)] = g
            print(f"{gb:5.1f} GB x {k:2d} failures: SFM recovery gain {g:+.1f}%")
    assert gains
    # SFM wins overall.
    assert sum(gains.values()) / len(gains) > 0
    # Improvement grows with data size (compare smallest vs largest at
    # the middle failure count where both exist).
    counts = sorted({k for _, k in gains})
    mid = counts[len(counts) // 2]
    sizes = sorted({gb for gb, k in gains if k == mid})
    if len(sizes) >= 2:
        assert gains[(sizes[-1], mid)] > gains[(sizes[0], mid)] - 5.0
