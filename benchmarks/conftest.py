"""Benchmark harness configuration.

Each bench regenerates one of the paper's tables/figures and prints the
rows the paper reports next to the paper's own numbers. Absolute times
are simulator seconds, not the authors' testbed seconds — the *shapes*
(who wins, by roughly what factor, where crossovers fall) are the
reproduction target (see EXPERIMENTS.md).

Input sizes default to half the paper's (REPRO_SCALE=0.5) to keep the
suite's wall time reasonable; set REPRO_SCALE=1.0 for the full-size
reproduction.
"""

import os

import pytest

os.environ.setdefault("REPRO_SCALE", "0.5")


def _print_report(title: str, body: str) -> None:
    print(f"\n=== {title} (REPRO_SCALE={os.environ['REPRO_SCALE']}) ===")
    print(body)


@pytest.fixture
def report():
    return _print_report
