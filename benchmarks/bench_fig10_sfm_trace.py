"""Fig. 10 — SFM eliminates temporal amplification.

Paper: on detecting the failure (~116 s), SFM first regenerates the
lost MOFs (delaying the recovery launch by ~18 s); the recovered
ReduceTask suffers no repeated timeouts/preemptions.
"""

from repro.experiments import fig10_sfm_trace


def test_fig10_sfm_trace(benchmark, report):
    res = benchmark.pedantic(fig10_sfm_trace, rounds=1, iterations=1)
    report("Fig. 10 — SFM recovery timeline vs stock YARN", "\n".join([
        "                          YARN        SFM",
        f"crash time          {res.yarn.crash_time:10.1f} {res.sfm.crash_time:10.1f}",
        f"detect time         {res.yarn.detect_time:10.1f} {res.sfm.detect_time:10.1f}",
        f"repeat failures     {len(res.yarn.repeat_failure_times):10d} {len(res.sfm.repeat_failure_times):10d}",
        f"job time            {res.yarn.job_time:10.1f} {res.sfm.job_time:10.1f}",
        f"SFM recovery-launch delay (MOF regeneration): "
        f"{res.recovery_launch_delay:.1f} s (paper: ~18 s)",
    ]))
    assert res.sfm_eliminates_repeat_failures
    assert len(res.yarn.repeat_failure_times) >= 1
    assert res.sfm.job_time < res.yarn.job_time
    assert 0.0 < res.recovery_launch_delay < 60.0
