"""Fig. 1 — recovery time: 1 ReduceTask failure vs N MapTask failures.

Paper claim: recovering from a single ReduceTask failure takes an order
of magnitude longer than recovering from the failure of 200 MapTasks.
"""

from repro.experiments import fig01_recovery_time, format_table


def test_fig01_recovery_time(benchmark, report):
    # Always at the paper's input size: the reduce-vs-map recovery gap
    # is what this figure is about, and it shrinks at toy scales where
    # a reducer redoes only seconds of work.
    rows = benchmark.pedantic(
        fig01_recovery_time, rounds=1, iterations=1,
        kwargs={"scale": 1.0, "reduce_failure_progress": 0.9},
    )
    report("Fig. 1 — recovery time vs failure type", format_table(
        ["failure", "count", "job time (s)", "recovery time (s)"],
        [(r.failure, r.count, r.job_time, r.recovery_time) for r in rows],
    ))
    reduce_rec = next(r for r in rows if r.failure == "reducetask").recovery_time
    map_recs = [r.recovery_time for r in rows if r.failure == "maptasks"]
    print(f"\nreduce recovery = {reduce_rec:.1f}s vs worst map recovery = "
          f"{max(map_recs):.1f}s ({reduce_rec / max(max(map_recs), 1e-9):.1f}x)")
    # Paper shape: one reduce failure costs several times the recovery
    # of even the largest map-failure wave (the paper reports an order
    # of magnitude on their testbed), and map recovery stays roughly
    # flat in the wave size because re-runs execute in parallel.
    assert reduce_rec > 1.5 * max(map_recs)
    assert max(map_recs) < 3 * max(min(map_recs), 1.0)
