#!/usr/bin/env python
"""Model your own MapReduce application and cluster.

Shows the full public configuration surface: a custom workload (a
log-aggregation job with a heavy combiner and skewed partitions), a
custom cluster (48 nodes, 4 racks, HDDs instead of SSDs), tuned YARN/
job parameters, the ALM recovery policy, and a mid-job rack-correlated
double node failure.

    python examples/custom_workload.py
"""

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.cluster import ClusterSpec, NodeSpec
from repro.cluster.node import GB, MB
from repro.faults import kill_node_at_progress
from repro.hdfs.hdfs import HdfsConfig, ReplicationLevel
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.workloads.workload import Workload
from repro.yarn.rm import YarnConfig


def main() -> None:
    # A log-aggregation job: 200 GB of text, combiner collapses 85% of
    # map output, 16 reducers with noticeably skewed partitions.
    workload = Workload(
        name="log-aggregation",
        input_size=200.0 * GB,
        num_reducers=16,
        map_selectivity=0.15,
        map_cpu_per_mb=0.08,
        reduce_cpu_per_mb=0.03,
        reduce_selectivity=0.2,
        partition_skew=0.35,
    )

    # A bigger, cheaper cluster: 48 nodes in 4 racks with HDD storage.
    cluster = ClusterSpec(
        num_nodes=48,
        num_racks=4,
        node=NodeSpec(cores=16, memory_mb=32 * 1024,
                      disk_bandwidth=160 * MB, nic_bandwidth=1150 * MB),
        core_bandwidth=8 * GB,
        seed=7,
    )

    rt = MapReduceRuntime(
        workload,
        conf=JobConf(reduce_memory_mb=6144, io_sort_factor=64),
        cluster_spec=cluster,
        yarn_config=YarnConfig(nm_liveness_timeout=70.0),
        hdfs_config=HdfsConfig(block_size=256 * MB, replication=3),
        policy=ALMPolicy(ALMConfig(
            alg=ALGConfig(frequency=15.0, level=ReplicationLevel.RACK),
            fcm_cap=6,
        )),
        job_name="log-aggregation",
    )

    # Two nodes fail mid-reduce-phase (correlated rack trouble).
    kill_node_at_progress(0.4, target="map-only").install(rt)
    kill_node_at_progress(0.55, target="reducer").install(rt)

    result = rt.run()
    print(f"job: {result.job_name} policy={result.policy} "
          f"success={result.success} elapsed={result.elapsed:.1f}s")
    for key, value in result.counters.items():
        print(f"  {key:28s} {value}")

    skewed = sorted(
        (t.attempts[-1].total_input_bytes / GB for t in rt.am.reduce_tasks),
    )
    print(f"\nper-reducer input (GB), skewed partitions: "
          f"min={skewed[0]:.2f} median={skewed[len(skewed)//2]:.2f} "
          f"max={skewed[-1]:.2f}")


if __name__ == "__main__":
    main()
