#!/usr/bin/env python
"""Multi-tenant cluster: three jobs share 20 workers while a node dies.

A Terasort, a Wordcount and a Secondarysort are submitted minutes
apart; mid-run, a node hosting Terasort data stops responding. The
Terasort runs under stock YARN recovery, the others under ALM — so the
same shared failure is handled both ways side by side.

    python examples/multi_tenant_cluster.py
"""

from repro.alm import ALMPolicy
from repro.faults import kill_node_at_progress
from repro.mapreduce.multijob import SharedCluster
from repro.metrics import failure_timeline
from repro.workloads import secondarysort, terasort, wordcount


def main() -> None:
    sc = SharedCluster()

    ts = sc.submit(terasort(50.0), job_name="terasort-yarn")
    sc.submit(wordcount(5.0), job_name="wordcount-alm",
              policy=ALMPolicy(), delay=30.0)
    sc.submit(secondarysort(5.0), job_name="secondarysort-alm",
              policy=ALMPolicy(), delay=60.0)

    # The node failure triggers off the Terasort's reduce progress.
    ts.install(kill_node_at_progress(0.3, target="map-only"))

    results = sc.run_all()

    print(f"{'job':22s} {'policy':6s} {'start':>7s} {'end':>8s} "
          f"{'elapsed':>8s} {'red.fails':>9s}")
    for r in results:
        print(f"{r.job_name:22s} {r.policy:6s} {r.start_time:7.1f} "
              f"{r.end_time:8.1f} {r.elapsed:8.1f} "
              f"{r.counters['failed_reduce_attempts']:9d}")

    print("\n--- Terasort (stock YARN) under the node failure ---")
    print(failure_timeline(results[0].trace))


if __name__ == "__main__":
    main()
