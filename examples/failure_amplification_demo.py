#!/usr/bin/env python
"""Demonstrate the paper's two failure-amplification phenomena — and
how the ALM framework cracks them down.

Scenario A (temporal, Figs. 3 & 10): Wordcount with a single
ReduceTask; the node hosting the reducer (and four MOFs) stops
responding mid-reduce. Stock YARN re-declares the recovered reducer
failed again and again; SFM regenerates the lost MOFs first and
recovers once.

Scenario B (spatial, Fig. 4 / Table II): Terasort with 20 ReduceTasks;
a node holding only map output fails, and under stock YARN the loss
infects healthy reducers on *other* nodes.

    python examples/failure_amplification_demo.py
"""

from repro.experiments.common import run_benchmark_job
from repro.faults import kill_node_at_progress
from repro.workloads import terasort, wordcount


def timeline(result, keys=("fault_injected", "node_lost", "sfm_regenerate",
                           "attempt_failed", "fcm_start", "reduce_commit")):
    for e in result.trace.events:
        if e.kind in keys:
            if e.kind == "attempt_failed" and e.data.get("type") != "reduce":
                continue
            detail = {k: v for k, v in e.data.items() if k not in ("job", "type")}
            print(f"    t={e.time:7.1f}s  {e.kind:22s} {detail}")


def scenario_temporal() -> None:
    print("=" * 72)
    print("Scenario A: temporal amplification (Wordcount, 1 ReduceTask)")
    print("=" * 72)
    for system in ("yarn", "sfm"):
        fault = kill_node_at_progress(0.35, target="reducer")
        _, res = run_benchmark_job(wordcount(10.0), system, faults=[fault],
                                   job_name=f"temporal-{system}")
        repeats = res.counters["failed_reduce_attempts"]
        print(f"\n  [{system.upper()}] job {res.elapsed:.1f}s, "
              f"repeated reduce failures: {repeats}")
        timeline(res)


def scenario_spatial() -> None:
    print("\n" + "=" * 72)
    print("Scenario B: spatial amplification (Terasort, 20 ReduceTasks)")
    print("=" * 72)
    for system in ("yarn", "sfm"):
        fault = kill_node_at_progress(0.2, target="map-only")
        _, res = run_benchmark_job(terasort(100.0), system, faults=[fault],
                                   job_name=f"spatial-{system}")
        extra = res.counters["failed_reduce_attempts"]
        print(f"\n  [{system.upper()}] job {res.elapsed:.1f}s, victim "
              f"{fault.victim_name}, infected healthy reducers: {extra}")
        if extra:
            for e in res.trace.of_kind("attempt_failed"):
                if e.data["type"] == "reduce":
                    print(f"    t={e.time:7.1f}s  {e.data['attempt']} on "
                          f"{e.data['node']} ({e.data['reason']})")


def main() -> None:
    scenario_temporal()
    scenario_spatial()
    print("\nStock YARN amplifies one node failure into many task failures;")
    print("SFM's proactive map regeneration + wait-don't-fail directive do not.")


if __name__ == "__main__":
    main()
