#!/usr/bin/env python
"""Sweep failure-injection points and compare recovery systems.

For each of the paper's three benchmarks, inject a transient ReduceTask
failure at 10..90% progress and compare stock YARN, ALG-only and the
full ALM framework (Fig. 8-style sweep, all systems side by side).

    python examples/alm_vs_yarn_sweep.py [--scale 0.5]
"""

import argparse

from repro.experiments.common import format_table, run_benchmark_job
from repro.faults import kill_reduce_at_progress
from repro.workloads import secondarysort, terasort, wordcount


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="input-size scale relative to the paper (default 0.5)")
    parser.add_argument("--points", type=float, nargs="+",
                        default=[0.3, 0.6, 0.9])
    args = parser.parse_args()

    workloads = [terasort(100.0 * args.scale), wordcount(10.0 * args.scale),
                 secondarysort(10.0 * args.scale)]
    systems = ["yarn", "alg", "alm"]

    rows = []
    for wl in workloads:
        _, base = run_benchmark_job(wl, "yarn", job_name=f"{wl.name}-base")
        rows.append((wl.name, "none", "-", f"{base.elapsed:.1f}", "-"))
        for p in args.points:
            for system in systems:
                fault = kill_reduce_at_progress(p)
                _, res = run_benchmark_job(wl, system, faults=[fault],
                                           job_name=f"{wl.name}-{system}-{p}")
                delay = (res.elapsed / base.elapsed - 1.0) * 100.0
                rows.append((wl.name, system, f"{int(p * 100)}%",
                             f"{res.elapsed:.1f}", f"{delay:+.1f}%"))
    print(format_table(
        ["workload", "system", "failure point", "job time (s)", "vs failure-free"],
        rows,
        title=f"Transient ReduceTask failure sweep (scale={args.scale})",
    ))


if __name__ == "__main__":
    main()
