#!/usr/bin/env python
"""Quickstart: run one MapReduce job on the simulated YARN cluster.

Builds the paper's 21-node testbed, runs a 10 GB Wordcount under stock
YARN recovery, and prints the job summary plus a phase timeline.

    python examples/quickstart.py
"""

from repro.mapreduce import run_job
from repro.workloads import wordcount


def main() -> None:
    workload = wordcount(input_gb=10.0)
    print(f"Running {workload.name}: {workload.input_size / 2**30:.0f} GB input, "
          f"{workload.num_reducers} reducer(s) on a 21-node simulated cluster...")

    result = run_job(workload, job_name="quickstart")

    print(f"\njob finished: success={result.success} "
          f"elapsed={result.elapsed:.1f} simulated seconds")
    print("counters:")
    for key, value in result.counters.items():
        print(f"  {key:28s} {value}")

    first_reduce = result.trace.first("attempt_start", type="reduce")
    print("\ntimeline:")
    print(f"  t={0.0:7.1f}s  job submitted ({result.counters['completed_maps']} maps)")
    if first_reduce is not None:
        print(f"  t={first_reduce.time:7.1f}s  first ReduceTask launched "
              f"(slowstart after 5% of maps)")
    for e in result.trace.of_kind("reduce_commit"):
        print(f"  t={e.time:7.1f}s  {e.data['task']} committed")
    print(f"  t={result.elapsed:7.1f}s  job complete")

    print("\nreduce-phase progress samples (every ~20s):")
    for t, v in result.trace.series_values("reduce_progress")[::20]:
        bar = "#" * int(v * 40)
        print(f"  t={t:7.1f}s  {v * 100:5.1f}%  {bar}")


if __name__ == "__main__":
    main()
