"""Metamorphic relations and their automatic shrinking path."""

import json

import pytest

from repro.verify import RELATIONS, Relation, run_all_relations, run_relation
from repro.verify.scenarios import SCENARIOS, Scenario, register


def _quiet(*_args, **_kw):
    pass


class TestRelations:
    def test_registry_meets_issue_floor(self):
        assert len(RELATIONS) >= 6

    @pytest.mark.parametrize("name", sorted(RELATIONS))
    def test_relation_holds(self, name):
        result = run_relation(name)
        assert result.ok, result.violations
        assert result.minimized_faults is None
        assert result.reproducer is None

    def test_run_all_relations_reports_every_one(self):
        lines = []
        results = run_all_relations(names=["post-completion-fault-is-noop"],
                                    echo=lines.append)
        assert len(results) == 1 and results[0].ok
        assert any("ok" in line for line in lines)

    def test_unknown_relation_rejected(self):
        from repro.sim.core import SimulationError

        with pytest.raises(SimulationError, match="unknown relation"):
            run_relation("no-such-relation")


@pytest.fixture
def shrink_scenario():
    """A scenario whose fault schedule holds one real culprit (an early
    reduce OOM) buried between two post-completion decoy crashes that
    never fire."""
    name = "shrink-probe"
    culprit = {"kind": "task-oom", "task_type": "reduce", "task_index": 0,
               "at_progress": 0.5}
    decoy = {"kind": "node-crash", "target": 0, "at_time": 90_000.0}
    register(Scenario(name, faults=(decoy, culprit, dict(decoy, target=1))))
    try:
        yield name, culprit
    finally:
        del SCENARIOS[name]


class TestShrinking:
    def test_failure_shrinks_to_single_culprit_fault(self, shrink_scenario,
                                                     tmp_path):
        name, culprit = shrink_scenario
        # A deliberately unsatisfiable oracle: it trips whenever the
        # fault schedule fires at all, so only the culprit sustains the
        # failure and the two decoys must be shrunk away.
        probe = Relation(
            name="shrink-probe-relation",
            scenario=name,
            description="test-only: fails iff any fault fires",
            transform=lambda spec: spec,
            oracle=lambda base, variant, *_: (
                ["synthetic: a fault fired"]
                if base["kinds"].get("fault_injected", 0) else []),
        )
        result = run_relation(probe, out_dir=tmp_path)
        assert not result.ok
        assert result.minimized_faults == [culprit]

        reproducer = json.loads((tmp_path / "metamorphic-shrink-probe-"
                                 "relation.json").read_text())
        assert reproducer["relation"] == "shrink-probe-relation"
        assert reproducer["scenario"] == name
        assert reproducer["minimized_faults"] == [culprit]
        assert reproducer["violations"] == ["synthetic: a fault fired"]
        assert len(reproducer["spec"]["faults"]) == 3

    def test_fault_independent_failure_shrinks_to_empty_schedule(
            self, shrink_scenario, tmp_path):
        """floor=0: a relation that fails regardless of the schedule
        shrinks all the way to zero faults."""
        name, _culprit = shrink_scenario
        probe = Relation(
            name="shrink-to-empty",
            scenario=name,
            description="test-only: always fails",
            transform=lambda spec: spec,
            oracle=lambda *_: ["synthetic: unconditional failure"],
        )
        result = run_relation(probe, out_dir=tmp_path)
        assert not result.ok
        assert result.minimized_faults == []
        assert (tmp_path / "metamorphic-shrink-to-empty.json").exists()
