"""Integration tests of the failure behaviours the paper studies:
task re-execution, silent death on unreachable nodes, fetch-failure
accounting, and temporal/spatial failure amplification under stock
YARN recovery."""

from repro.faults import (
    kill_maps_at_time,
    kill_node_at_progress,
    kill_reduce_at_progress,
)
from repro.faults.inject import TaskFault
from repro.mapreduce.config import JobConf
from repro.mapreduce.tasks import TaskType

from tests.conftest import make_runtime, tiny_workload


def run_with(faults, workload=None, nodes=6, seed=42, conf=None, policy=None):
    rt = make_runtime(workload, nodes=nodes, seed=seed, conf=conf, policy=policy)
    for f in faults:
        f.install(rt)
    return rt, rt.run()


class TestTaskReExecution:
    def test_reduce_oom_restarts_and_completes(self):
        fault = kill_reduce_at_progress(0.8)
        rt, res = run_with([fault])
        assert res.success
        assert fault.fired_at is not None
        assert res.counters["failed_reduce_attempts"] == 1
        assert len(rt.am.reduce_tasks[0].attempts) == 2

    def test_reduce_failure_delays_more_at_later_progress(self):
        base = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.08)).run().elapsed
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.08)
        early = run_with([kill_reduce_at_progress(0.70)], workload=wl())[1].elapsed
        late = run_with([kill_reduce_at_progress(0.95)], workload=wl())[1].elapsed
        assert late > early > base

    def test_map_failure_negligible_vs_reduce_failure(self):
        base = make_runtime().run().elapsed
        _, rm = run_with([TaskFault(TaskType.MAP, 0, 0.5)])
        _, rr = run_with([kill_reduce_at_progress(0.9)])
        map_delay = rm.elapsed - base
        reduce_delay = rr.elapsed - base
        assert reduce_delay > 3 * max(map_delay, 1.0)

    def test_many_map_failures_recover_quickly(self):
        # Fig. 1: recovery from many map failures is fast because maps
        # are short-lived and re-run in parallel.
        base = make_runtime(tiny_workload(input_mb=1024)).run().elapsed
        fault = kill_maps_at_time(8, at_time=5.0)
        rt, res = run_with([fault], workload=tiny_workload(input_mb=1024))
        assert res.success
        assert fault.killed > 0
        assert res.elapsed - base < 0.5 * base

    def test_job_fails_after_max_attempts(self):
        conf = JobConf(max_attempts=2)
        faults = [kill_reduce_at_progress(0.5), kill_reduce_at_progress(0.5)]
        # Two independent one-shot faults hit the first two attempts.
        rt = make_runtime(conf=conf)
        for f in faults:
            f.install(rt)
        res = rt.run()
        assert not res.success


class TestNodeLossDetection:
    def test_node_loss_detected_by_liveness_not_instantly(self):
        rt, res = run_with(
            [kill_node_at_progress(0.3, target="reducer")],
            workload=tiny_workload(reducers=1, reduce_cpu=0.2),
        )
        assert res.success
        fault_t = rt.trace.first("fault_injected").time
        lost_t = rt.trace.first("node_lost").time
        # Liveness timeout in the test fixture is 20s.
        assert lost_t - fault_t >= 19.0

    def test_tasks_on_unreachable_node_vanish_silently(self):
        rt, res = run_with(
            [kill_node_at_progress(0.3, target="reducer")],
            workload=tiny_workload(reducers=1, reduce_cpu=0.2),
        )
        fault_t = rt.trace.first("fault_injected").time
        lost_t = rt.trace.first("node_lost").time
        # No failure report arrives from the dead node in between.
        reports = [e for e in rt.trace.of_kind("attempt_failed")
                   if fault_t <= e.time < lost_t]
        assert reports == []


class TestTemporalAmplification:
    def test_recovered_reducer_fails_again_under_stock_yarn(self):
        # The recovered ReduceTask fetches from the dead node, stalls,
        # and is declared failed at least once more (Fig. 3).
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt, res = run_with([kill_node_at_progress(0.3, target="reducer")], workload=wl)
        assert res.success
        lost_t = rt.trace.first("node_lost").time
        post_failures = [e for e in rt.trace.of_kind("attempt_failed")
                         if e.time > lost_t and e.data["type"] == "reduce"]
        assert len(post_failures) >= 1
        assert all(e.data["reason"] == "shuffle-fetch-failures" for e in post_failures)

    def test_fetch_failure_reports_eventually_rerun_maps(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt, res = run_with([kill_node_at_progress(0.3, target="reducer")], workload=wl)
        assert res.counters["map_reruns"] > 0
        assert res.counters["fetch_failure_reports"] >= rt.am.conf.map_refetch_reports


def spatial_runtime(policy=None):
    """A miniature of the Fig. 4 setup: a slow NIC keeps the shuffle
    lagging the map phase, so a node loss strands unfetched MOFs."""
    from repro.cluster import ClusterSpec, NodeSpec
    from repro.cluster.node import GB, MB
    from repro.hdfs.hdfs import HdfsConfig
    from repro.mapreduce.job import MapReduceRuntime
    from repro.yarn.rm import YarnConfig

    spec = ClusterSpec(
        num_nodes=8, num_racks=2,
        node=NodeSpec(memory_mb=16 * 1024, disk_bandwidth=200 * MB, nic_bandwidth=60 * MB),
        core_bandwidth=1 * GB, seed=3,
    )
    conf = JobConf(reducer_stall_seconds=8, host_failure_penalty=4,
                   map_refetch_reports=8, fetch_retries_per_host=3, num_fetchers=2)
    wl = tiny_workload(input_mb=2048, reducers=4, reduce_cpu=0.15)
    return MapReduceRuntime(
        wl, conf=conf, cluster_spec=spec,
        yarn_config=YarnConfig(nm_liveness_timeout=20.0),
        hdfs_config=HdfsConfig(block_size=64 * MB),
        policy=policy,
    )


class TestSpatialAmplification:
    def test_healthy_reducers_infected_by_map_only_node_loss(self):
        rt = spatial_runtime()
        kill_node_at_progress(0.15, target="map-only").install(rt)
        res = rt.run()
        assert res.success
        fault = rt.trace.first("fault_injected")
        assert fault is not None
        victim = fault.data["node"]
        # Healthy reducers NOT on the dead node failed afterwards.
        infected = [
            e for e in rt.trace.of_kind("attempt_failed")
            if e.data["type"] == "reduce" and e.time > fault.time
            and e.data["node"] != victim
            and e.data["reason"] == "shuffle-fetch-failures"
        ]
        assert infected, "expected spatial amplification under stock YARN"

    def test_spatial_amplification_infects_multiple_reducers(self):
        rt = spatial_runtime()
        kill_node_at_progress(0.15, target="map-only").install(rt)
        res = rt.run()
        assert res.counters["failed_reduce_attempts"] >= 2
        assert res.counters["map_reruns"] > 0
