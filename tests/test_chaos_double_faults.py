"""Double-failure scenarios: a second fault landing while recovery from
the first is still in flight, plus the fault-engine plumbing that makes
those schedules safe to express (skip events, double-install rejection)."""

import pytest

from repro.alm.sfm import ALMPolicy
from repro.experiments.common import make_policy
from repro.faults import (
    EventTrigger,
    FaultInjector,
    NodeFault,
    PartitionFault,
    TaskFault,
)
from repro.invariants import check_invariants
from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


def run_checked(rt):
    res = rt.run()
    violations = check_invariants(rt, res)
    assert violations == [], violations
    return res


class TestCrashDuringRecovery:
    def test_second_crash_after_first_node_lost(self):
        """A second node dies 10 s after the RM declares the first lost —
        recovery of the first reducer is still in flight. Replication 3:
        with the default 2, losing two nodes for good can legitimately
        destroy both replicas of an input block and fail the job."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          policy=ALMPolicy(), replication=3)
        first = NodeFault(target="reducer", at_progress=0.4, mode="crash")
        second = NodeFault(target="reducer", mode="crash",
                           after=EventTrigger("node_lost", delay=10.0))
        FaultInjector(first, second).install(rt)
        res = run_checked(rt)
        assert res.success
        assert first.fired_at is not None and second.fired_at is not None
        assert second.victim_name != first.victim_name
        assert res.counters["nodes_lost"] == 2

    def test_second_crash_during_recovery_under_yarn(self):
        """Same schedule under stock YARN (re-execution recovery)."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          replication=3)
        first = NodeFault(target="reducer", at_progress=0.4, mode="crash")
        second = NodeFault(target="reducer", mode="crash",
                           after=EventTrigger("node_lost", delay=10.0))
        FaultInjector(first, second).install(rt)
        res = run_checked(rt)
        assert res.success
        assert second.fired_at is not None

    def test_oom_kills_the_recovery_attempt_too(self):
        """TaskFault(repeat=2) re-arms against the recovery attempt: the
        fault-during-recovery scenario at task granularity."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          policy=ALMPolicy())
        fault = TaskFault(TaskType.REDUCE, task_index=0, at_progress=0.5,
                          repeat=2)
        fault.install(rt)
        res = run_checked(rt)
        assert res.success
        assert len(fault.fired_times) == 2
        # Two distinct attempts of the same task were killed.
        oom_events = [e for e in rt.trace.of_kind("fault_injected")
                      if e.data.get("fault") == "task-oom"]
        assert len({e.data["attempt"] for e in oom_events}) == 2

    def test_crash_of_node_hosting_alg_logs(self):
        """Under ALG the reduce state lives in replicated analytics logs;
        crashing the reducer's node must still recover from a replica."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          policy=make_policy("alg"))
        fault = NodeFault(target="reducer", at_progress=0.5, mode="crash")
        fault.install(rt)
        res = run_checked(rt)
        assert res.success
        assert fault.fired_at is not None


class TestFaultPlumbing:
    def test_double_install_rejected(self):
        rt = make_runtime()
        inj = FaultInjector(TaskFault(TaskType.REDUCE, 0, 0.5))
        inj.install(rt)
        with pytest.raises(SimulationError, match="already installed"):
            inj.install(make_runtime())
        rt.run()

    def test_skipped_faults_are_logged_not_silent(self):
        """A fault whose victim is already down logs ``fault_skipped``
        with a reason instead of silently returning."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1))
        FaultInjector(
            NodeFault(target=1, at_time=5.0, mode="crash"),
            NodeFault(target=1, at_time=10.0, mode="crash"),   # already dead
            PartitionFault(node_indices=(1,), at_time=15.0, duration=5.0),
        ).install(rt)
        res = rt.run()
        assert res.success
        skipped = rt.trace.of_kind("fault_skipped")
        assert len(skipped) == 2
        reasons = {e.data["reason"] for e in skipped}
        assert reasons == {"victim already down", "all targets already unreachable"}
