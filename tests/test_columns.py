"""Columnar data plane: ColumnStore/Handle semantics, scalar-vs-
columnar RM parity, columnar trace buffers, batched sampler blocks and
the bulk flow/trace reads the activity watchdog uses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.metrics.trace import ProgressSampler, Trace
from repro.sim.columns import ColumnStore, LivenessColumns, columnar_enabled, data_plane_mode
from repro.sim.core import SimulationError, Simulator
from repro.yarn.rm import ResourceManager, YarnConfig

pytestmark = pytest.mark.tier1


# ---------------------------------------------------------------------------
# ColumnStore / Handle
# ---------------------------------------------------------------------------
class TestColumnStore:
    SCHEMA = {"hb": "f8", "lost": "?", "cap": "i8"}

    def test_alloc_zero_fills_and_applies_values(self):
        store = ColumnStore(self.SCHEMA, capacity=2)
        slot = store.alloc(hb=3.5)
        assert store.get(slot, "hb") == 3.5
        assert store.get(slot, "lost") is False
        assert store.get(slot, "cap") == 0

    def test_get_returns_python_scalars(self):
        store = ColumnStore(self.SCHEMA)
        slot = store.alloc(hb=1.0, lost=True, cap=7)
        assert type(store.get(slot, "hb")) is float
        assert type(store.get(slot, "lost")) is bool
        assert type(store.get(slot, "cap")) is int

    def test_unknown_column_rejected_before_mutation(self):
        store = ColumnStore(self.SCHEMA, capacity=1)
        with pytest.raises(SimulationError, match="unknown column"):
            store.alloc(hb=1.0, bogus=2)
        # The failed alloc must not have claimed the slot.
        assert len(store) == 0
        assert store.size == 0

    def test_growth_preserves_existing_cells(self):
        store = ColumnStore(self.SCHEMA, capacity=2)
        slots = [store.alloc(cap=i) for i in range(10)]
        assert store.capacity >= 10
        assert [store.get(s, "cap") for s in slots] == list(range(10))

    def test_free_then_alloc_reuses_same_slot_lifo(self):
        store = ColumnStore(self.SCHEMA)
        a = store.alloc(cap=1)
        b = store.alloc(cap=2)
        store.free(a)
        assert store.alloc(cap=3) == a  # LIFO reuse
        assert store.get(b, "cap") == 2

    def test_reused_slot_is_zero_filled(self):
        store = ColumnStore(self.SCHEMA)
        slot = store.alloc(hb=9.0, lost=True, cap=42)
        store.free(slot)
        again = store.alloc()
        assert again == slot
        assert store.get(again, "hb") == 0.0
        assert store.get(again, "lost") is False
        assert store.get(again, "cap") == 0

    def test_double_free_rejected(self):
        store = ColumnStore(self.SCHEMA)
        slot = store.alloc()
        store.free(slot)
        with pytest.raises(SimulationError, match="unallocated"):
            store.free(slot)

    def test_alloc_many_matches_alloc_loop(self):
        bulk = ColumnStore(self.SCHEMA, capacity=4)
        loop = ColumnStore(self.SCHEMA, capacity=4)
        caps = np.arange(10, dtype="i8")
        slots = bulk.alloc_many(10, hb=2.5, cap=caps)
        expected = [loop.alloc(hb=2.5, cap=int(c)) for c in caps]
        assert slots.tolist() == expected
        for name in self.SCHEMA:
            assert (bulk.col(name)[:10] == loop.col(name)[:10]).all()
        assert len(bulk) == len(loop) == 10

    def test_alloc_many_reuses_free_slots_first(self):
        store = ColumnStore(self.SCHEMA)
        slots = store.alloc_many(3, cap=np.array([1, 2, 3]))
        store.free(int(slots[1]))
        more = store.alloc_many(2, cap=np.array([8, 9]))
        assert int(more[0]) == int(slots[1])  # freed slot reused first
        assert store.get(int(more[0]), "cap") == 8

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["hb", "lost", "cap"]),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=10_000)),
        min_size=1, max_size=60))
    def test_handle_round_trip_matches_shadow_objects(self, ops):
        """Handle attribute writes/reads behave exactly like instance
        attributes on per-entity objects (the scalar plane)."""
        store = ColumnStore(self.SCHEMA, capacity=2)
        handles = [store.handle(store.alloc()) for _ in range(8)]
        shadow = [{"hb": 0.0, "lost": False, "cap": 0} for _ in range(8)]
        for name, idx, raw in ops:
            value = {"hb": raw / 16.0, "lost": bool(raw % 2), "cap": raw}[name]
            setattr(handles[idx], name, value)
            shadow[idx][name] = value
        for handle, expect in zip(handles, shadow):
            assert handle.hb == expect["hb"]
            assert handle.lost == expect["lost"]
            assert handle.cap == expect["cap"]

    def test_handle_unknown_attribute_raises_attributeerror(self):
        store = ColumnStore(self.SCHEMA)
        handle = store.handle(store.alloc())
        with pytest.raises(AttributeError):
            _ = handle.nope
        with pytest.raises(AttributeError):
            handle.nope = 1


class TestLivenessColumns:
    def test_update_maintains_reachable(self):
        cols = LivenessColumns(4)
        assert cols.reachable.all()
        cols.update(2, alive=True, network_up=False)
        assert cols.alive[2] and not cols.net[2] and not cols.reachable[2]
        cols.update(2, alive=True, network_up=True)
        assert cols.reachable[2]

    def test_node_setters_dual_write(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4))
        node = cluster.nodes[1]
        node.network_up = False
        assert not cluster.columns.reachable[1]
        assert cluster.columns.alive[1]
        node.network_up = True
        node.alive = False
        assert not cluster.columns.alive[1]
        assert not cluster.columns.reachable[1]

    def test_reachable_mask_tracks_fault_verbs(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=5))
        cluster.stop_network(cluster.nodes[3])
        cluster.crash_node(cluster.nodes[0])
        assert cluster.reachable_mask().tolist() == [False, True, True, False, True]


def test_data_plane_mode_validation(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_PLANE", "reference")
    assert data_plane_mode() == "reference"
    assert not columnar_enabled()
    monkeypatch.setenv("REPRO_DATA_PLANE", "columnar")
    assert columnar_enabled()
    monkeypatch.setenv("REPRO_DATA_PLANE", "bogus")
    with pytest.raises(SimulationError, match="REPRO_DATA_PLANE"):
        data_plane_mode()


# ---------------------------------------------------------------------------
# Scalar-vs-columnar RM parity
# ---------------------------------------------------------------------------
def _liveness_run(num_nodes: int) -> tuple[list[tuple[float, int]], str, int]:
    """Heartbeat + storm + heal workload; returns (node_lost samples,
    digest, live NM count) for whichever plane is active."""
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=num_nodes))
    trace = Trace(sim)
    rm = ResourceManager(sim, cluster, YarnConfig(nm_liveness_timeout=30.0))
    cluster.rejoin_listeners.append(rm.register_node)
    rm.node_lost_listeners.append(
        lambda node: trace.log("node_lost", node=node.node_id))
    victims = [cluster.nodes[i] for i in range(0, num_nodes, max(1, num_nodes // 8))]

    def storm():
        yield sim.timeout(40.0)
        for node in victims:
            cluster.stop_network(node)
        yield sim.timeout(100.0)
        for node in victims[::2]:
            cluster.restore_network(node)

    sim.process(storm(), name="storm")
    sim.run(until=300.0)
    lost = [(e.time, e["node"]) for e in trace.of_kind("node_lost")]
    live = sum(not nm.lost for nm in rm.node_managers.values())
    return lost, trace.digest(), live


@pytest.mark.parametrize("num_nodes", [64, 1024])
def test_liveness_tick_parity_scalar_vs_columnar(monkeypatch, num_nodes):
    """Same fault schedule, both planes: identical node_lost events (in
    order), identical digests, identical surviving-NM counts."""
    monkeypatch.setenv("REPRO_DATA_PLANE", "reference")
    scalar = _liveness_run(num_nodes)
    monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    columnar = _liveness_run(num_nodes)
    assert scalar == columnar
    assert len(scalar[0]) > 0  # the storm actually lost nodes


def test_reregistration_reuses_freed_column_slot():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=8))
    rm = ResourceManager(sim, cluster, YarnConfig(nm_liveness_timeout=10.0))
    cluster.rejoin_listeners.append(rm.register_node)
    assert rm.columns is not None, "columnar plane should be on by default"
    victim = cluster.nodes[3]
    old_nm = rm.node_managers[3]
    old_slot = old_nm.slot

    def fault():
        yield sim.timeout(5.0)
        cluster.stop_network(victim)
        yield sim.timeout(30.0)  # well past the liveness timeout
        cluster.restore_network(victim)

    sim.process(fault(), name="fault")
    sim.run(until=60.0)
    nm = rm.node_managers[3]
    assert nm is not old_nm and not nm.lost
    assert nm.slot == old_slot  # LIFO free-list reuse
    assert rm._nm_by_slot[old_slot] is nm
    # The reused slot was zero-filled: fresh NM is not a batch member
    # (it heartbeats through its own periodic) and not lost.
    assert not rm.columns.get(old_slot, "in_batch")
    assert len(rm.columns) == 8
    # Its individual heartbeat periodic is live: heartbeat advances.
    hb_after_heal = nm.last_heartbeat
    sim.run(until=90.0)
    assert nm.last_heartbeat > hb_after_heal
    assert not rm.node_managers[3].lost


def test_scheduler_pick_parity_scalar_vs_columnar(monkeypatch):
    """Container grants (node choice via the vectorized fallback scan)
    match the scalar plane draw for draw."""

    def run():
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=32, seed=7))
        rm = ResourceManager(sim, cluster)
        got: list[tuple[float, int]] = []

        def burst():
            for _ in range(40):
                grant = rm.request_container(2048)
                grant.callbacks.append(
                    lambda ev: got.append((sim.now, ev.value.node.node_id)))
                yield sim.timeout(0.5)

        sim.process(burst(), name="burst")
        sim.run(until=120.0)
        return got

    monkeypatch.setenv("REPRO_DATA_PLANE", "reference")
    scalar = run()
    monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    columnar = run()
    assert scalar == columnar
    assert len(scalar) == 40


def test_rm_falls_back_to_scalar_for_foreign_nodes():
    """Workers the cluster's node_id indexing can't reach (here: another
    cluster's nodes) force the RM onto the scalar plane; a plain subset
    of the cluster's own nodes stays columnar."""
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=6))
    other = Cluster(sim, ClusterSpec(num_nodes=6))
    rm = ResourceManager(sim, cluster, worker_nodes=other.nodes[:3])
    assert rm.columns is None
    assert rm.available_mb() > 0
    subset_rm = ResourceManager(sim, cluster, worker_nodes=cluster.nodes[3:])
    assert subset_rm.columns is not None


# ---------------------------------------------------------------------------
# Columnar trace buffers
# ---------------------------------------------------------------------------
class TestColumnarTrace:
    def test_digest_stable_across_doubling_boundary(self):
        """Identical log sequences digest identically whether the kind
        is columnar (crossing a capacity doubling) or object-backed."""

        def run(columnar: bool) -> tuple[str, list]:
            sim = Simulator()
            trace = Trace(sim)
            if columnar:
                trace.columnar("hb", capacity=4, node="i8", lag="f8")
            for i in range(11):  # crosses 4 -> 8 -> 16
                trace.log("hb", node=i, lag=i / 8.0)
                trace.log("other", step=i)
            from repro.metrics.export import trace_records
            return trace.digest(), trace_records(trace)

        col_digest, col_records = run(columnar=True)
        obj_digest, obj_records = run(columnar=False)
        assert col_digest == obj_digest
        assert col_records == obj_records

    def test_records_interleave_in_log_order(self):
        sim = Simulator()
        trace = Trace(sim)
        buf = trace.columnar("fast", v="i8")
        trace.log("slow", tag="a")
        trace.log("fast", v=1)
        trace.log("slow", tag="b")
        trace.log("fast", v=2)
        assert buf.size == 2
        kinds = [r["kind"] for r in trace.iter_records()]
        assert kinds == ["slow", "fast", "slow", "fast"]
        assert trace.total_events() == 4
        assert len(trace.events) == 2  # only the object-backed ones

    def test_query_helpers_on_columnar_kind(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.columnar("hb", node="i8")
        for i in range(5):
            trace.log("hb", node=i % 2)
        assert trace.count("hb") == 5
        assert trace.count("hb", node=1) == 2
        assert trace.first("hb", node=1)["node"] == 1
        assert trace.last("hb")["node"] == 0
        assert trace.times("hb") == [0.0] * 5
        assert trace.times_array("hb").dtype == np.dtype("f8")
        assert [e["node"] for e in trace.of_kind("hb")] == [0, 1, 0, 1, 0]

    def test_summary_includes_columnar_rows(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.columnar("hb", node="i8")
        trace.log("hb", node=1)
        trace.log("plain", x=1)
        s = trace.summary()
        assert s["events"] == 2
        assert s["kinds"] == {"hb": 1, "plain": 1}
        assert s["first_time"] == 0.0 and s["last_time"] == 0.0

    def test_listeners_fire_for_columnar_kinds(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.columnar("hb", node="i8")
        seen = []
        trace.subscribe("hb", lambda e: seen.append(e["node"]))
        trace.log("hb", node=9)
        assert seen == [9]

    def test_count_only_wins_over_columnar(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COUNT_ONLY", "hb")
        sim = Simulator()
        trace = Trace(sim)
        assert trace.columnar("hb", node="i8") is None
        trace.log("hb", node=1)
        assert trace.count("hb") == 1
        assert list(trace.iter_records()) == []  # suppressed, as ever

    def test_registration_after_logging_rejected(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("x", v=1)
        with pytest.raises(SimulationError, match="before any events"):
            trace.columnar("hb", node="i8")

    def test_strict_schema_enforced(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.columnar("hb", node="i8")
        with pytest.raises(SimulationError, match="missing field"):
            trace.log("hb")
        sim2 = Simulator()
        trace2 = Trace(sim2)
        trace2.columnar("hb", node="i8")
        with pytest.raises(SimulationError, match="undeclared"):
            trace2.log("hb", node=1, extra=2)

    def test_lossy_dtype_store_rejected(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.columnar("hb", node="i8")
        with pytest.raises(SimulationError, match="round-trip"):
            trace.log("hb", node=1.5)


# ---------------------------------------------------------------------------
# Sampler blocks, bulk flow reads, periodic profiling
# ---------------------------------------------------------------------------
def test_sampler_block_matches_individual_probes():
    def run(use_block: bool) -> dict:
        sim = Simulator()
        trace = Trace(sim)
        state = {"a": 0}
        sampler = ProgressSampler(sim, trace, interval=1.0)
        if use_block:
            sampler.add_probe_block(lambda: (("a", state["a"]), ("b", state["a"] * 2.0)))
        else:
            sampler.add_probe("a", lambda: state["a"])
            sampler.add_probe("b", lambda: state["a"] * 2.0)
        sampler.start()

        def bump():
            while True:
                yield sim.timeout(1.0)
                state["a"] += 1

        sim.process(bump(), name="bump")
        sim.run(until=10.0)
        return {"series": trace.series, "digest": trace.digest()}

    assert run(use_block=True) == run(use_block=False)


def test_total_transferred_matches_per_flow_sum():
    from repro.sim.flows import LinkResource

    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=4))
    shared = LinkResource("shared", 100.0)
    flows = [cluster.flows.transfer(1000.0 * (i + 1), [shared], f"f{i}")
             for i in range(5)]
    sim.run(until=3.0)
    sim.timeout(7.0)  # schedule something so now < next flow completion
    expected = sum(f.transferred for f in cluster.flows.active_flows)
    assert cluster.flows.total_transferred() == expected
    assert cluster.flows.active_count == len(cluster.flows.active_flows)
    assert any(f.transferred > 0 for f in flows)


def test_total_transferred_matches_on_reference_scheduler(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "reference")
    from repro.sim.flows import LinkResource

    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=4))
    shared = LinkResource("shared", 100.0)
    for i in range(3):
        cluster.flows.transfer(500.0 * (i + 1), [shared], f"f{i}")
    sim.run(until=2.0)
    expected = sum(f.transferred for f in cluster.flows.active_flows)
    assert cluster.flows.total_transferred() == expected
    assert cluster.flows.active_count == len(cluster.flows.active_flows)


def test_periodic_profiling_registry(monkeypatch):
    from repro.runner import profile

    monkeypatch.setenv("REPRO_PROFILE", "1")
    profile.reset_periodic_times()
    sim = Simulator()
    ticks = []
    sim.periodic(1.0, lambda: ticks.append(sim.now), name="test-tick")
    sim.periodic(2.0, lambda: None, pure=True, name="test-pure")
    sim.run(until=10.0)
    rows = {name: (calls, secs) for name, calls, secs in profile.periodic_times()}
    assert rows["test-tick"][0] == len(ticks) == 10
    assert rows["test-pure"][0] == 5
    assert all(secs >= 0.0 for _, secs in rows.values())
    assert profile.periodic_times(top=1)[0][0] in rows
    profile.reset_periodic_times()
    assert profile.periodic_times() == []


def test_periodic_profiling_preserves_false_stop(monkeypatch):
    from repro.runner import profile

    monkeypatch.setenv("REPRO_PROFILE", "1")
    profile.reset_periodic_times()
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) >= 3:
            return False

    sim.periodic(1.0, tick, name="stopper")
    sim.run(until=10.0)
    assert len(ticks) == 3  # wrapper passed the False through
    profile.reset_periodic_times()
