"""Regression and edge-case tests for the simulation kernel.

Several of these encode bugs found while building the upper layers
(abandoned-event failures, float-residue spins, mid-flight accounting),
so they guard exactly the failure modes that bit us once.
"""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.core import SimulationError
from repro.sim.flows import FlowScheduler, LinkResource


@pytest.fixture
def sim():
    return Simulator()


class TestAbandonedEventRegression:
    def test_interrupted_process_leaves_no_unhandled_failure(self, sim):
        """Regression: a process interrupted away from an AnyOf whose
        child later fails must not crash the simulation."""
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        flow = fs.transfer(1000.0, [disk], "f")

        def worker(sim):
            try:
                yield sim.any_of([flow.done, sim.event()])
            except Interrupt:
                # Cleanup cancels the flow after we've been detached.
                fs.cancel(flow, "cleanup")
                return

        p = sim.process(worker(sim))

        def killer(sim):
            yield sim.timeout(1.0)
            p.interrupt("die")

        sim.process(killer(sim))
        sim.run()  # must not raise

    def test_failed_event_with_listener_then_detach(self, sim):
        ev = sim.event()

        def waiter(sim):
            try:
                yield ev
            except Interrupt:
                return

        p = sim.process(waiter(sim))

        def second(sim):
            yield sim.timeout(1.0)
            p.interrupt()
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("late failure"))

        sim.process(second(sim))
        sim.run()  # abandoned ev was defused on detach


class TestFlowEdgeCases:
    def test_float_residue_does_not_strand_tiny_remainders(self, sim):
        """Regression: repeated +=/-= bookkeeping must converge."""
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 3.0)  # awkward divisor
        done = []
        for i in range(7):
            f = fs.transfer(1.0 / 3.0, [disk], f"f{i}")
            f.done._add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert len(done) == 7

    def test_cancel_inside_completion_callback(self, sim):
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        f1 = fs.transfer(100.0, [disk], "f1")
        f2 = fs.transfer(1000.0, [disk], "f2")
        f2.done.defuse()
        f1.done._add_callback(lambda e: fs.cancel(f2, "chained"))
        sim.run()
        assert not f2._active

    def test_new_flow_inside_completion_callback(self, sim):
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        f1 = fs.transfer(100.0, [disk], "f1")
        times = []

        def chain(_e):
            f2 = fs.transfer(100.0, [disk], "f2")
            f2.done._add_callback(lambda e: times.append(sim.now))

        f1.done._add_callback(chain)
        sim.run()
        assert times == [pytest.approx(2.0)]

    def test_capacity_increase_speeds_up(self, sim):
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 50.0)
        f = fs.transfer(200.0, [disk], "f")

        def boost(sim):
            yield sim.timeout(2.0)  # 100 bytes moved
            disk.set_capacity(100.0)

        sim.process(boost(sim))
        sim.run(until=f.done)
        assert sim.now == pytest.approx(3.0)

    def test_live_progress_between_events(self, sim):
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(1000.0, [disk], "f")
        probes = []

        def prober(sim):
            for _ in range(3):
                yield sim.timeout(2.5)
                probes.append(f.progress)

        sim.process(prober(sim))
        sim.run()
        assert probes == [pytest.approx(0.25), pytest.approx(0.5), pytest.approx(0.75)]

    def test_many_flows_share_fairly(self, sim):
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        flows = [fs.transfer(100.0, [disk], f"f{i}") for i in range(10)]
        sim.run(until=sim.all_of([f.done for f in flows]))
        assert sim.now == pytest.approx(10.0)  # 1000 bytes / 100 Bps


class TestConditionEdgeCases:
    def test_condition_on_already_processed_events(self, sim):
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        cond = AnyOf(sim, [ev, sim.event()])
        got = []

        def waiter(sim):
            got.append((yield cond))

        sim.process(waiter(sim))
        sim.run()
        assert got == ["v"]

    def test_nested_conditions(self, sim):
        def mk(sim, t, v):
            yield sim.timeout(t)
            return v

        out = []

        def waiter(sim):
            inner = AllOf(sim, [sim.process(mk(sim, 1, "a")),
                                sim.process(mk(sim, 2, "b"))])
            outer = AnyOf(sim, [inner, sim.process(mk(sim, 10, "slow"))])
            out.append((yield outer))

        sim.process(waiter(sim))
        sim.run()
        assert out == [["a", "b"]]
        assert sim.now == 10  # the slow process still finishes

    def test_all_of_with_failed_already_processed_child(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("early"))
        ev.defuse()
        sim.run()
        caught = []

        def waiter(sim):
            try:
                yield AllOf(sim, [ev])
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter(sim))
        sim.run()
        assert caught == ["early"]

    def test_empty_all_of_is_vacuously_satisfied(self, sim):
        """AllOf([]) — "wait for all of nothing" — completes immediately
        with an empty value list."""
        got = []

        def waiter(sim):
            got.append((yield sim.all_of([])))

        sim.process(waiter(sim))
        sim.run()
        assert got == [[]]
        assert sim.now == 0.0

    def test_empty_any_of_raises(self, sim):
        """Regression: AnyOf([]) used to succeed immediately with [],
        silently masking callers that built an empty child list by
        mistake — none of zero events can ever trigger."""
        with pytest.raises(SimulationError, match="empty AnyOf"):
            sim.any_of([])
        with pytest.raises(SimulationError, match="empty AnyOf"):
            AnyOf(sim, [])

    def test_empty_any_of_inside_process_fails_the_process(self, sim):
        caught = []

        def waiter(sim):
            try:
                yield sim.any_of([ev for ev in ()])
            except SimulationError as exc:
                caught.append(str(exc))

        sim.process(waiter(sim))
        sim.run()
        assert caught and "AnyOf" in caught[0]


class TestSchedulerDeterminism:
    def test_fifo_among_simultaneous_events(self, sim):
        order = []
        for tag in range(5):
            sim.timeout(1.0)._add_callback(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_urgent_beats_normal_at_same_time(self, sim):
        order = []

        def sleeper(sim):
            try:
                yield sim.timeout(1.0)
                order.append("timeout")
            except Interrupt:
                order.append("interrupt")

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1.0, value=None)
            if p.is_alive:
                p.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        # The sleeper's own timeout fires first (both scheduled at t=1,
        # timeout entered the heap first) — exact ordering is defined
        # and deterministic either way; assert it completed exactly once.
        assert len(order) == 1
