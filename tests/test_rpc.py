"""The fallible RPC layer: channel semantics, idempotent allocation,
grant redelivery, release retransmits, heartbeat-drop tolerance."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.invariants import check_invariants
from repro.sim import Simulator
from repro.sim.core import SimulationError
from repro.sim.rpc import RpcChannel
from repro.yarn import ResourceManager, YarnConfig

from tests.conftest import make_runtime, tiny_workload


def make_env(num_nodes=4, memory_mb=8192, **yarn_kw):
    sim = Simulator()
    racks = min(2, num_nodes)
    cluster = Cluster(sim, ClusterSpec(num_nodes=num_nodes, num_racks=racks,
                                       node=NodeSpec(memory_mb=memory_mb)))
    cfg = YarnConfig(nm_memory_fraction=1.0, **yarn_kw)
    rm = ResourceManager(sim, cluster, cfg)
    return sim, cluster, rm


class TestRpcChannel:
    def test_reliable_channel_is_passthrough(self):
        ch = RpcChannel()
        assert not ch.fallible
        for i in range(20):
            out = ch.send(f"lane-{i}")
            assert not out.dropped and out.delay == 0.0
        assert not ch.heartbeat_dropped(3, 12.5)
        assert ch.stats["dropped"] == ch.stats["heartbeats_dropped"] == 0

    def test_outcomes_are_deterministic(self):
        a = RpcChannel(drop_prob=0.3, delay_prob=0.3, seed=7)
        b = RpcChannel(drop_prob=0.3, delay_prob=0.3, seed=7)
        fates_a = [a.send("alloc|am0-r1") for _ in range(50)]
        fates_b = [b.send("alloc|am0-r1") for _ in range(50)]
        assert fates_a == fates_b
        assert any(f.dropped for f in fates_a)
        assert any(f.delay > 0 for f in fates_a)

    def test_retransmits_get_independent_fates(self):
        """Per-lane sequence counters: a retransmit on the same lane is
        a *new* message, so a drop does not doom every retry."""
        ch = RpcChannel(drop_prob=0.5, seed=3)
        fates = [ch.send("grant|g0").dropped for _ in range(40)]
        assert True in fates and False in fates

    def test_heartbeat_fate_is_plane_agnostic(self):
        """Keyed on (node_id, time), not stream position: the same
        (node, tick) pair answers identically regardless of query order."""
        a = RpcChannel(drop_prob=0.4, seed=9)
        b = RpcChannel(drop_prob=0.4, seed=9)
        fwd = [a.heartbeat_dropped(n, 10.0) for n in range(12)]
        rev = [b.heartbeat_dropped(n, 10.0) for n in reversed(range(12))]
        assert fwd == list(reversed(rev))

    def test_validation(self):
        with pytest.raises(SimulationError):
            RpcChannel(drop_prob=1.0)
        with pytest.raises(SimulationError):
            RpcChannel(drop_prob=0.6, delay_prob=0.6)
        with pytest.raises(SimulationError):
            RpcChannel(max_delay=-1.0)
        with pytest.raises(SimulationError):
            YarnConfig(rpc_drop_prob=1.5)


class TestIdempotentAllocation:
    def test_duplicate_request_id_returns_same_grant(self):
        """A retransmitted allocate (same request_id) must not allocate
        a second container — the PR-3 grant-leak bug class, closed
        structurally."""
        sim, cluster, rm = make_env()
        first = rm.request_container(1024, request_id="am0-r0")
        dup = rm.request_container(1024, request_id="am0-r0")
        assert dup is first
        c = sim.run(until=first)
        assert c.alive
        used = sum(nm.used_mb for nm in rm.node_managers.values())
        assert used == c.memory_mb  # exactly one allocation

    def test_duplicate_after_grant_still_returns_same_event(self):
        sim, cluster, rm = make_env()
        first = rm.request_container(1024, request_id="am0-r1")
        c = sim.run(until=first)
        dup = rm.request_container(1024, request_id="am0-r1")
        assert dup is first and dup.value is c


class TestLossyControlPlane:
    def test_grant_delivery_retries_through_drops(self):
        """Containers are granted despite a lossy RM->AM path; the loss
        only delays delivery."""
        sim, cluster, rm = make_env(rpc_drop_prob=0.4, rpc_seed=5,
                                    allocation_latency=0.5)
        grants = [rm.request_container(1024, request_id=f"r{i}")
                  for i in range(6)]
        for g in grants:
            c = sim.run(until=g)
            assert c.alive
        assert rm.rpc.stats["dropped"] > 0  # the path was actually lossy

    def test_release_retransmits_reclaim_capacity(self):
        sim, cluster, rm = make_env(rpc_drop_prob=0.45, rpc_seed=1)
        cs = [sim.run(until=rm.request_container(1024, request_id=f"r{i}"))
              for i in range(8)]
        for c in cs:
            rm.release_container(c)
        sim.run(until=sim.now + 30.0)
        assert all(nm.used_mb == 0 for nm in rm.node_managers.values())

    def test_job_completes_and_is_deterministic_under_loss(self):
        """End-to-end: a lossy channel (drops + delays on every lane,
        heartbeat losses included) never breaks an otherwise fault-free
        job, never violates invariants, and two identical runs produce
        the identical trace digest."""
        def run():
            rt = make_runtime(
                tiny_workload(),
                yarn_config=YarnConfig(nm_liveness_timeout=20.0,
                                       rpc_drop_prob=0.15, rpc_delay_prob=0.2,
                                       rpc_max_delay=1.5, rpc_seed=13))
            res = rt.run()
            violations = check_invariants(rt, res)
            assert violations == [], violations
            assert res.success
            assert rt.rm.rpc.stats["sent"] > 0
            return res.trace.digest()

        assert run() == run()

    def test_extreme_heartbeat_loss_reregisters_false_losses(self):
        """Drop enough consecutive heartbeats and the RM falsely
        declares a live node lost; the liveness scan must re-admit it
        (it is reachable and alive) and the job must still finish."""
        rt = make_runtime(
            tiny_workload(),
            yarn_config=YarnConfig(nm_liveness_timeout=6.0,
                                   nm_heartbeat_interval=1.0,
                                   rpc_drop_prob=0.55, rpc_seed=2))
        res = rt.run()
        violations = check_invariants(rt, res)
        assert violations == [], violations
        assert res.success
        lost = rt.trace.count("node_lost")
        rejoined = rt.trace.count("node_rejoined")
        assert lost > 0, "expected at least one false node-loss"
        assert rejoined >= lost  # every falsely-lost node re-admitted
