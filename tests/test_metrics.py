"""Tests for trace collection, exports and text reports."""

import json

import pytest

from repro.faults import kill_reduce_at_progress
from repro.metrics import (
    ProgressSampler,
    Trace,
    export_result_json,
    export_series_csv,
    failure_timeline,
    progress_curve,
    result_summary,
    task_gantt,
    trace_records,
)
from repro.sim import Simulator

from tests.conftest import make_runtime, tiny_workload


@pytest.fixture
def result():
    rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.08))
    kill_reduce_at_progress(0.8).install(rt)
    return rt.run()


class TestTrace:
    def test_log_and_query(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("thing", a=1)

        def proc(sim):
            yield sim.timeout(5)
            trace.log("thing", a=2)
            trace.log("other", b=3)

        sim.process(proc(sim))
        sim.run()
        assert trace.count("thing") == 2
        assert trace.count("thing", a=2) == 1
        assert trace.first("thing").time == 0
        assert trace.last("thing")["a"] == 2
        assert trace.times("other") == [5]
        assert trace.first("missing") is None

    def test_series_sampling(self):
        sim = Simulator()
        trace = Trace(sim)
        sampler = ProgressSampler(sim, trace, interval=1.0)
        sampler.add_probe("clock", lambda: sim.now)
        sampler.start()

        def stopper(sim):
            yield sim.timeout(4.5)
            sampler.stop()

        sim.process(stopper(sim))
        sim.run(until=10)
        values = trace.series_values("clock")
        assert len(values) == 5  # t = 0..4
        assert values[-1] == (4.0, 4.0)

    def test_event_indexing(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("k", x="y")
        assert trace.events[0]["x"] == "y"


class TestExports:
    def test_result_summary(self, result):
        s = result_summary(result)
        assert s["success"] is True
        assert s["elapsed"] == pytest.approx(result.elapsed)
        assert s["counters"]["failed_reduce_attempts"] == 1

    def test_trace_records_jsonable(self, result):
        records = trace_records(result.trace)
        json.dumps(records)  # must not raise
        assert any(r["kind"] == "attempt_failed" for r in records)

    def test_export_json_roundtrip(self, result, tmp_path):
        path = export_result_json(result, tmp_path / "job.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["workload"] == "tiny"
        assert payload["events"]
        assert "reduce_progress" in payload["series"]

    def test_export_series_csv(self, result, tmp_path):
        path = export_series_csv(result.trace, "reduce_progress", tmp_path / "p.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,reduce_progress"
        assert len(lines) > 5


class TestReports:
    def test_progress_curve_renders(self, result):
        out = progress_curve(result.trace)
        assert "reduce_progress" in out
        assert "%" in out

    def test_progress_curve_empty_series(self, result):
        assert "no samples" in progress_curve(result.trace, name="ghost")

    def test_failure_timeline_lists_injection(self, result):
        out = failure_timeline(result.trace)
        assert "fault_injected" in out
        assert "attempt_failed" in out

    def test_failure_timeline_clean_run(self):
        res = make_runtime().run()
        assert "no failures" in failure_timeline(res.trace)

    def test_task_gantt_shows_failed_attempt(self, result):
        out = task_gantt(result, task_filter="reduce")
        assert "fail" in out
        assert "ok" in out
