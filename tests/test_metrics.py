"""Tests for trace collection, exports and text reports."""

import json

import pytest

from repro.faults import kill_reduce_at_progress
from repro.metrics import (
    ProgressSampler,
    Trace,
    export_result_json,
    export_series_csv,
    failure_timeline,
    progress_curve,
    phase_durations,
    result_summary,
    task_gantt,
    trace_records,
)
from repro.metrics.trace import TraceEvent
from repro.sim import Simulator

from tests.conftest import make_runtime, tiny_workload


@pytest.fixture
def result():
    rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.08))
    kill_reduce_at_progress(0.8).install(rt)
    return rt.run()


class TestTrace:
    def test_log_and_query(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("thing", a=1)

        def proc(sim):
            yield sim.timeout(5)
            trace.log("thing", a=2)
            trace.log("other", b=3)

        sim.process(proc(sim))
        sim.run()
        assert trace.count("thing") == 2
        assert trace.count("thing", a=2) == 1
        assert trace.first("thing").time == 0
        assert trace.last("thing")["a"] == 2
        assert trace.times("other") == [5]
        assert trace.first("missing") is None

    def test_series_sampling(self):
        sim = Simulator()
        trace = Trace(sim)
        sampler = ProgressSampler(sim, trace, interval=1.0)
        sampler.add_probe("clock", lambda: sim.now)
        sampler.start()

        def stopper(sim):
            yield sim.timeout(4.5)
            sampler.stop()

        sim.process(stopper(sim))
        sim.run(until=10)
        values = trace.series_values("clock")
        assert len(values) == 5  # t = 0..4
        assert values[-1] == (4.0, 4.0)

    def test_event_indexing(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("k", x="y")
        assert trace.events[0]["x"] == "y"

    def test_kind_index_matches_linear_scan(self):
        """The per-kind index must answer every query identically to a
        full scan of ``events`` (the pre-index implementation)."""
        sim = Simulator()
        trace = Trace(sim)
        for i in range(50):
            trace.log(f"kind-{i % 3}", i=i, parity=i % 2)
        for kind in ("kind-0", "kind-1", "kind-2", "missing"):
            scan = [e for e in trace.events if e.kind == kind]
            assert trace.of_kind(kind) == scan
            assert trace.count(kind) == len(scan)
            assert trace.count(kind, parity=1) == sum(
                1 for e in scan if e.data.get("parity") == 1)
            matches = [e for e in scan if e.data.get("parity") == 0]
            assert trace.first(kind, parity=0) == (matches[0] if matches else None)
            assert trace.last(kind, parity=0) == (matches[-1] if matches else None)
            assert trace.times(kind) == [e.time for e in scan]

    def test_of_kind_returns_copy(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("k", a=1)
        trace.of_kind("k").clear()
        assert trace.count("k") == 1

    def test_summary(self):
        sim = Simulator()
        trace = Trace(sim)
        assert trace.summary()["events"] == 0
        assert trace.summary()["first_time"] is None
        trace.log("a", x=1)
        trace.log("b")
        trace.log("a")
        trace.sample("s", 0.5)
        s = trace.summary()
        assert s == {
            "events": 3,
            "kinds": {"a": 2, "b": 1},
            "series": {"s": 1},
            "first_time": 0.0,
            "last_time": 0.0,
        }


class TestProgressSampler:
    def test_restart_does_not_duplicate_samples(self):
        """Regression: after a stop→start cycle the old suspended loop
        used to wake, see ``_running`` and keep sampling alongside the
        new loop, doubling every series point."""
        sim = Simulator()
        trace = Trace(sim)
        sampler = ProgressSampler(sim, trace, interval=1.0)
        sampler.add_probe("clock", lambda: sim.now)

        def driver(sim):
            sampler.start()
            yield sim.timeout(2.5)
            sampler.stop()
            sampler.start()  # old loop still pending its 3.0 wake-up
            yield sim.timeout(2.0)
            sampler.stop()

        sim.process(driver(sim))
        sim.run(until=10)
        times = [t for t, _ in trace.series_values("clock")]
        # Exactly one sample per tick — no duplicated timestamps.
        assert times == sorted(times)
        assert len(times) == len(set(times))
        # First loop covers t=0,1,2; restart resumes at t=2.5,3.5.
        assert times == [0.0, 1.0, 2.0, 2.5, 3.5]

    def test_start_is_idempotent_while_running(self):
        sim = Simulator()
        trace = Trace(sim)
        sampler = ProgressSampler(sim, trace, interval=1.0)
        sampler.add_probe("clock", lambda: sim.now)
        sampler.start()
        sampler.start()

        def stopper(sim):
            yield sim.timeout(2.5)
            sampler.stop()

        sim.process(stopper(sim))
        sim.run(until=10)
        times = [t for t, _ in trace.series_values("clock")]
        assert times == [0.0, 1.0, 2.0]


class TestPhaseDurations:
    @staticmethod
    def _ev(time, kind, **data):
        return TraceEvent(time, kind, data)

    def test_sequential_pairs(self):
        events = [self._ev(1.0, "s"), self._ev(3.0, "e"),
                  self._ev(5.0, "s"), self._ev(9.0, "e")]
        assert phase_durations(events, "s", "e") == [2.0, 4.0]

    def test_interleaved_tasks_pair_by_key(self):
        """Regression: bare zip pairing shifted every duration once two
        tasks interleaved. Keyed pairing keeps each task's span."""
        events = [
            self._ev(0.0, "s", task="a"),
            self._ev(1.0, "s", task="b"),
            self._ev(2.0, "e", task="b"),   # b: 1.0
            self._ev(10.0, "e", task="a"),  # a: 10.0
        ]
        assert phase_durations(events, "s", "e", key="task") == [1.0, 10.0]
        # The old zip behaviour would have reported [2.0, 9.0].

    def test_missing_end_drops_only_that_start(self):
        events = [
            self._ev(0.0, "s", task="a"),   # never ends (task died)
            self._ev(1.0, "s", task="b"),
            self._ev(4.0, "e", task="b"),
        ]
        assert phase_durations(events, "s", "e", key="task") == [3.0]

    def test_strict_raises_on_unmatched_start(self):
        events = [self._ev(0.0, "s", task="a")]
        with pytest.raises(ValueError, match="unmatched"):
            phase_durations(events, "s", "e", key="task", strict=True)

    def test_end_without_start_is_ignored(self):
        events = [self._ev(2.0, "e", task="a"),
                  self._ev(3.0, "s", task="a"), self._ev(7.0, "e", task="a")]
        assert phase_durations(events, "s", "e", key="task") == [4.0]

    def test_unrelated_kinds_are_skipped(self):
        events = [self._ev(0.0, "s"), self._ev(1.0, "noise"), self._ev(2.0, "e")]
        assert phase_durations(events, "s", "e") == [2.0]


class TestExports:
    def test_result_summary(self, result):
        s = result_summary(result)
        assert s["success"] is True
        assert s["elapsed"] == pytest.approx(result.elapsed)
        assert s["counters"]["failed_reduce_attempts"] == 1

    def test_trace_records_jsonable(self, result):
        records = trace_records(result.trace)
        json.dumps(records)  # must not raise
        assert any(r["kind"] == "attempt_failed" for r in records)

    def test_export_json_roundtrip(self, result, tmp_path):
        path = export_result_json(result, tmp_path / "job.json")
        payload = json.loads(path.read_text())
        assert payload["summary"]["workload"] == "tiny"
        assert payload["events"]
        assert "reduce_progress" in payload["series"]

    def test_export_series_csv(self, result, tmp_path):
        path = export_series_csv(result.trace, "reduce_progress", tmp_path / "p.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,reduce_progress"
        assert len(lines) > 5


class TestReports:
    def test_progress_curve_renders(self, result):
        out = progress_curve(result.trace)
        assert "reduce_progress" in out
        assert "%" in out

    def test_progress_curve_empty_series(self, result):
        assert "no samples" in progress_curve(result.trace, name="ghost")

    def test_failure_timeline_lists_injection(self, result):
        out = failure_timeline(result.trace)
        assert "fault_injected" in out
        assert "attempt_failed" in out

    def test_failure_timeline_clean_run(self):
        res = make_runtime().run()
        assert "no failures" in failure_timeline(res.trace)

    def test_task_gantt_shows_failed_attempt(self, result):
        out = task_gantt(result, task_filter="reduce")
        assert "fail" in out
        assert "ok" in out


class TestStreamingDigest:
    """The incremental digest must stay byte-compatible with hashing the
    whole-trace JSON document (the pre-streaming definition, still used
    by ``repro.runner.trace_digest`` for foreign trace-shaped objects)."""

    def test_matches_legacy_whole_trace_encoding(self, result):
        import hashlib

        trace = result.trace
        payload = {
            "events": trace_records(trace),
            "series": {name: points for name, points in trace.series.items()},
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
        assert trace.digest() == hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def test_digest_clones_not_consumes(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("a", x=1)
        d1 = trace.digest()
        assert trace.digest() == d1  # repeatable
        trace.log("b", y=2)
        d2 = trace.digest()
        assert d2 != d1
        assert trace.digest() == d2

    def test_empty_trace_digest_matches_legacy(self):
        import hashlib

        sim = Simulator()
        trace = Trace(sim)
        blob = json.dumps({"events": [], "series": {}},
                          sort_keys=True, separators=(",", ":"), default=str)
        assert trace.digest() == hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TestCountOnlyMode:
    """REPRO_TRACE_COUNT_ONLY: designated kinds keep counts (and fire
    listeners) without storing per-event objects."""

    def test_count_only_kind_counted_not_stored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_COUNT_ONLY", "hb, spam")
        sim = Simulator()
        trace = Trace(sim)
        seen = []
        trace.subscribe("hb", seen.append)
        for _ in range(3):
            trace.log("hb", node="n1")
        trace.log("real", a=1)
        assert trace.count("hb") == 3
        assert trace.of_kind("hb") == []
        assert len(trace.events) == 1
        assert len(seen) == 3  # listeners still fire for count-only kinds
        summary = trace.summary()
        assert summary["kinds"]["hb"] == 3
        assert summary["kinds"]["real"] == 1
        assert summary["events"] == 1

    def test_digest_excludes_count_only_kinds(self, monkeypatch):
        sim = Simulator()
        monkeypatch.setenv("REPRO_TRACE_COUNT_ONLY", "noise")
        noisy = Trace(sim)
        noisy.log("keep", a=1)
        noisy.log("noise", b=2)
        noisy.log("keep", a=2)
        monkeypatch.delenv("REPRO_TRACE_COUNT_ONLY")
        quiet = Trace(sim)
        quiet.log("keep", a=1)
        quiet.log("keep", a=2)
        assert noisy.digest() == quiet.digest()

    def test_default_is_full_fidelity(self):
        sim = Simulator()
        trace = Trace(sim)
        trace.log("hb", node="x")
        assert [e.kind for e in trace.events] == ["hb"]
        assert trace.count("hb") == 1
