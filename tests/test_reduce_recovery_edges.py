"""Edge cases of ReduceTask recovery state and fetch-failure handling.

Covers two paths the integration suites only graze:

- :meth:`ReduceAttempt._apply_recovery` with partially-missing disk
  segments — ALG's local shuffle logs are all-or-nothing: if any
  logged segment is gone the attempt must fall back to a full
  re-shuffle and reuse *none* of them.
- :meth:`ReduceAttempt._fetch_round_failed` under SFM's wait
  directive — no failure accounting, no AM report, and the MOFs are
  simply re-announced (``notify_mof``) once regenerated.
"""

import numpy as np
import pytest

from repro.alm import ALMConfig, ALMPolicy
from repro.mapreduce.mof import MapOutput
from repro.mapreduce.reducetask import DiskSegment, ReduceAttempt, ReduceRecoveryState
from repro.mapreduce.tasks import Task, TaskType
from repro.sim.core import Timeout
from repro.yarn.rm import Container

from tests.conftest import make_runtime, tiny_workload


def _fresh_attempt(rt, node=None, recovery=None) -> ReduceAttempt:
    """A reduce attempt bound to a real runtime but never started —
    lets the tests poke recovery/fetch internals directly."""
    node = node or rt.workers[0]
    task = Task(900, TaskType.REDUCE, partition_index=0)
    container = Container(node, rt.conf.reduce_memory_mb, rt.sim)
    return ReduceAttempt(rt.am, task, container, recovery=recovery)


def _segments(node, sizes=(100.0, 200.0, 300.0)):
    segs = [DiskSegment(f"seg/test/{i}", size, node) for i, size in enumerate(sizes)]
    for s in segs:
        node.write_file(s.path, s.size, kind="spill")
    return segs


class TestApplyRecovery:
    def test_all_segments_present_are_reused(self):
        rt = make_runtime(tiny_workload(reducers=2))
        node = rt.workers[0]
        segs = _segments(node)
        rec = ReduceRecoveryState(fetched_map_ids={0, 1, 2}, disk_segments=segs,
                                  mem_flushed_bytes=50.0)
        attempt = _fresh_attempt(rt, node)
        attempt._apply_recovery(rec)
        assert attempt.disk_segments == segs
        assert attempt.fetched == {0, 1, 2}
        assert attempt.shuffled_bytes == pytest.approx(600.0 + 50.0)

    def test_partially_missing_segments_force_full_reshuffle(self):
        """One deleted spill invalidates the whole logged shuffle state:
        nothing is reused, the attempt starts the shuffle from zero."""
        rt = make_runtime(tiny_workload(reducers=2))
        node = rt.workers[0]
        segs = _segments(node)
        node.delete_file(segs[1].path)
        rec = ReduceRecoveryState(fetched_map_ids={0, 1, 2}, disk_segments=segs,
                                  mem_flushed_bytes=50.0,
                                  reduce_resume_fraction=0.4)
        attempt = _fresh_attempt(rt, node)
        attempt._apply_recovery(rec)
        assert attempt.disk_segments == []
        assert attempt.fetched == set()
        assert attempt.shuffled_bytes == 0.0
        # HDFS-backed reduce-stage progress survives independently.
        assert attempt.reduce_resume_fraction == 0.4

    def test_migrated_attempt_reuses_nothing_local(self):
        """Segments that live on a different node than the new attempt
        are node-bound and must not be claimed (paper §III-B)."""
        rt = make_runtime(tiny_workload(reducers=2))
        old_node = rt.workers[0]
        segs = _segments(old_node)
        rec = ReduceRecoveryState(fetched_map_ids={0, 1, 2}, disk_segments=segs,
                                  reduce_resume_fraction=0.25)
        attempt = _fresh_attempt(rt, rt.workers[1])
        attempt._apply_recovery(rec)
        assert attempt.disk_segments == []
        assert attempt.fetched == set()
        assert attempt.reduce_resume_fraction == 0.25

    def test_empty_segment_list_restores_only_resume_fraction(self):
        rt = make_runtime(tiny_workload(reducers=2))
        rec = ReduceRecoveryState(reduce_resume_fraction=0.6)
        attempt = _fresh_attempt(rt)
        attempt._apply_recovery(rec)
        assert attempt.disk_segments == []
        assert attempt.fetched == set()
        assert attempt.reduce_resume_fraction == 0.6


class TestFetchRoundFailed:
    def _mof(self, host, map_id=0, attempt="map-0.0"):
        return MapOutput(map_id=map_id, attempt_id=attempt, node=host,
                         partition_sizes=np.array([50.0, 50.0]))

    def test_wait_policy_skips_failure_accounting(self):
        """SFM's wait directive: the round vanishes quietly — no
        failure counters, no fetch-failure report, no host penalty."""
        pol = ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True))
        rt = make_runtime(tiny_workload(reducers=2), policy=pol)
        attempt = _fresh_attempt(rt)
        host = rt.workers[1]
        attempt.notify_mof(self._mof(host))
        pol.regenerating.add(host.node_id)  # the AM knows the node died

        batch = dict(attempt.host_pending[host.node_id])
        steps = list(attempt._fetch_round_failed(host, host.node_id, batch))

        assert steps == []  # generator finished without a penalty sleep
        assert attempt.total_failures == 0
        assert attempt.unique_failed == set()
        assert attempt.host_pending[host.node_id] == {}
        assert rt.trace.of_kind("fetch_failure_report") == []

    def test_wait_then_notify_mof_readds_at_new_home(self):
        pol = ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True))
        rt = make_runtime(tiny_workload(reducers=2), policy=pol)
        attempt = _fresh_attempt(rt)
        dead_host, new_home = rt.workers[1], rt.workers[2]
        attempt.notify_mof(self._mof(dead_host))
        pol.regenerating.add(dead_host.node_id)
        batch = dict(attempt.host_pending[dead_host.node_id])
        list(attempt._fetch_round_failed(dead_host, dead_host.node_id, batch))

        attempt.notify_mof(self._mof(new_home, attempt="map-0.1"))
        assert 0 in attempt.host_pending[new_home.node_id]
        assert attempt.total_failures == 0

    def test_report_policy_accounts_and_penalises(self):
        """Stock YARN contrast: the same round under the default policy
        counts failures, reports to the AM and sleeps out the host
        penalty before revisiting."""
        rt = make_runtime(tiny_workload(reducers=2))  # YarnRecoveryPolicy
        attempt = _fresh_attempt(rt)
        host = rt.workers[1]
        attempt.notify_mof(self._mof(host))
        batch = dict(attempt.host_pending[host.node_id])

        gen = attempt._fetch_round_failed(host, host.node_id, batch)
        penalty = next(gen)
        assert isinstance(penalty, Timeout)
        assert penalty.delay == rt.conf.host_failure_penalty
        assert attempt.total_failures == len(batch)
        assert attempt.unique_failed == set(batch)
        assert rt.trace.count("fetch_failure_report") == len(batch)
