"""Tests for stock speculative execution and straggler injection."""

import pytest

from repro.faults import SlowNodeFault
from repro.mapreduce.speculation import SpeculationConfig
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


def straggler_runtime(speculation, disk_factor=0.05, reducers=4):
    """A job with one crippled node that hosts work."""
    rt = make_runtime(
        tiny_workload(input_mb=1024, reducers=reducers, reduce_cpu=0.05),
        nodes=6,
        speculation=speculation,
    )
    SlowNodeFault(node_index=0, at_time=2.0, disk_factor=disk_factor).install(rt)
    return rt


class TestSpeculationConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SpeculationConfig(interval=0)
        with pytest.raises(SimulationError):
            SpeculationConfig(slowness_threshold=0.9)
        with pytest.raises(SimulationError):
            SpeculationConfig(max_speculative=0)


class TestSlowNodeFault:
    def test_degrades_devices(self):
        rt = make_runtime()
        SlowNodeFault(node_index=1, at_time=1.0, disk_factor=0.5, nic_factor=0.25).install(rt)
        rt.run()
        node = rt.workers[1]
        assert node.disk.capacity == pytest.approx(node.spec.disk_bandwidth * 0.5)
        assert node.nic_in.capacity == pytest.approx(node.spec.nic_bandwidth * 0.25)
        assert node.alive and node.reachable  # still responsive

    def test_factor_validation(self):
        rt = make_runtime()
        with pytest.raises(SimulationError):
            SlowNodeFault(disk_factor=0.0).install(rt)
        with pytest.raises(SimulationError):
            SlowNodeFault(nic_factor=1.5).install(rt)

    def test_node_never_declared_lost(self):
        rt = straggler_runtime(speculation=False)
        res = rt.run()
        assert res.success
        assert res.counters["nodes_lost"] == 0


class TestSpeculator:
    def test_speculation_duplicates_straggler(self):
        rt = straggler_runtime(speculation=SpeculationConfig(
            interval=2.0, min_runtime=5.0, slowness_threshold=1.2))
        res = rt.run()
        assert res.success
        assert rt.speculator.launched >= 1
        assert res.trace.first("speculation") is not None

    def test_speculation_improves_straggler_job(self):
        t_off = straggler_runtime(speculation=False).run().elapsed
        t_on = straggler_runtime(speculation=SpeculationConfig(
            interval=2.0, min_runtime=5.0, slowness_threshold=1.2)).run().elapsed
        assert t_on < t_off

    def test_loser_attempt_discarded_not_failed(self):
        rt = straggler_runtime(speculation=SpeculationConfig(
            interval=2.0, min_runtime=5.0, slowness_threshold=1.2))
        res = rt.run()
        # Speculation losers are killed, not counted as failures.
        assert res.counters["failed_reduce_attempts"] == 0
        assert res.counters["failed_map_attempts"] == 0

    def test_no_speculation_on_healthy_job(self):
        rt = make_runtime(
            tiny_workload(input_mb=1024, reducers=4, reduce_cpu=0.05),
            speculation=SpeculationConfig(interval=2.0, min_runtime=5.0),
        )
        res = rt.run()
        assert res.success
        # Homogeneous tasks: nothing is projected >1.35x slower.
        assert rt.speculator.launched == 0

    def test_at_most_one_duplicate_per_task(self):
        rt = straggler_runtime(speculation=SpeculationConfig(
            interval=1.0, min_runtime=3.0, slowness_threshold=1.1))
        rt.run()
        for task in rt.am.map_tasks + rt.am.reduce_tasks:
            assert len(task.attempts) <= 2
