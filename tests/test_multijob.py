"""Tests for multi-job (shared cluster) simulation."""

import pytest

from repro.alm import ALMPolicy
from repro.faults import kill_node_at_progress, kill_reduce_at_progress
from repro.mapreduce.multijob import SharedCluster
from repro.sim.core import SimulationError

from tests.conftest import small_cluster, tiny_workload
from repro.yarn.rm import YarnConfig


def shared(nodes=6, seed=42):
    return SharedCluster(
        cluster_spec=small_cluster(nodes, seed),
        yarn_config=YarnConfig(nm_liveness_timeout=20.0),
    )


class TestSubmission:
    def test_two_jobs_complete(self):
        sc = shared()
        sc.submit(tiny_workload(name="a"), job_name="a")
        sc.submit(tiny_workload(name="b"), job_name="b")
        results = sc.run_all()
        assert [r.job_name for r in results] == ["a", "b"]
        assert all(r.success for r in results)

    def test_delayed_submission(self):
        sc = shared()
        sc.submit(tiny_workload(), job_name="first")
        sc.submit(tiny_workload(), job_name="second", delay=30.0)
        r1, r2 = sc.run_all()
        assert r2.start_time >= 30.0
        assert r2.start_time > r1.start_time

    def test_run_without_jobs_rejected(self):
        with pytest.raises(SimulationError):
            shared().run_all()

    def test_no_submission_after_run(self):
        sc = shared()
        sc.submit(tiny_workload())
        sc.run_all()
        with pytest.raises(SimulationError):
            sc.submit(tiny_workload())


class TestContention:
    def test_concurrent_jobs_slower_than_alone(self):
        wl = lambda: tiny_workload(input_mb=1024, reducers=2, name="t")
        alone = shared()
        alone.submit(wl())
        t_alone = alone.run_all()[0].elapsed

        together = shared()
        together.submit(wl(), job_name="a")
        together.submit(wl(), job_name="b")
        results = together.run_all()
        assert max(r.elapsed for r in results) > t_alone

    def test_jobs_share_but_all_finish(self):
        sc = shared()
        for i in range(3):
            sc.submit(tiny_workload(input_mb=256, name=f"w{i}"), job_name=f"w{i}")
        results = sc.run_all()
        assert all(r.success for r in results)
        for nm in sc.rm.node_managers.values():
            assert nm.used_mb == 0  # everything released


class TestFaultIsolation:
    def test_task_failure_in_one_job_does_not_fail_other(self):
        sc = shared()
        victim = sc.submit(tiny_workload(reducers=1, reduce_cpu=0.1, name="v"),
                           job_name="victim")
        bystander = sc.submit(tiny_workload(name="b"), job_name="bystander")
        victim.install(kill_reduce_at_progress(0.7))
        rv, rb = sc.run_all()
        assert rv.success and rb.success
        assert rv.counters["failed_reduce_attempts"] == 1
        assert rb.counters["failed_reduce_attempts"] == 0

    def test_node_loss_hits_both_jobs_but_both_recover(self):
        sc = shared(nodes=8)
        a = sc.submit(tiny_workload(input_mb=1024, reducers=2,
                                    reduce_cpu=0.1, name="a"), job_name="a")
        b = sc.submit(tiny_workload(input_mb=1024, reducers=2,
                                    reduce_cpu=0.1, name="b"), job_name="b",
                      policy=ALMPolicy())
        a.install(kill_node_at_progress(0.3, target="reducer"))
        ra, rb = sc.run_all()
        assert ra.success and rb.success
        # Both jobs observed the node loss (shared RM).
        assert ra.counters["nodes_lost"] == 1
        assert rb.counters["nodes_lost"] == 1

    def test_per_job_policies(self):
        sc = shared()
        a = sc.submit(tiny_workload(name="a"), job_name="a")
        b = sc.submit(tiny_workload(name="b"), job_name="b", policy=ALMPolicy())
        ra, rb = sc.run_all()
        assert ra.policy == "yarn"
        assert rb.policy == "alm"
