"""Tests for the HDFS background re-replication daemon."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.cluster.node import MB
from repro.hdfs import Hdfs, HdfsConfig
from repro.hdfs.rereplication import ReReplicationConfig, ReReplicationDaemon
from repro.sim import Simulator
from repro.sim.core import SimulationError


@pytest.fixture
def env():
    sim = Simulator()
    spec = ClusterSpec(num_nodes=8, num_racks=2,
                       node=NodeSpec(disk_bandwidth=200 * MB, nic_bandwidth=200 * MB),
                       core_bandwidth=800 * MB, seed=5)
    cluster = Cluster(sim, spec)
    hdfs = Hdfs(sim, cluster, HdfsConfig(block_size=64 * MB, replication=2))
    return sim, cluster, hdfs


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ReReplicationConfig(scan_interval=0)
        with pytest.raises(SimulationError):
            ReReplicationConfig(max_concurrent=0)
        with pytest.raises(SimulationError):
            ReReplicationConfig(detection_delay=-1)


class TestReReplication:
    def test_restores_replication_after_node_loss(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("data", 256 * MB)
        daemon = ReReplicationDaemon(hdfs, ReReplicationConfig(detection_delay=10.0))
        daemon.start()
        victim = f.blocks[0].replicas[0]
        cluster.crash_node(victim)
        sim.run(until=200.0)
        daemon.stop()
        assert daemon.copies_done >= 1
        for b in f.blocks:
            assert len(b.live_replicas()) == 2

    def test_waits_for_detection_delay(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("data", 64 * MB)
        daemon = ReReplicationDaemon(hdfs, ReReplicationConfig(detection_delay=50.0))
        daemon.start()
        cluster.crash_node(f.blocks[0].replicas[0])
        sim.run(until=40.0)
        assert daemon.copies_done == 0  # still within the grace period
        sim.run(until=200.0)
        daemon.stop()
        assert daemon.copies_done == 1

    def test_no_copies_on_healthy_cluster(self, env):
        sim, cluster, hdfs = env
        hdfs.ingest("data", 256 * MB)
        daemon = ReReplicationDaemon(hdfs, ReReplicationConfig(detection_delay=1.0))
        daemon.start()
        sim.run(until=60.0)
        daemon.stop()
        assert daemon.copies_done == 0

    def test_lost_blocks_are_not_rereplicable(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("data", 64 * MB, replication=1)
        daemon = ReReplicationDaemon(hdfs, ReReplicationConfig(detection_delay=1.0))
        daemon.start()
        cluster.crash_node(f.blocks[0].replicas[0])
        sim.run(until=60.0)
        daemon.stop()
        assert daemon.copies_done == 0
        assert f.blocks[0].lost

    def test_concurrency_cap(self, env):
        sim, cluster, hdfs = env
        for i in range(12):
            hdfs.ingest(f"data{i}", 64 * MB)
        daemon = ReReplicationDaemon(
            hdfs, ReReplicationConfig(detection_delay=1.0, max_concurrent=2))
        daemon.start()
        # Crash several holders at once.
        victims = {f.blocks[0].replicas[0] for f in
                   (hdfs.file(f"data{i}") for i in range(12))}
        for v in list(victims)[:3]:
            cluster.crash_node(v)
        sim.run(until=400.0)
        daemon.stop()
        assert daemon.copies_done >= 1
        assert daemon._in_flight == 0
