"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.core import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestTimeAndRun:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        done = []

        def proc(sim):
            yield sim.timeout(3.5)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [3.5]

    def test_run_until_time_stops_early(self, sim):
        done = []

        def proc(sim):
            yield sim.timeout(10)
            done.append("late")

        sim.process(proc(sim))
        sim.run(until=5)
        assert done == []
        assert sim.now == 5

    def test_run_until_event_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(2)
            return 42

        p = sim.process(proc(sim))
        assert sim.run(until=p) == 42

    def test_run_until_past_time_raises(self, sim):
        sim.process(iter_to_gen(sim, 5))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_run_out_of_events_before_until_event(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim.run(until=ev)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_zero_timeout_runs_in_order(self, sim):
        order = []

        def a(sim):
            yield sim.timeout(0)
            order.append("a")

        def b(sim):
            yield sim.timeout(0)
            order.append("b")

        sim.process(a(sim))
        sim.process(b(sim))
        sim.run()
        assert order == ["a", "b"]

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(7)
        assert sim.peek() == 7


def iter_to_gen(sim, t):
    yield sim.timeout(t)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []

        def proc(sim):
            got.append((yield ev))

        sim.process(proc(sim))

        def trigger(sim):
            yield sim.timeout(1)
            ev.succeed("payload")

        sim.process(trigger(sim))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_propagates_into_process(self, sim):
        ev = sim.event()
        caught = []

        def proc(sim):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc(sim))
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failed_event_raises_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("nobody is listening"))
        with pytest.raises(RuntimeError, match="nobody is listening"):
            sim.run()

    def test_defused_failed_event_is_silent(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("ignored"))
        ev.defuse()
        sim.run()

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(9)
        sim.run()
        got = []
        ev._add_callback(lambda e: got.append(e.value))
        assert got == [9]


class TestProcesses:
    def test_process_return_value(self, sim):
        def child(sim):
            yield sim.timeout(1)
            return "rv"

        def parent(sim, out):
            out.append((yield sim.process(child(sim))))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["rv"]

    def test_exception_in_child_propagates_to_waiting_parent(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("child broke")

        def parent(sim, out):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                out.append(str(exc))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["child broke"]

    def test_unwaited_process_exception_crashes_run(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("unobserved")

        sim.process(child(sim))
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_interrupt_wakes_sleeping_process(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(3)
            p.interrupt("wakeup")

        sim.process(interrupter(sim))
        sim.run()
        assert log == [(3, "wakeup")]

    def test_interrupt_finished_process_is_error(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_rewait_original_event(self, sim):
        log = []

        def sleeper(sim):
            t = sim.timeout(10, value="slept")
            while True:
                try:
                    log.append((yield t))
                    return
                except Interrupt:
                    log.append("interrupted")

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(2)
            p.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert log == ["interrupted", "slept"]
        assert sim.now == 10

    def test_is_alive(self, sim):
        def quick(sim):
            yield sim.timeout(5)

        p = sim.process(quick(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_yielding_non_event_is_error(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_active_process_visible_during_execution(self, sim):
        seen = []

        def proc(sim):
            seen.append(sim.active_process)
            yield sim.timeout(0)

        p = sim.process(proc(sim))
        sim.run()
        assert seen == [p]
        assert sim.active_process is None


class TestConditions:
    def test_all_of_collects_values_in_order(self, sim):
        def mk(sim, t, v):
            yield sim.timeout(t)
            return v

        out = []

        def waiter(sim):
            ps = [sim.process(mk(sim, t, v)) for t, v in [(3, "a"), (1, "b"), (2, "c")]]
            out.append((yield AllOf(sim, ps)))

        sim.process(waiter(sim))
        sim.run()
        assert out == [["a", "b", "c"]]
        assert sim.now == 3

    def test_any_of_returns_first_value(self, sim):
        def mk(sim, t, v):
            yield sim.timeout(t)
            return v

        out = []

        def waiter(sim):
            ps = [sim.process(mk(sim, t, v)) for t, v in [(3, "slow"), (1, "fast")]]
            out.append((yield AnyOf(sim, ps)))

        sim.process(waiter(sim))
        sim.run()
        assert out == ["fast"]

    def test_all_of_empty_triggers_immediately(self, sim):
        out = []

        def waiter(sim):
            out.append((yield AllOf(sim, [])))

        sim.process(waiter(sim))
        sim.run()
        assert out == [[]]
        assert sim.now == 0

    def test_all_of_fails_fast_on_child_failure(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("fail-fast")

        def slow(sim):
            yield sim.timeout(100)

        caught = []

        def waiter(sim):
            try:
                yield AllOf(sim, [sim.process(bad(sim)), sim.process(slow(sim))])
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        sim.process(waiter(sim))
        sim.run()
        assert caught == [(1, "fail-fast")]

    def test_any_of_helper_methods(self, sim):
        ev1, ev2 = sim.event(), sim.event()
        any_ev = sim.any_of([ev1, ev2])
        all_ev = sim.all_of([ev1, ev2])
        ev1.succeed("x")
        ev2.succeed("y")
        sim.run()
        assert any_ev.value == "x"
        assert all_ev.value == ["x", "y"]
