"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.core import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestTimeAndRun:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        done = []

        def proc(sim):
            yield sim.timeout(3.5)
            done.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert done == [3.5]

    def test_run_until_time_stops_early(self, sim):
        done = []

        def proc(sim):
            yield sim.timeout(10)
            done.append("late")

        sim.process(proc(sim))
        sim.run(until=5)
        assert done == []
        assert sim.now == 5

    def test_run_until_event_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(2)
            return 42

        p = sim.process(proc(sim))
        assert sim.run(until=p) == 42

    def test_run_until_past_time_raises(self, sim):
        sim.process(iter_to_gen(sim, 5))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1)

    def test_run_out_of_events_before_until_event(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim.run(until=ev)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_zero_timeout_runs_in_order(self, sim):
        order = []

        def a(sim):
            yield sim.timeout(0)
            order.append("a")

        def b(sim):
            yield sim.timeout(0)
            order.append("b")

        sim.process(a(sim))
        sim.process(b(sim))
        sim.run()
        assert order == ["a", "b"]

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(7)
        assert sim.peek() == 7


def iter_to_gen(sim, t):
    yield sim.timeout(t)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        got = []

        def proc(sim):
            got.append((yield ev))

        sim.process(proc(sim))

        def trigger(sim):
            yield sim.timeout(1)
            ev.succeed("payload")

        sim.process(trigger(sim))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_propagates_into_process(self, sim):
        ev = sim.event()
        caught = []

        def proc(sim):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc(sim))
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failed_event_raises_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("nobody is listening"))
        with pytest.raises(RuntimeError, match="nobody is listening"):
            sim.run()

    def test_defused_failed_event_is_silent(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("ignored"))
        ev.defuse()
        sim.run()

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(9)
        sim.run()
        got = []
        ev._add_callback(lambda e: got.append(e.value))
        assert got == [9]


class TestProcesses:
    def test_process_return_value(self, sim):
        def child(sim):
            yield sim.timeout(1)
            return "rv"

        def parent(sim, out):
            out.append((yield sim.process(child(sim))))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["rv"]

    def test_exception_in_child_propagates_to_waiting_parent(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("child broke")

        def parent(sim, out):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                out.append(str(exc))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == ["child broke"]

    def test_unwaited_process_exception_crashes_run(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("unobserved")

        sim.process(child(sim))
        with pytest.raises(ValueError, match="unobserved"):
            sim.run()

    def test_interrupt_wakes_sleeping_process(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(3)
            p.interrupt("wakeup")

        sim.process(interrupter(sim))
        sim.run()
        assert log == [(3, "wakeup")]

    def test_interrupt_finished_process_is_error(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_rewait_original_event(self, sim):
        log = []

        def sleeper(sim):
            t = sim.timeout(10, value="slept")
            while True:
                try:
                    log.append((yield t))
                    return
                except Interrupt:
                    log.append("interrupted")

        p = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(2)
            p.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert log == ["interrupted", "slept"]
        assert sim.now == 10

    def test_is_alive(self, sim):
        def quick(sim):
            yield sim.timeout(5)

        p = sim.process(quick(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_yielding_non_event_is_error(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_active_process_visible_during_execution(self, sim):
        seen = []

        def proc(sim):
            seen.append(sim.active_process)
            yield sim.timeout(0)

        p = sim.process(proc(sim))
        sim.run()
        assert seen == [p]
        assert sim.active_process is None


class TestConditions:
    def test_all_of_collects_values_in_order(self, sim):
        def mk(sim, t, v):
            yield sim.timeout(t)
            return v

        out = []

        def waiter(sim):
            ps = [sim.process(mk(sim, t, v)) for t, v in [(3, "a"), (1, "b"), (2, "c")]]
            out.append((yield AllOf(sim, ps)))

        sim.process(waiter(sim))
        sim.run()
        assert out == [["a", "b", "c"]]
        assert sim.now == 3

    def test_any_of_returns_first_value(self, sim):
        def mk(sim, t, v):
            yield sim.timeout(t)
            return v

        out = []

        def waiter(sim):
            ps = [sim.process(mk(sim, t, v)) for t, v in [(3, "slow"), (1, "fast")]]
            out.append((yield AnyOf(sim, ps)))

        sim.process(waiter(sim))
        sim.run()
        assert out == ["fast"]

    def test_all_of_empty_triggers_immediately(self, sim):
        out = []

        def waiter(sim):
            out.append((yield AllOf(sim, [])))

        sim.process(waiter(sim))
        sim.run()
        assert out == [[]]
        assert sim.now == 0

    def test_all_of_fails_fast_on_child_failure(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise RuntimeError("fail-fast")

        def slow(sim):
            yield sim.timeout(100)

        caught = []

        def waiter(sim):
            try:
                yield AllOf(sim, [sim.process(bad(sim)), sim.process(slow(sim))])
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        sim.process(waiter(sim))
        sim.run()
        assert caught == [(1, "fail-fast")]

    def test_any_of_helper_methods(self, sim):
        ev1, ev2 = sim.event(), sim.event()
        any_ev = sim.any_of([ev1, ev2])
        all_ev = sim.all_of([ev1, ev2])
        ev1.succeed("x")
        ev2.succeed("y")
        sim.run()
        assert any_ev.value == "x"
        assert all_ev.value == ["x", "y"]


class TestTimeoutPooling:
    """Free-list recycling of processed Timeout objects."""

    @pytest.fixture(autouse=True)
    def _default_kernel(self, monkeypatch):
        # Pooling is a default-kernel feature; pin it so an ambient
        # REPRO_KERNEL=reference (the CI oracle job) can't flip these.
        monkeypatch.delenv("REPRO_KERNEL", raising=False)

    def test_processed_timeout_is_recycled(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        assert len(sim._free_timeouts) == 1
        pooled = sim._free_timeouts[-1]
        assert sim.timeout(2.0) is pooled  # pop re-arms the same object

    def test_recycled_timeout_waits_correctly(self, sim):
        times = []

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(1.5)
                times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [1.5, 3.0, 4.5, 6.0, 7.5]
        # steady state ping-pongs between two instances: the next wait's
        # timeout is created (inside _resume) before the firing one is
        # recycled, so five waits allocate exactly two objects
        assert len(sim._free_timeouts) == 2

    def test_aliased_timeout_is_not_recycled(self, sim):
        held = []

        def proc(sim):
            t = sim.timeout(1.0)
            held.append(t)  # external alias survives processing
            yield t

        sim.process(proc(sim))
        sim.run()
        assert held[0] not in sim._free_timeouts
        assert held[0].triggered and held[0].ok

    def test_reference_kernel_never_pools(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        assert sim._free_timeouts == []


class TestHeapCompaction:
    """Lazy deletion of cancelled timeouts with threshold compaction."""

    @pytest.fixture(autouse=True)
    def _default_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)

    def test_cancelled_timeouts_are_compacted_out(self, sim):
        cancelled = [sim.timeout(1000.0) for _ in range(200)]
        live = sim.timeout(5.0)
        fired = []
        live._add_callback(lambda ev: fired.append(sim.now))
        for t in cancelled:
            t.cancel()
        # the lazy-deletion debt crossed COMPACT_MIN_STALE while
        # outnumbering live entries, so the heap was rebuilt (repeatedly)
        # in place: the bulk of the 200 dead entries is gone and the
        # remaining debt sits below the threshold again
        assert len(sim._heap) < 100
        assert sim._stale < Simulator.COMPACT_MIN_STALE
        assert sim._stale == len(sim._heap) - 1  # every survivor but `live` is dead
        sim.run(until=10.0)
        assert fired == [5.0]

    def test_small_heaps_are_never_compacted(self, sim):
        timeouts = [sim.timeout(100.0) for _ in range(10)]
        for t in timeouts:
            t.cancel()
        # 10 < COMPACT_MIN_STALE: all entries still heaped, just dead
        assert sim._stale == 10
        assert len(sim._heap) == 10
        sim.run()
        assert sim.now == 100.0

    def test_compaction_preserves_live_timers(self, sim):
        fired = []
        for i in range(1, 6):
            t = sim.timeout(float(i))
            t._add_callback(lambda ev, i=i: fired.append((sim.now, i)))
        doomed = [sim.timeout(500.0) for _ in range(150)]
        for t in doomed:
            t.cancel()
        sim.run(until=10.0)
        assert fired == [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4), (5.0, 5)]


class TestPeriodic:
    """The allocation-free periodic-wakeup path."""

    @pytest.fixture(autouse=True)
    def _default_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)

    def test_ticks_at_interval(self, sim):
        ticks = []
        sim.periodic(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_immediate_first_tick(self, sim):
        ticks = []
        sim.periodic(2.0, lambda: ticks.append(sim.now), immediate=True)
        sim.run(until=5.0)
        assert ticks == [0.0, 2.0, 4.0]

    def test_stops_when_fn_returns_false(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                return False

        sim.periodic(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_cancel_stops_ticks(self, sim):
        ticks = []
        p = sim.periodic(1.0, lambda: ticks.append(sim.now))

        def canceller(sim):
            yield sim.timeout(2.5)
            p.cancel()

        sim.process(canceller(sim))
        sim.run(until=6.0)
        assert ticks == [1.0, 2.0]
        assert p.cancelled

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.periodic(0.0, lambda: None)

    def test_impure_tick_raises(self, sim):
        def bad_tick():
            sim.timeout(5.0)  # schedules — violates the pure contract

        sim.periodic(1.0, bad_tick, pure=True)
        with pytest.raises(SimulationError, match="pure periodic"):
            sim.run(until=10.0)

    def test_reference_kernel_uses_generator_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        sim = Simulator()
        ticks = []
        p = sim.periodic(2.0, lambda: ticks.append(sim.now), immediate=True)
        sim.run(until=5.0)
        assert ticks == [0.0, 2.0, 4.0]
        p.cancel()
        sim.run(until=9.0)
        assert ticks == [0.0, 2.0, 4.0]


class TestBatchTick:
    """Same-instant batch processing of pure periodic cohorts."""

    COHORT = 64  # >= Simulator.BATCH_MIN_FAST, so the batch path engages

    @pytest.fixture(autouse=True)
    def _default_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)

    def _tick_trace(self, batch_enabled, monkeypatch, wire=None):
        if not batch_enabled:
            monkeypatch.setattr(Simulator, "BATCH_MIN_FAST", 10**9)
        sim = Simulator()
        ticks = []
        handles = []
        for i in range(self.COHORT):
            def tick(i=i):
                ticks.append((sim.now, i))

            handles.append(sim.periodic(1.0, tick, pure=True))
        if wire is not None:
            wire(sim, handles, ticks)
        sim.run(until=4.5)
        return ticks, sim._seq

    def test_batch_matches_one_at_a_time(self, monkeypatch):
        batched, seq_b = self._tick_trace(True, monkeypatch)
        serial, seq_s = self._tick_trace(False, monkeypatch)
        assert batched == serial
        assert seq_b == seq_s
        assert len(batched) == self.COHORT * 4

    def test_shared_instant_aborts_batch(self, monkeypatch):
        def wire(sim, handles, ticks):
            # a plain timeout landing on a cohort instant forces the
            # one-at-a-time fallback for that instant only
            t = sim.timeout(2.0)
            t._add_callback(lambda ev: ticks.append((sim.now, "timeout")))

        batched, seq_b = self._tick_trace(True, monkeypatch, wire)
        serial, seq_s = self._tick_trace(False, monkeypatch, wire)
        assert batched == serial
        assert seq_b == seq_s
        assert (2.0, "timeout") in batched

    def test_cancel_from_within_cohort(self, monkeypatch):
        def wire(sim, handles, ticks):
            victim = handles[-1]

            def assassin(sim):
                yield sim.timeout(2.5)
                victim.cancel()

            sim.process(assassin(sim))

        batched, seq_b = self._tick_trace(True, monkeypatch, wire)
        serial, seq_s = self._tick_trace(False, monkeypatch, wire)
        assert batched == serial
        assert seq_b == seq_s
        # the victim ticked at 1.0 and 2.0 only
        victim_ticks = [t for t, i in batched if i == self.COHORT - 1]
        assert victim_ticks == [1.0, 2.0]

    def test_stop_from_within_batch(self, monkeypatch):
        def wire(sim, handles, ticks):
            # member 0 retires itself on its second tick
            calls = []

            def quitter():
                calls.append(sim.now)
                ticks.append((sim.now, "quitter"))
                if len(calls) == 2:
                    return False

            handles.append(sim.periodic(1.0, quitter, pure=True))

        batched, seq_b = self._tick_trace(True, monkeypatch, wire)
        serial, seq_s = self._tick_trace(False, monkeypatch, wire)
        assert batched == serial
        assert seq_b == seq_s
        quitter_ticks = [t for t, i in batched if i == "quitter"]
        assert quitter_ticks == [1.0, 2.0]

    def test_aborted_instant_scans_once(self, monkeypatch):
        # An impure periodic sharing every cohort instant aborts the
        # batch. The abort must be remembered for the instant: retrying
        # the O(heap) scan for each of the n cohort members would make
        # shared instants O(n^2) — the pathology that made the scalar
        # RM (impure liveness tick on the heartbeat grid) 40x slower
        # at 1024 nodes.
        scans = []
        real = Simulator._batch_tick

        def counting(sim, heap, t):
            scans.append(t)
            return real(sim, heap, t)

        monkeypatch.setattr(Simulator, "_batch_tick", counting)

        def wire(sim, handles, ticks):
            sim.periodic(1.0, lambda: ticks.append((sim.now, "impure")))

        batched, _ = self._tick_trace(True, monkeypatch, wire)
        serial, _ = self._tick_trace(False, monkeypatch, wire)
        assert batched == serial
        # one aborted attempt per shared instant (1.0 .. 4.0), not one
        # per cohort member
        assert len(scans) <= 4


class TestConditionDetach:
    """Triggered conditions unsubscribe from their remaining children."""

    def test_late_failing_anyof_loser_does_not_escape(self, sim):
        winner, loser = sim.event(), sim.event()
        cond = sim.any_of([winner, loser])

        def driver(sim):
            yield sim.timeout(1.0)
            winner.succeed("won")
            yield sim.timeout(1.0)
            loser.fail(RuntimeError("late loser"))

        sim.process(driver(sim))
        sim.run()  # must not raise: the loser's failure is defused
        assert cond.value == "won"

    def test_allof_detaches_after_fail_fast(self, sim):
        bad, slow = sim.event(), sim.event()
        cond = sim.all_of([bad, slow])

        def driver(sim):
            yield sim.timeout(1.0)
            bad.fail(RuntimeError("first failure"))
            yield sim.timeout(1.0)
            slow.fail(RuntimeError("second failure"))

        sim.process(driver(sim))
        cond.defuse()
        sim.run()  # the second failure must also be defused
        assert not cond.ok
        assert str(cond._exc) == "first failure"

    def test_anyof_winner_detaches_loser_callbacks(self, sim):
        winner, loser = sim.event(), sim.event()
        cond = sim.any_of([winner, loser])
        assert any(cb == cond._check for cb in loser.callbacks)
        winner.succeed("x")
        sim.run()
        assert not any(cb == cond._check for cb in (loser.callbacks or []))


class TestKernelEquivalence:
    """REPRO_KERNEL=reference (generator periodics, no pooling, the
    pre-overhaul run loop) must reproduce the default kernel's seeded
    digests exactly."""

    def test_periodic_path_on_off_same_digest(self, monkeypatch):
        from repro.runner import trace_digest
        from tests.conftest import make_runtime

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        d_default = trace_digest(make_runtime(seed=11).run().trace)
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        d_reference = trace_digest(make_runtime(seed=11).run().trace)
        assert d_default == d_reference
