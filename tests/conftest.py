"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.cluster.node import GB, MB
from repro.hdfs.hdfs import HdfsConfig
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.workloads.workload import Workload
from repro.yarn.rm import YarnConfig


def pytest_collection_modifyitems(config, items):
    """Every test not explicitly marked ``slow`` is tier-1, so the two
    tiers partition the suite: ``-m "not slow"`` (the ROADMAP tier-1
    command) and ``-m slow`` together run everything exactly once."""
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)


def tiny_workload(
    input_mb: float = 512.0,
    reducers: int = 2,
    map_sel: float = 1.0,
    map_cpu: float = 0.02,
    reduce_cpu: float = 0.02,
    reduce_sel: float = 1.0,
    name: str = "tiny",
) -> Workload:
    """A small, fast workload for unit/integration tests."""
    return Workload(
        name=name,
        input_size=input_mb * MB,
        num_reducers=reducers,
        map_selectivity=map_sel,
        map_cpu_per_mb=map_cpu,
        reduce_cpu_per_mb=reduce_cpu,
        reduce_selectivity=reduce_sel,
        partition_skew=0.0,
    )


def small_cluster(nodes: int = 6, seed: int = 42) -> ClusterSpec:
    return ClusterSpec(
        num_nodes=nodes,
        num_racks=2,
        node=NodeSpec(memory_mb=16 * 1024, disk_bandwidth=200 * MB, nic_bandwidth=400 * MB),
        core_bandwidth=1 * GB,
        seed=seed,
    )


def make_runtime(workload=None, nodes: int = 6, policy=None, seed: int = 42,
                 conf: JobConf | None = None, replication: int = 2,
                 yarn_config: YarnConfig | None = None,
                 **kw) -> MapReduceRuntime:
    return MapReduceRuntime(
        workload or tiny_workload(),
        conf=conf or JobConf(),
        cluster_spec=small_cluster(nodes, seed),
        yarn_config=yarn_config or YarnConfig(nm_liveness_timeout=20.0),
        hdfs_config=HdfsConfig(block_size=64 * MB, replication=replication),
        policy=policy,
        **kw,
    )


@pytest.fixture
def runtime():
    return make_runtime()
