"""The durable campaign layer: store semantics, scheduler strategies,
plan building, and the crash-durability primitives (atomic writes, torn
file recovery, corrupt-store quarantine)."""

import json
import os

import pytest

from repro.campaign import (
    STRATEGIES,
    CampaignPlan,
    CampaignScheduler,
    CampaignStore,
    StoreError,
    TrialSpec,
    aggregate_chaos,
    build_plan,
    resolve_function,
)
from repro.faults.chaos import reproducer_path, run_campaign
from repro.runner import TrialRunner, atomic_write_text


def _toy_trial(seed, offset=0):
    return {"value": seed * seed + offset, "success": True, "digest": f"d{seed}"}


def _toy_plan(seeds, priority=None, depends=None, experiment="toy"):
    return CampaignPlan(
        spec={"kind": "function", "fn": "tests.test_campaign:_toy_trial",
              "experiment": experiment, "seeds": list(seeds)},
        experiment=experiment,
        fn=_toy_trial,
        kwargs={},
        trials=[TrialSpec(s, (priority or {}).get(s, 0),
                          tuple((depends or {}).get(s, ())))
                for s in seeds],
    )


def _completion_order(store, campaign_id):
    """Seeds in the order they were recorded (sqlite rowid order)."""
    rows = store._conn.execute(
        "SELECT seed FROM trials WHERE campaign_id = ? ORDER BY rowid",
        (campaign_id,)).fetchall()
    return [r[0] for r in rows]


class TestStore:
    def test_register_and_lookup_by_prefix(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            store.register("a" * 64, {"kind": "function", "seeds": [1]})
            row = store.campaign("aaaa")
            assert row["campaign_id"] == "a" * 64
            assert row["status"] == "running"
            with pytest.raises(StoreError):
                store.campaign("ffff")

    def test_ambiguous_prefix_rejected(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            store.register("ab" + "0" * 62, {"kind": "function"})
            store.register("ab" + "1" * 62, {"kind": "function"})
            with pytest.raises(StoreError, match="ambiguous"):
                store.campaign("ab")

    def test_record_trial_upsert_counts_runs(self):
        with CampaignStore() as store:
            store.register("c1", {})
            store.record_trial("c1", 5, {"digest": "x"}, wall_seconds=0.1)
            assert store.max_run_count("c1") == 1
            store.record_trial("c1", 5, {"digest": "x"}, wall_seconds=0.2)
            assert store.max_run_count("c1") == 1 + 1
            assert store.completed_seeds("c1") == {5}
            assert store.counts("c1")["done"] == 1

    def test_payloads_and_digests_in_seed_order(self):
        with CampaignStore() as store:
            store.register("c1", {})
            for seed in (3, 1, 2):
                store.record_trial("c1", seed, {"digest": f"d{seed}", "seed": seed})
            assert [s for s, _ in store.payloads("c1")] == [1, 2, 3]
            assert store.digests("c1") == ["d1", "d2", "d3"]

    def test_latest_incomplete_and_status(self):
        with CampaignStore() as store:
            store.register("c1", {"kind": "function"})
            store.register("c2", {"kind": "function"})
            store.mark_status("c2", "complete")
            assert store.latest_incomplete()["campaign_id"] == "c1"
            store.mark_status("c1", "complete")
            assert store.latest_incomplete() is None

    def test_reregister_reopens_completed_campaign(self):
        with CampaignStore() as store:
            store.register("c1", {"trials": 5})
            store.mark_status("c1", "complete", error=None)
            store.register("c1", {"trials": 9})
            row = store.campaign("c1")
            assert row["status"] == "running"
            assert row["spec"] == {"trials": 9}

    def test_corrupt_store_quarantined(self, tmp_path):
        path = tmp_path / "c.db"
        path.write_bytes(b"this is not a sqlite database, not even close" * 100)
        with CampaignStore(path) as store:
            assert store.quarantined is not None
            assert os.path.exists(store.quarantined)
            # ... and the fresh store at the original path works.
            store.register("c1", {})
            store.record_trial("c1", 1, {"digest": "d"})
            assert store.completed_seeds("c1") == {1}


class TestAtomicWrite:
    def test_write_and_overwrite(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        # No temp files left behind in the directory.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_torn_cache_file_recovered(self, tmp_path):
        """A torn (half-written) runner cache entry is discarded, the
        trial re-runs, and the entry is rewritten valid — resume-through
        -cache survives a kill mid-write."""
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        [r1] = runner.run("torn", _toy_trial, [4])
        cache_files = list(tmp_path.rglob("*.json"))
        assert len(cache_files) == 1
        valid = cache_files[0].read_text()
        cache_files[0].write_text(valid[:len(valid) // 2])  # tear it
        [r2] = runner.run("torn", _toy_trial, [4])
        assert not r2.cached  # torn entry discarded, trial re-ran
        assert r2.payload == r1.payload
        assert json.loads(cache_files[0].read_text())["payload"] == r1.payload
        [r3] = runner.run("torn", _toy_trial, [4])
        assert r3.cached  # rewritten entry is valid again


class TestScheduler:
    def test_fifo_runs_in_submission_order(self):
        with CampaignStore() as store:
            plan = _toy_plan([5, 3, 9, 1])
            CampaignScheduler(store, strategy="fifo").run(plan)
            assert _completion_order(store, plan.campaign_id()) == [5, 3, 9, 1]

    def test_priority_runs_high_first(self):
        with CampaignStore() as store:
            plan = _toy_plan([1, 2, 3, 4], priority={2: 5, 4: 9})
            CampaignScheduler(store, strategy="priority").run(plan)
            assert _completion_order(store, plan.campaign_id()) == [4, 2, 1, 3]

    def test_dependency_respects_deps_across_batches(self):
        with CampaignStore() as store:
            # 1 depends on 3, 3 depends on 2: only 2 is initially ready.
            plan = _toy_plan([1, 2, 3], depends={1: (3,), 3: (2,)})
            CampaignScheduler(store, strategy="dependency", batch_size=1).run(plan)
            assert _completion_order(store, plan.campaign_id()) == [2, 3, 1]

    def test_dependency_deadlock_names_stuck_seeds(self):
        with CampaignStore() as store:
            plan = _toy_plan([1, 2], depends={1: (2,), 2: (1,)})
            with pytest.raises(StoreError, match="deadlock"):
                CampaignScheduler(store, strategy="dependency").run(plan)

    def test_dependency_satisfied_by_stored_trials(self):
        """A dependency completed in a *previous* (killed) run counts:
        resume must not deadlock on already-done prerequisites."""
        with CampaignStore() as store:
            plan = _toy_plan([1, 2], depends={2: (1,)})
            store.register(plan.campaign_id(), plan.spec)
            store.record_trial(plan.campaign_id(), 1, _toy_trial(1))
            summary = CampaignScheduler(store, strategy="dependency").run(plan)
            assert summary["executed"] == 1 and summary["skipped"] == 1

    def test_unknown_strategy_rejected(self):
        with CampaignStore() as store:
            with pytest.raises(StoreError, match="strategy"):
                CampaignScheduler(store, strategy="random")
        assert set(STRATEGIES) == {"fifo", "priority", "dependency"}

    def test_unnameable_fn_is_not_durable(self):
        plan = CampaignPlan(spec={}, experiment="bad", fn=lambda s: {}, kwargs={})
        with pytest.raises(StoreError, match="not durable"):
            plan.campaign_id()

    def test_resume_skips_completed(self):
        with CampaignStore() as store:
            plan = _toy_plan(range(6))
            first = CampaignScheduler(store).run(plan)
            again = CampaignScheduler(store).run(plan)
            assert (first["executed"], first["skipped"]) == (6, 0)
            assert (again["executed"], again["skipped"]) == (0, 6)
            assert store.max_run_count(plan.campaign_id()) == 1

    def test_raising_trial_checkpoints_error_and_completed_work(self):
        def _boom(seed):
            if seed == 2:
                raise ValueError("boom")
            return {"seed": seed}
        _boom.__module__ = _toy_trial.__module__
        _boom.__qualname__ = "unique_boom_fn"
        with CampaignStore() as store:
            plan = CampaignPlan(spec={"kind": "function"}, experiment="boom",
                                fn=_boom, trials=[TrialSpec(s) for s in (1, 2, 3)])
            with pytest.raises(Exception, match="boom"):
                CampaignScheduler(store).run(plan)
            cid = plan.campaign_id()
            assert 1 in store.completed_seeds(cid)  # pre-failure work kept
            row = store.campaign(cid)
            assert row["status"] == "running"
            assert "boom" in row["last_error"]


class TestPlans:
    def test_unknown_kind_rejected(self):
        with pytest.raises(StoreError, match="kind"):
            build_plan({"kind": "nope"})

    def test_resolve_function_both_syntaxes(self):
        assert resolve_function("tests.test_campaign:_toy_trial") is _toy_trial
        assert resolve_function("tests.test_campaign._toy_trial") is _toy_trial
        for bad in ("nosuchmodule.zz:fn", "tests.test_campaign:nope", "bare"):
            with pytest.raises(StoreError):
                resolve_function(bad)

    def test_chaos_plan_rebuilds_from_stored_spec(self):
        plan = build_plan({"kind": "chaos", "seed": 3, "trials": 5, "scale": 0.5})
        rebuilt = build_plan(plan.spec)
        assert rebuilt.campaign_id() == plan.campaign_id()
        assert [t.seed for t in rebuilt.trials] == [0, 1, 2, 3, 4]

    def test_function_plan_carries_priority_and_deps(self):
        plan = build_plan({
            "kind": "function", "fn": "tests.test_campaign:_toy_trial",
            "seeds": [1, 2], "priority": {"2": 7}, "depends_on": {"2": [1]},
        })
        assert plan.trials[1] == TrialSpec(2, 7, (1,))

    def test_matrix_plan_round_trips_jobs(self):
        jobs = [["clean-terasort-yarn", "default", "default", ""]]
        plan = build_plan({"kind": "verify-matrix", "jobs": jobs})
        assert plan.kwargs["jobs"] == (("clean-terasort-yarn", "default",
                                       "default", ""),)
        assert build_plan(plan.spec).campaign_id() == plan.campaign_id()

    def test_aggregate_chaos_streams_counters(self):
        payloads = [
            (0, {"spec": {"index": 0, "policy": "yarn",
                          "faults": [{"kind": "task-oom"}]},
                 "success": True, "violations": [], "digest": "d0"}),
            (1, {"spec": {"index": 1, "policy": "alg",
                          "faults": [{"kind": "rack"}, {"kind": "task-oom"}]},
                 "success": False, "violations": ["bad"], "digest": "d1"}),
        ]
        agg = aggregate_chaos(iter(payloads))
        assert agg["by_policy"] == {"yarn": 1, "alg": 1}
        assert agg["by_kind"] == {"task-oom": 2, "rack": 1}
        assert agg["jobs_failed"] == 1
        assert agg["violating_trials"] == [1]
        assert agg["digests"] == ["d0", "d1"]


class TestReproducerPath:
    def test_distinct_per_scale_and_campaign(self, tmp_path):
        """Same seed, different scale (or campaign) must never collide
        in a shared --out directory."""
        a = reproducer_path(tmp_path, 7, 1.0, "aabbccdd" * 8, 3)
        b = reproducer_path(tmp_path, 7, 0.5, "aabbccdd" * 8, 3)
        c = reproducer_path(tmp_path, 7, 1.0, "eeffeeff" * 8, 3)
        assert len({a, b, c}) == 3
        assert "s7" in a.name and "x0.5" in b.name and "t3" in a.name


class TestChaosCampaignOnStore:
    def test_one_shot_summary_shape_unchanged(self):
        summary = run_campaign(seed=7, trials=4, scale=0.25, out_dir=None,
                               minimize=False, echo=lambda *_: None)
        assert summary["trials"] == 4
        assert summary["executed"] == 4 and summary["skipped"] == 0
        assert len(summary["digests"]) == 4
        assert sum(summary["by_policy"].values()) == 4

    def test_durable_rerun_executes_nothing(self, tmp_path):
        db = tmp_path / "c.db"
        kw = dict(seed=7, trials=4, scale=0.25, out_dir=None, minimize=False,
                  echo=lambda *_: None, store=db)
        first = run_campaign(**kw)
        second = run_campaign(**kw)
        assert second["executed"] == 0 and second["skipped"] == 4
        assert second["digests"] == first["digests"]
        with CampaignStore(db) as store:
            assert store.max_run_count(first["campaign_id"]) == 1

    def test_extending_trials_reuses_prefix(self, tmp_path):
        db = tmp_path / "c.db"
        kw = dict(seed=7, scale=0.25, out_dir=None, minimize=False,
                  echo=lambda *_: None, store=db)
        run_campaign(trials=3, **kw)
        extended = run_campaign(trials=5, **kw)
        assert extended["skipped"] == 3 and extended["executed"] == 2
