"""The greedy drop-one-fault minimizer, regression-tested against the
checked-in reproducers for the three bugs the PR-3 chaos campaign found.

Those bugs are fixed, so their schedules can no longer drive the
minimizer through real invariant violations. The tests split the two
halves apart:

- *Replay-clean*: every reproducer's full spec runs violation-free and
  actually fires its faults — the fixes hold, and the scenarios have
  not rotted into no-ops.
- *Convergence*: with a synthetic oracle ("the culprit fault is still
  in the schedule"), the minimizer drops every decoy and converges to
  exactly the 1-fault reproducer recorded in the JSON.
"""

import json
from pathlib import Path

import pytest

from repro.faults.chaos import minimize_spec, run_trial_spec

REPRODUCERS = sorted((Path(__file__).parent / "reproducers").glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


@pytest.mark.parametrize("path", REPRODUCERS, ids=lambda p: p.stem)
class TestReproducers:
    def test_replays_clean_and_fires(self, path):
        repro = _load(path)
        payload = run_trial_spec(repro["spec"])
        assert payload["violations"] == [], (
            f"{path.stem}: the bug fixed in {repro['fixed_in']} is back")
        assert payload["success"]
        assert payload["faults_fired"] >= 1

    def test_minimizer_converges_to_recorded_culprit(self, path):
        repro = _load(path)
        (culprit,) = repro["minimized_faults"]
        assert culprit in repro["spec"]["faults"]
        n_faults = len(repro["spec"]["faults"])

        runs = []

        def culprit_still_scheduled(candidate):
            runs.append(len(candidate["faults"]))
            return culprit in candidate["faults"]

        minimized = minimize_spec(repro["spec"],
                                  violates=culprit_still_scheduled)
        assert minimized["faults"] == [culprit]
        # Greedy drop-one: bounded by n^2 runs, not exhaustive.
        assert len(runs) <= n_faults * n_faults
        # The input spec is untouched (minimize returns a new dict).
        assert len(repro["spec"]["faults"]) == n_faults


class TestMinimizeSpec:
    _SPEC = {"faults": [{"kind": "a"}, {"kind": "b"}, {"kind": "c"}]}

    def test_floor_one_keeps_last_fault_even_if_always_violating(self):
        minimized = minimize_spec(dict(self._SPEC), violates=lambda c: True)
        assert len(minimized["faults"]) == 1

    def test_floor_zero_can_empty_the_schedule(self):
        minimized = minimize_spec(dict(self._SPEC), violates=lambda c: True,
                                  floor=0)
        assert minimized["faults"] == []

    def test_nothing_droppable_returns_schedule_unchanged(self):
        minimized = minimize_spec(dict(self._SPEC), violates=lambda c: False)
        assert minimized["faults"] == self._SPEC["faults"]

    def test_order_of_survivors_preserved(self):
        keep = [{"kind": "a"}, {"kind": "c"}]
        minimized = minimize_spec(
            dict(self._SPEC),
            violates=lambda c: all(f in c["faults"] for f in keep))
        assert minimized["faults"] == keep
