"""Smoke/shape tests for the experiment drivers at reduced scale.

The benchmarks run these drivers at (half) paper scale; here we verify
the drivers' mechanics — row structure, bookkeeping, paper-shape
directionality — with small inputs so the suite stays fast.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    fig01_recovery_time,
    fig02_delayed_execution,
    fig03_temporal_amplification,
    fig08_alg_task_failure,
    fig09_sfm_node_failure,
    fig10_sfm_trace,
    fig12_log_frequency,
    fig14_concurrent_failures,
    fig15_sfm_plus_alg,
    format_table,
    table2_spatial_recovery,
)
from repro.experiments.common import make_policy, run_benchmark_job
from repro.sim.core import SimulationError
from repro.workloads import terasort


SCALE = 0.1  # 10 GB terasort / 1 GB wordcount: seconds of wall time


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


class TestCommon:
    def test_make_policy_names(self):
        assert make_policy("yarn").name == "yarn"
        assert make_policy("alg").name == "alg"
        assert make_policy("sfm").name == "sfm"
        assert make_policy("alm").name == "alm"
        with pytest.raises(SimulationError):
            make_policy("hope")

    def test_run_benchmark_job_returns_runtime_and_result(self):
        rt, res = run_benchmark_job(terasort(2.0), "yarn")
        assert res.success
        assert rt.am.committed_reduces == 20

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in out

    def test_experiment_config_with_seed(self, config):
        c2 = config.with_seed(99)
        assert c2.cluster.seed == 99
        assert c2.yarn is config.yarn


class TestDriverShapes:
    def test_fig01_rows(self):
        rows = fig01_recovery_time(map_failure_counts=(1, 4), scale=SCALE)
        kinds = [(r.failure, r.count) for r in rows]
        assert ("reducetask", 1) in kinds
        assert all(r.recovery_time >= 0 for r in rows)

    def test_fig02_degradation_computed(self):
        rows = fig02_delayed_execution(progress_points=(0.9,), scale=SCALE)
        assert {r.workload for r in rows} == {"terasort", "wordcount"}
        red = [r for r in rows if r.failure == "reducetask"]
        assert all(r.degradation_pct > -10 for r in red)

    def test_fig03_timeline_fields(self):
        res = fig03_temporal_amplification(scale=0.5)
        assert res.detect_time > res.crash_time
        assert 60 <= res.detection_delay <= 75
        assert res.progress_series  # sampled curve exists

    def test_fig08_rows_cover_grid(self):
        rows = fig08_alg_task_failure(progress_points=(0.8,), scale=SCALE)
        systems = {(r.workload, r.system) for r in rows}
        for wl in ("terasort", "wordcount", "secondarysort"):
            assert (wl, "failure-free") in systems
            assert (wl, "yarn") in systems
            assert (wl, "alg") in systems

    def test_fig09_sfm_beats_yarn_on_node_failure(self):
        rows = fig09_sfm_node_failure(progress_points=(0.5,), scale=0.3)
        by = {(r.workload, r.system): r.job_time for r in rows if r.progress >= 0}
        assert by[("wordcount", "sfm")] <= by[("wordcount", "yarn")]

    def test_fig10_combined(self):
        res = fig10_sfm_trace(scale=0.5)
        assert res.sfm_eliminates_repeat_failures
        assert res.yarn.repeat_failure_times

    def test_fig12_tick_counts_decrease_with_interval(self):
        rows = fig12_log_frequency(frequencies=(5.0, 20.0), input_gb=20.0, scale=SCALE)
        assert rows[0].log_ticks >= rows[1].log_ticks

    def test_fig14_rows(self):
        rows = fig14_concurrent_failures(
            per_reducer_gb=(1.0,), failure_counts=(2,), scale=0.5,
            num_reducers=4)
        assert {r.system for r in rows} == {"yarn", "sfm"}
        assert all(r.recovery_time >= 0 for r in rows)

    def test_fig15_rows(self):
        rows = fig15_sfm_plus_alg(scale=0.2)
        assert {r.system for r in rows} == {"sfm", "alm"}

    def test_table2_sfm_never_amplifies(self):
        rows = table2_spatial_recovery(points=(0.2,), scale=0.3)
        sfm = [r for r in rows if r.system == "SFM"]
        assert all(r.additional_failures == 0 for r in sfm)
