"""Unit tests for MapReduce building blocks: JobConf, MOFs, tasks."""

import numpy as np
import pytest

from repro.cluster.node import MB
from repro.mapreduce.config import JobConf
from repro.mapreduce.mof import MapOutput, MOFRegistry
from repro.mapreduce.tasks import Task, TaskState, TaskType
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


class TestJobConf:
    def test_defaults_match_table1(self):
        conf = JobConf()
        assert conf.map_memory_mb == 1536
        assert conf.reduce_memory_mb == 4096
        assert conf.io_sort_factor == 100
        assert conf.output_replication == 2

    def test_shuffle_buffer_derivations(self):
        conf = JobConf()
        assert conf.shuffle_buffer_bytes == pytest.approx(4096 * MB * 0.70)
        assert conf.shuffle_merge_trigger_bytes < conf.shuffle_buffer_bytes
        assert conf.shuffle_single_segment_max < conf.shuffle_buffer_bytes

    def test_validation(self):
        with pytest.raises(SimulationError):
            JobConf(io_sort_factor=1)
        with pytest.raises(SimulationError):
            JobConf(num_fetchers=0)
        with pytest.raises(SimulationError):
            JobConf(shuffle_buffer_fraction=0.0)
        with pytest.raises(SimulationError):
            JobConf(max_attempts=0)
        with pytest.raises(SimulationError):
            JobConf(fetch_retries_per_host=0)


class TestMOFRegistry:
    def _mof(self, map_id, node, sizes=(10.0, 20.0)):
        return MapOutput(map_id, f"map-{map_id}.0", node, np.array(sizes))

    def test_register_and_lookup(self, runtime):
        reg = MOFRegistry()
        node = runtime.workers[0]
        mof = self._mof(0, node)
        reg.register(mof)
        assert reg.get(0) is mof
        assert 0 in reg
        assert len(reg) == 1
        assert mof.total_size == 30.0
        assert mof.partition(1) == 20.0

    def test_invalidate(self, runtime):
        reg = MOFRegistry()
        reg.register(self._mof(0, runtime.workers[0]))
        reg.invalidate(0)
        assert reg.get(0) is None
        reg.invalidate(0)  # idempotent

    def test_on_node(self, runtime):
        reg = MOFRegistry()
        a, b = runtime.workers[0], runtime.workers[1]
        reg.register(self._mof(0, a))
        reg.register(self._mof(1, a))
        reg.register(self._mof(2, b))
        assert {m.map_id for m in reg.on_node(a)} == {0, 1}

    def test_on_disk_tracks_local_file(self, runtime):
        node = runtime.workers[0]
        mof = self._mof(0, node)
        assert not mof.on_disk()
        node.write_file(mof.path, mof.total_size, kind="mof")
        assert mof.on_disk()
        runtime.cluster.crash_node(node)
        assert not mof.on_disk()


class TestTaskModel:
    def test_task_naming_and_state(self):
        t = Task(3, TaskType.MAP)
        assert t.name == "map-3"
        assert t.state is TaskState.PENDING
        assert not t.is_finished
        t.state = TaskState.SUCCEEDED
        assert t.is_finished


class TestMapExecution:
    def test_maps_prefer_local_splits(self):
        rt = make_runtime()
        res = rt.run()
        assert res.success
        local = remote = 0
        for task in rt.am.map_tasks:
            attempt = task.attempts[0]
            if attempt.node in task.block.replicas:
                local += 1
            else:
                remote += 1
        assert local > remote  # locality-aware scheduling dominates

    def test_map_locality_counters(self):
        rt = make_runtime()
        res = rt.run()
        counts = res.counters["map_locality"]
        assert sum(counts.values()) == rt.am.num_maps
        assert counts["data-local"] > counts["off-rack"]

    def test_mofs_registered_with_partition_sizes(self):
        rt = make_runtime(tiny_workload(reducers=4))
        rt.run()
        am = rt.am
        assert len(am.registry) == am.num_maps
        for mid in range(am.num_maps):
            mof = am.registry.get(mid)
            assert mof.partition_sizes.shape == (4,)
            assert mof.total_size == pytest.approx(am.map_tasks[mid].block.size)

    def test_mof_files_written_to_local_disk(self):
        rt = make_runtime()
        rt.run()
        total_mof = sum(n.local_bytes("mof") for n in rt.workers)
        assert total_mof == pytest.approx(rt.workload.shuffle_bytes)

    def test_map_spill_pass_charged_for_large_outputs(self):
        # With io_sort_mb below the block size, maps pay an extra merge
        # pass and the job takes measurably longer.
        fast = make_runtime(conf=JobConf(io_sort_mb=1024 * MB)).run()
        slow = make_runtime(conf=JobConf(io_sort_mb=16 * MB)).run()
        assert slow.elapsed > fast.elapsed
