"""Tests for the chaos campaign engine: deterministic schedule
generation, spec round-tripping, greedy minimization and the node
recovery paths the campaigns stress."""

import pytest

from repro.faults import (
    EventTrigger,
    MapWaveFault,
    NodeFault,
    PartitionFault,
    RackFault,
    SlowNodeFault,
    TaskFault,
)
import repro.faults.chaos as chaos
from repro.faults.chaos import (
    CHAOS_POLICIES,
    FAULT_KINDS,
    build_fault,
    generate_trial,
    minimize_spec,
    run_chaos_trial,
)
from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload

CAMPAIGN = {"seed": 7, "scale": 0.25}


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        for index in range(12):
            assert generate_trial(CAMPAIGN, index) == generate_trial(CAMPAIGN, index)

    def test_different_seed_different_schedule(self):
        a = generate_trial({"seed": 7}, 3)
        b = generate_trial({"seed": 8}, 3)
        assert a != b

    def test_policy_and_kind_rotation_covers_everything(self):
        specs = [generate_trial(CAMPAIGN, i) for i in range(40)]
        policies = {s["policy"] for s in specs}
        assert policies == set(CHAOS_POLICIES)
        # Every archetype appears as the primary kind within 40 trials.
        primary = {FAULT_KINDS[i % len(FAULT_KINDS)] for i in range(40)}
        assert primary == set(FAULT_KINDS)
        # And the materialised fault specs span >= 6 distinct kinds.
        spec_kinds = {f["kind"] for s in specs for f in s["faults"]}
        assert len(spec_kinds) >= 6

    def test_specs_are_json_primitives(self):
        import json

        for i in range(8):
            json.dumps(generate_trial(CAMPAIGN, i))  # must not raise

    def test_unknown_kind_rejected(self):
        rng = __import__("numpy").random.default_rng(0)
        with pytest.raises(SimulationError):
            chaos._sample_faults("no-such-kind", rng, {"nodes": 6, "reducers": 2,
                                                       "racks": 2, "liveness": 20.0})


class TestBuildFault:
    """Every JSON spec kind materialises as the right injector."""

    def test_task_oom(self):
        f = build_fault({"kind": "task-oom", "task_type": "map", "task_index": 3,
                         "at_progress": 0.25, "repeat": 2})
        assert isinstance(f, TaskFault)
        assert f.task_type is TaskType.MAP
        assert (f.task_index, f.at_progress, f.repeat) == (3, 0.25, 2)

    def test_node_crash_with_trigger(self):
        f = build_fault({"kind": "node-crash", "target": 2,
                         "after": {"kind": "node_lost", "delay": 10.0},
                         "duration": 90.0})
        assert isinstance(f, NodeFault)
        assert f.mode == "crash"
        assert isinstance(f.after, EventTrigger)
        assert f.after.kind == "node_lost" and f.after.delay == 10.0
        assert f.duration == 90.0

    def test_node_network(self):
        f = build_fault({"kind": "node-network", "target": "reducer",
                         "at_time": 30.0})
        assert isinstance(f, NodeFault) and f.mode == "network"

    def test_partition(self):
        f = build_fault({"kind": "partition", "node_indices": [1, 3],
                         "at_time": 40.0, "duration": 25.0})
        assert isinstance(f, PartitionFault)
        assert f.node_indices == (1, 3)

    def test_rack(self):
        f = build_fault({"kind": "rack", "rack_index": 1, "count": 2,
                         "at_time": 50.0, "mode": "crash", "stagger": 1.5,
                         "duration": 80.0})
        assert isinstance(f, RackFault)
        assert (f.rack_index, f.count, f.stagger) == (1, 2, 1.5)

    def test_degraded(self):
        f = build_fault({"kind": "degraded", "node_index": 2, "at_time": 10.0,
                         "disk_factor": 0.1, "nic_factor": 0.5})
        assert isinstance(f, SlowNodeFault)
        assert f.disk_factor == 0.1

    def test_map_wave(self):
        f = build_fault({"kind": "map-wave", "count": 2, "at_time": 5.0})
        assert isinstance(f, MapWaveFault)

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(SimulationError):
            build_fault({"kind": "cosmic-ray"})

    def test_generated_specs_all_buildable(self):
        for i in range(16):
            for d in generate_trial(CAMPAIGN, i)["faults"]:
                build_fault(d)  # must not raise


class TestTrialDeterminism:
    def test_same_trial_same_digest(self):
        a = run_chaos_trial(0, CAMPAIGN)
        b = run_chaos_trial(0, CAMPAIGN)
        assert a["digest"] == b["digest"]
        assert a["spec"] == b["spec"]
        assert a["violations"] == [] and b["violations"] == []


class TestMinimization:
    def test_minimize_drops_irrelevant_faults(self, monkeypatch):
        marker = {"kind": "task-oom", "task_index": 0, "_marker": True}
        noise = [{"kind": "map-wave", "count": 1, "at_time": 5.0},
                 {"kind": "node-crash", "target": 0, "at_time": 30.0}]

        def fake_run(spec):
            violating = any(f.get("_marker") for f in spec["faults"])
            return {"violations": ["boom"] if violating else []}

        monkeypatch.setattr(chaos, "run_trial_spec", fake_run)
        spec = {"index": 0, "faults": [noise[0], marker, noise[1]]}
        minimized = minimize_spec(spec)
        assert minimized["faults"] == [marker]
        # The input spec is not mutated.
        assert len(spec["faults"]) == 3

    def test_minimize_keeps_jointly_necessary_pair(self, monkeypatch):
        a = {"kind": "task-oom", "task_index": 0}
        b = {"kind": "node-crash", "target": 0, "at_time": 30.0}

        def fake_run(spec):
            return {"violations": ["boom"] if len(spec["faults"]) == 2 else []}

        monkeypatch.setattr(chaos, "run_trial_spec", fake_run)
        assert minimize_spec({"faults": [a, b]})["faults"] == [a, b]


class TestNodeRecovery:
    def test_partition_past_liveness_rejoins(self):
        """A partition outliving the liveness timeout must produce the
        full lost -> rejoin cycle, and the job must still finish."""
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1))
        # 30 s > the 20 s liveness timeout, yet short enough that the
        # heal lands while the job is still running (ends ~53 s).
        fault = PartitionFault(node_indices=(1,), at_time=4.0, duration=30.0)
        fault.install(rt)
        res = rt.run()
        assert res.success
        lost = rt.trace.of_kind("node_lost")
        rejoined = rt.trace.of_kind("node_rejoined")
        assert fault.victim_names == [lost[0].data["node"]]
        assert rejoined and rejoined[0].data["node"] == fault.victim_names[0]
        assert fault.recovered_at == pytest.approx(34.0)

    def test_short_partition_heals_without_loss(self):
        """Shorter than the liveness timeout: the RM never notices, so
        attempts that vanished into the partition are recovered only by
        the AM's task timeout (two real bugs found by this scenario: a
        permanently-stranded task and a leaked mid-handout container)."""
        from repro.mapreduce.config import JobConf

        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          conf=JobConf(task_timeout=60.0))
        fault = PartitionFault(node_indices=(1,), at_time=4.0, duration=8.0)
        fault.install(rt)
        res = rt.run()
        assert res.success
        assert not rt.trace.of_kind("node_lost")
        assert fault.recovered_at == pytest.approx(12.0)
        timeouts = [e for e in rt.trace.of_kind("attempt_failed")
                    if e.data["reason"] == "task-timeout"]
        assert timeouts, "vanished attempts must be recovered by task timeout"
        from repro.invariants import check_invariants
        assert check_invariants(rt, res) == []
