"""Equivalence and regression tests for the incremental/coalesced flow
scheduler against the eager full-recompute reference.

The contract under test is exact (``==``, not approx): the incremental
scheduler must allocate bit-identical rates and completion times to the
reference on any workload, because experiment trace digests are pinned
to byte equality across the scheduler swap.
"""

import os
import random

import pytest

from repro.sim import Simulator
from repro.sim.core import Timeout
from repro.sim.flows import FlowScheduler, LinkResource
from repro.sim.flows_reference import ReferenceFlowScheduler

SCHEDULERS = (ReferenceFlowScheduler, FlowScheduler)


def _random_script(seed: int):
    """A deterministic random workload script: a list of
    (at_time, kind, payload) actions over a small resource topology."""
    rng = random.Random(seed)
    n_res = rng.randint(2, 6)
    actions = []
    t = 0.0
    for i in range(rng.randint(5, 25)):
        t += rng.choice([0.0, 0.0, 0.1, 0.5, 1.0]) * rng.random()
        kind = rng.random()
        if kind < 0.75:
            routes = sorted(rng.sample(range(n_res), rng.randint(1, min(3, n_res))))
            size = rng.choice([10.0, 100.0, 250.0, 1000.0]) * (1 + rng.random())
            actions.append((t, "transfer", (f"f{i}", size, routes)))
        elif kind < 0.9:
            actions.append((t, "cancel", i))
        else:
            actions.append((t, "slow", (rng.randrange(n_res),
                                        rng.choice([25.0, 75.0, 150.0]))))
    return n_res, actions


def _run_script(sched_cls, seed: int):
    """Execute one random script; returns (completion times, rate trace)."""
    n_res, actions = _random_script(seed)
    sim = Simulator()
    sched = sched_cls(sim)
    resources = [LinkResource(f"r{j}", 100.0) for j in range(n_res)]
    times: dict[str, float] = {}
    rates: list[tuple] = []
    flows: list = []

    def driver():
        prev = 0.0
        for at, kind, payload in actions:
            if at > prev:
                yield sim.timeout(at - prev)
                prev = at
            if kind == "transfer":
                name, size, routes = payload
                fl = sched.transfer(size, [resources[j] for j in routes], name)
                fl.done._add_callback(
                    lambda e, f=fl: times.__setitem__(f.name, sim.now))
                flows.append(fl)
            elif kind == "cancel":
                live = [f for f in flows if f.active]
                if live:
                    sched.cancel(live[payload % len(live)], "scripted")
            else:
                j, cap = payload
                resources[j].set_capacity(cap)
            # Observe every live rate right after the action: under the
            # incremental scheduler this lazily flushes the coalesced
            # recompute, so stale mid-instant rates would be caught here.
            rates.append((sim.now, tuple((f.name, f.rate)
                                         for f in flows if f.active)))

    sim.process(driver())
    sim.run()
    return times, rates


@pytest.mark.parametrize("seed", range(25))
def test_random_workloads_match_reference_exactly(seed):
    ref_times, ref_rates = _run_script(ReferenceFlowScheduler, seed)
    inc_times, inc_rates = _run_script(FlowScheduler, seed)
    # Exact equality: same flows complete at the same float instants,
    # and every observed rate is the same float.
    assert inc_times == ref_times
    assert inc_rates == ref_rates


@pytest.mark.parametrize("seed", range(10))
def test_incremental_allocation_is_feasible_and_maxmin(seed):
    """On the incremental path: no resource over capacity, and max-min
    holds (no flow can be raised without lowering a slower one)."""
    n_res, actions = _random_script(seed)
    sim = Simulator()
    sched = FlowScheduler(sim)
    resources = [LinkResource(f"r{j}", 100.0) for j in range(n_res)]

    def check():
        usage = {r: 0.0 for r in resources}
        for f in sched.active_flows:
            for r in f.resources:
                usage[r] += f.rate
        for r, used in usage.items():
            assert used <= r.capacity * (1 + 1e-9)
        # Max-min: every active flow is limited by some saturated
        # resource it crosses (otherwise its rate could be raised).
        for f in sched.active_flows:
            assert any(usage[r] >= r.capacity * (1 - 1e-9) for r in f.resources), f

    def driver():
        prev = 0.0
        for at, kind, payload in actions:
            if at > prev:
                yield sim.timeout(at - prev)
                prev = at
            if kind == "transfer":
                name, size, routes = payload
                sched.transfer(size, [resources[j] for j in routes], name)
            elif kind == "cancel":
                live = [f for f in sched.active_flows]
                if live:
                    sched.cancel(live[payload % len(live)], "scripted")
            else:
                j, cap = payload
                resources[j].set_capacity(cap)
            check()

    sim.process(driver())
    sim.run()


def test_same_instant_wave_coalesces_to_one_recompute():
    """A 50-flow wave admitted at one instant pays one filling pass,
    not 50 (the reference pays one per admission)."""
    sim = Simulator()
    sched = FlowScheduler(sim)
    link = LinkResource("link", 100.0)
    for i in range(50):
        sched.transfer(100.0, [link], f"f{i}")
    sim.run(until=0.0)
    sim.step()  # the zero-delay flush event
    assert sched.stats["recomputes"] == 1
    assert sched.stats["recomputed_flows"] == 50


def test_node_death_three_contended_links_recomputes_once():
    """Regression: cancelling every flow crossing a dead node's three
    device directions (nic_in, nic_out, disk) is one batched cancel and
    exactly one rate recompute — the seed paid one full recompute per
    cancelled flow per swept resource."""
    sim = Simulator()
    sched = FlowScheduler(sim)
    nic_in = LinkResource("nic_in", 100.0)
    nic_out = LinkResource("nic_out", 100.0)
    disk = LinkResource("disk", 100.0)
    far = LinkResource("far", 100.0)
    for i in range(8):
        sched.transfer(500.0, [nic_in, disk], f"in{i}")
        sched.transfer(500.0, [nic_out], f"out{i}")
        sched.transfer(500.0, [disk], f"dsk{i}")
    survivor = sched.transfer(500.0, [far], "far")
    sim.run(until=1.0)
    before = sched.stats["recomputes"]
    victims = sched.cancel_flows_using([nic_in, nic_out, disk], "node died")
    assert len(victims) == 24
    # The cancel only marks dirty; the coalesced flush is the single
    # recompute, observable via any rate read.
    _ = survivor.rate
    assert sched.stats["recomputes"] == before + 1
    assert survivor.active


def test_cancel_flows_using_order_matches_reference():
    """Victim order (hence done-event failure order) of the batched
    sweep equals the reference's sequential per-resource sweeps."""

    def build(sched_cls):
        sim = Simulator()
        sched = sched_cls(sim)
        a = LinkResource("a", 100.0)
        b = LinkResource("b", 100.0)
        flows = [
            sched.transfer(100.0, [a], "fa"),
            sched.transfer(100.0, [a, b], "fab"),
            sched.transfer(100.0, [b], "fb"),
        ]
        order = []
        for f in flows:
            f.done._add_callback(lambda e, f=f: order.append(f.name))
            f.done.defuse()
        victims = sched.cancel_flows_using([a, b], "x")
        sim.run()
        return [f.name for f in victims], order

    assert build(FlowScheduler) == build(ReferenceFlowScheduler)


def test_completion_timer_does_not_leak_heap_entries():
    """Sequential same-horizon flows reuse the pending timer; the event
    heap never accumulates stale completion timers."""
    sim = Simulator()
    sched = FlowScheduler(sim)
    links = [LinkResource(f"l{i}", 100.0) for i in range(40)]

    def driver():
        # 40 disjoint flows with the same horizon, admitted one instant
        # apart: each admission shifts only its own component.
        for i, link in enumerate(links):
            sched.transfer(1000.0, [link], f"f{i}")
            yield sim.timeout(0.0)

    sim.process(driver())
    sim.run()
    assert sched.stats["timer_reuses"] > 0
    assert sched.stats["timer_pushes"] < sched.stats["transfers"] + 5
    # All timers are gone once the last flow completes.
    assert sched._timer is None
    live = [e for _, _, _, e in sim._heap
            if isinstance(e, Timeout) and not e.cancelled]
    assert not live


def test_scoped_recompute_skips_disjoint_components():
    """Dirtying one component must not re-share (or touch) flows in a
    disjoint component."""
    sim = Simulator()
    sched = FlowScheduler(sim)
    a = LinkResource("a", 100.0)
    b = LinkResource("b", 100.0)
    fa = sched.transfer(1000.0, [a], "fa")
    fb = sched.transfer(1000.0, [b], "fb")
    assert fa.rate == 100.0 and fb.rate == 100.0
    base = sched.stats["recomputed_flows"]
    sched.transfer(1000.0, [a], "fa2")
    _ = fa.rate  # flush
    # Only the two flows of component {a} were re-shared.
    assert sched.stats["recomputed_flows"] == base + 2
    assert fb.rate == 100.0


def test_digest_identical_across_scheduler_swap():
    """End-to-end: a seeded faulted experiment produces a byte-identical
    trace digest under the reference and incremental schedulers."""
    from repro.experiments.common import run_benchmark_trial
    from repro.faults.inject import kill_node_at_progress
    from repro.workloads.workload import BENCHMARKS

    def one(scheduler: str) -> str:
        previous = os.environ.get("REPRO_SCHEDULER")
        os.environ["REPRO_SCHEDULER"] = scheduler
        try:
            res = run_benchmark_trial(
                2015, BENCHMARKS["terasort"](1.0), system="alm",
                fault_factory=lambda: kill_node_at_progress(0.5, target="reducer"))
            return res["digest"]
        finally:
            if previous is None:
                os.environ.pop("REPRO_SCHEDULER", None)
            else:
                os.environ["REPRO_SCHEDULER"] = previous

    assert one("reference") == one("incremental")
