"""Tests for the ISS related-work baseline (paper §VI)."""

import pytest

from repro.baselines import ISSConfig, ISSPolicy
from repro.faults import kill_node_at_progress, kill_reduce_at_progress
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


class TestISSReplication:
    def test_every_mof_replicated_failure_free(self):
        pol = ISSPolicy()
        rt = make_runtime(tiny_workload(), policy=pol)
        res = rt.run()
        assert res.success
        assert len(pol.replica_mofs) == rt.am.num_maps
        assert pol.replicated_bytes == pytest.approx(rt.workload.shuffle_bytes, rel=1e-6)

    def test_replicas_placed_off_rack_when_possible(self):
        pol = ISSPolicy(ISSConfig(off_rack=True))
        rt = make_runtime(tiny_workload(), policy=pol)
        rt.run()
        for map_id, replicas in pol.replica_mofs.items():
            primary = rt.am.registry.get(map_id)
            for rep in replicas:
                assert rep.node.rack is not primary.node.rack

    def test_replication_overhead_visible(self):
        wl = lambda: tiny_workload(input_mb=2048, reducers=2)
        t_yarn = make_runtime(wl()).run().elapsed
        t_iss = make_runtime(wl(), policy=ISSPolicy()).run().elapsed
        # The paper's critique #1: ISS pays for replication on every
        # job. (The copy streams overlap execution, so the penalty is
        # moderate but nonzero.)
        assert t_iss > t_yarn

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            ISSConfig(replicas=0)


class TestISSRecovery:
    def _node_fail_run(self, policy):
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt = make_runtime(wl, policy=policy)
        kill_node_at_progress(0.3, target="reducer").install(rt)
        return rt, rt.run()

    def test_node_loss_switches_to_replicas_without_map_reruns(self):
        rt, res = self._node_fail_run(ISSPolicy())
        assert res.success
        assert res.counters["map_reruns"] == 0  # replicas took over
        assert rt.trace.count("iss_switch") > 0

    def test_iss_beats_stock_yarn_on_node_failure(self):
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        yarn_rt = make_runtime(wl())
        kill_node_at_progress(0.3, target="reducer").install(yarn_rt)
        res_yarn = yarn_rt.run()
        iss_rt = make_runtime(wl(), policy=ISSPolicy())
        kill_node_at_progress(0.3, target="reducer").install(iss_rt)
        res_iss = iss_rt.run()
        assert res_iss.elapsed < res_yarn.elapsed

    def test_iss_still_restarts_failed_reducers_from_scratch(self):
        # The paper's critique #2: a ReduceTask failure still costs a
        # full re-execution under ISS (no analytics logging).
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.15)
        base = make_runtime(wl(), policy=ISSPolicy()).run().elapsed
        rt = make_runtime(wl(), policy=ISSPolicy())
        kill_reduce_at_progress(0.9).install(rt)
        res = rt.run()
        assert res.success
        # Re-running most of the reduce work stretches the job well
        # beyond the failure-free ISS run.
        assert res.elapsed > base * 1.2
