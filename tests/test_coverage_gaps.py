"""Tests for remaining public-API surfaces not covered elsewhere."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.cluster.node import MB
from repro.hdfs import Hdfs, HdfsConfig
from repro.sim import Simulator
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


class TestHdfsBlockAPI:
    @pytest.fixture
    def env(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=6, num_racks=2,
                                           node=NodeSpec(disk_bandwidth=100 * MB,
                                                         nic_bandwidth=100 * MB),
                                           seed=3))
        return sim, cluster, Hdfs(sim, cluster, HdfsConfig(block_size=64 * MB))

    def test_read_single_block(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("x", 192 * MB)
        reader = f.blocks[1].replicas[0]
        got = sim.run(until=hdfs.read_block(reader, f.blocks[1]))
        assert got == f.blocks[1].size

    def test_num_blocks_helper(self, env):
        _, _, hdfs = env
        assert hdfs.num_blocks(1) == 1
        assert hdfs.num_blocks(64 * MB) == 1
        assert hdfs.num_blocks(65 * MB) == 2

    def test_preferred_nodes_per_block(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("x", 128 * MB)
        prefs = hdfs.preferred_nodes("x")
        assert len(prefs) == len(f.blocks)
        assert all(len(p) == 2 for p in prefs)

    def test_delete_missing_is_noop(self, env):
        _, _, hdfs = env
        hdfs.delete("ghost")  # no exception


class TestRuntimeValidation:
    def test_single_node_cluster_rejected(self):
        from repro.mapreduce.job import MapReduceRuntime

        with pytest.raises(SimulationError):
            MapReduceRuntime(
                tiny_workload(),
                cluster_spec=ClusterSpec(num_nodes=1, num_racks=1),
            )

    def test_job_result_repr(self):
        res = make_runtime().run()
        assert "ok" in repr(res)
        assert res.job_name in repr(res)


class TestReducePhaseAccounting:
    def test_sampled_series_reach_one(self):
        rt = make_runtime(tiny_workload(reducers=2))
        rt.run()
        series = rt.trace.series_values("reduce_progress")
        assert series[0][1] == 0.0
        assert max(v for _, v in series) <= 1.0
        # Map progress also sampled and completes.
        mseries = rt.trace.series_values("map_progress")
        assert max(v for _, v in mseries) == pytest.approx(1.0)

    def test_failed_reduce_attempts_probe(self):
        from repro.faults import kill_reduce_at_progress

        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1))
        kill_reduce_at_progress(0.7).install(rt)
        rt.run()
        vals = [v for _, v in rt.trace.series_values("failed_reduce_attempts")]
        assert max(vals) == 1.0


class TestSpeculationLoserAccounting:
    def test_discarded_attempts_not_counted_as_failures(self):
        """A speculative loser is KILLED, never FAILED — double-commit
        or double-failure would corrupt job bookkeeping."""
        from repro.faults import SlowNodeFault
        from repro.mapreduce.speculation import SpeculationConfig

        rt = make_runtime(
            tiny_workload(input_mb=1024, reducers=3, reduce_cpu=0.05),
            speculation=SpeculationConfig(interval=2.0, min_runtime=4.0,
                                          slowness_threshold=1.15),
        )
        SlowNodeFault(node_index=0, at_time=2.0, disk_factor=0.05).install(rt)
        res = rt.run()
        assert res.success
        assert res.counters["committed_reduces"] == 3
        for task in rt.am.reduce_tasks:
            committed = [a for a in task.attempts if a.state.value == "succeeded"]
            assert len(committed) == 1
