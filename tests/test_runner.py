"""TrialRunner: parallel/serial determinism, memoization, fallbacks."""

import pytest

from repro.cluster.node import MB
from repro.experiments.common import (
    ExperimentConfig,
    averaged_job_time,
    run_benchmark_job,
    run_benchmark_trial,
)
from repro.hdfs.hdfs import HdfsConfig
from repro.runner import DeterminismError, TrialError, TrialRunner, spec_digest, trace_digest
from repro.yarn.rm import YarnConfig

from tests.conftest import make_runtime, small_cluster, tiny_workload


def _cfg(seed: int = 42) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=small_cluster(seed=seed),
        yarn=YarnConfig(nm_liveness_timeout=20.0),
        hdfs=HdfsConfig(block_size=64 * MB, replication=2),
        seed=seed,
    )


def _square_trial(seed, offset=0):
    return {"value": seed * seed + offset}


def _factory_trial(seed, factory):
    return {"value": factory() + seed}


_FLAKY_CALLS = []


def _flaky_trial(seed):
    _FLAKY_CALLS.append(seed)
    return {"calls_so_far": len(_FLAKY_CALLS)}


def _exploding_trial(seed):
    if seed == 13:
        raise ValueError("boom")
    return {"value": seed}


class TestTraceDigest:
    def test_same_seed_same_digest(self):
        d1 = trace_digest(make_runtime(seed=7).run().trace)
        d2 = trace_digest(make_runtime(seed=7).run().trace)
        assert d1 == d2

    def test_different_seed_different_digest(self):
        d1 = trace_digest(make_runtime(seed=7).run().trace)
        d2 = trace_digest(make_runtime(seed=8).run().trace)
        assert d1 != d2


class TestTrialRunner:
    def test_serial_results_in_seed_order(self):
        results = TrialRunner(jobs=1, verify=False).run(
            "squares", _square_trial, [3, 1, 2])
        assert [r.seed for r in results] == [3, 1, 2]
        assert [r.payload["value"] for r in results] == [9, 1, 4]
        assert all(not r.cached for r in results)

    def test_parallel_matches_serial_bit_for_bit(self, monkeypatch):
        """The acceptance contract: REPRO_JOBS>1 and REPRO_JOBS=1
        produce identical per-seed payloads (including trace digests).
        Forced parallel: on a single-core host the runner would
        otherwise auto-select the serial path and test nothing."""
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        seeds = [42, 143, 244]
        kwargs = dict(workload=tiny_workload(), base_config=_cfg(), job_name="det")
        serial = TrialRunner(jobs=1, verify=False).run(
            "det", run_benchmark_trial, seeds, kwargs=kwargs)
        parallel = TrialRunner(jobs=2, verify=False).run(
            "det", run_benchmark_trial, seeds, kwargs=kwargs)
        assert [r.payload for r in serial] == [r.payload for r in parallel]
        assert all(len(r.payload["digest"]) == 64 for r in serial)

    def test_single_core_auto_serial(self, monkeypatch):
        """Without the override, a 1-core host quietly takes the serial
        path even when jobs > 1 (fan-out is strictly overhead there)."""
        monkeypatch.delenv("REPRO_FORCE_PARALLEL", raising=False)
        monkeypatch.setattr("repro.runner.runner.os.cpu_count", lambda: 1)
        calls = []
        monkeypatch.setattr(
            "repro.runner.runner.TrialRunner._run_parallel",
            lambda self, *a, **k: calls.append(1) or {})
        results = TrialRunner(jobs=4, verify=False).run(
            "auto-serial", _square_trial, [1, 2, 3])
        assert calls == []  # pool never touched
        assert [r.payload["value"] for r in results] == [1, 4, 9]

    def test_raising_trial_names_its_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        with pytest.raises(TrialError, match=r"seed 13 raised ValueError: boom"):
            TrialRunner(jobs=2, verify=False).run(
                "explode", _exploding_trial, [11, 12, 13, 14])

    def test_unpicklable_spec_falls_back_to_serial(self):
        results = TrialRunner(jobs=4, verify=False).run(
            "fallback", _factory_trial, [1, 2, 3],
            kwargs={"factory": lambda: 100})
        assert [r.payload["value"] for r in results] == [101, 102, 103]

    def test_cache_round_trip(self, tmp_path):
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        first = runner.run("sq", _square_trial, [5, 6], kwargs={"offset": 1})
        second = runner.run("sq", _square_trial, [5, 6], kwargs={"offset": 1})
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert [r.payload for r in first] == [r.payload for r in second]

    def test_cache_keyed_by_kwargs_and_experiment(self, tmp_path):
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        runner.run("sq", _square_trial, [5], kwargs={"offset": 1})
        other_kwargs = runner.run("sq", _square_trial, [5], kwargs={"offset": 2})
        other_name = runner.run("sq2", _square_trial, [5], kwargs={"offset": 1})
        assert not other_kwargs[0].cached
        assert not other_name[0].cached

    def test_cache_keyed_by_implementation_mode(self, tmp_path, monkeypatch):
        """A cached payload must never leak across REPRO_KERNEL /
        REPRO_SCHEDULER / REPRO_TRACE_COUNT_ONLY selections: the mode
        environment is part of the memoization key, so swapping an
        implementation re-executes instead of replaying the other
        mode's trace digest."""
        for var in ("REPRO_KERNEL", "REPRO_SCHEDULER", "REPRO_TRACE_COUNT_ONLY"):
            monkeypatch.delenv(var, raising=False)
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)

        baseline = runner.run("mode", _square_trial, [5])
        assert not baseline[0].cached
        assert runner.run("mode", _square_trial, [5])[0].cached

        for var in ("REPRO_KERNEL", "REPRO_SCHEDULER", "REPRO_TRACE_COUNT_ONLY"):
            monkeypatch.setenv(var, "reference" if var != "REPRO_TRACE_COUNT_ONLY" else "1")
            fresh = runner.run("mode", _square_trial, [5])
            assert not fresh[0].cached, f"{var} leaked through the trial cache"
            assert runner.run("mode", _square_trial, [5])[0].cached
            monkeypatch.delenv(var)

        # Back to the baseline environment: the original entry is intact.
        assert runner.run("mode", _square_trial, [5])[0].cached

    def test_unnameable_spec_is_never_cached(self, tmp_path):
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        runner.run("lam", _factory_trial, [1], kwargs={"factory": lambda: 0})
        assert list(tmp_path.rglob("*.json")) == []
        assert spec_digest("lam", _factory_trial, {"factory": lambda: 0}) is None

    def test_verify_flags_nondeterministic_trials(self):
        _FLAKY_CALLS.clear()
        with pytest.raises(DeterminismError):
            TrialRunner(jobs=1, verify=True).run("flaky", _flaky_trial, [9])

    def test_verify_passes_deterministic_trials(self):
        results = TrialRunner(jobs=1, verify=True).run(
            "sq", _square_trial, [4])
        assert results[0].payload["value"] == 16


class TestResultStreaming:
    """The ``on_result`` hook durable campaign stores build on."""

    def test_on_result_sees_every_trial_as_it_completes(self, tmp_path):
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        runner.run("stream", _square_trial, [1, 2])
        seen = []
        runner.run("stream", _square_trial, [1, 2, 3],
                   on_result=lambda r: seen.append((r.seed, r.cached)))
        assert seen == [(1, True), (2, True), (3, False)]

    def test_cache_written_incrementally(self, tmp_path):
        """Each trial's cache entry lands as the trial completes, not
        at end of run — observed from inside the next trial."""
        runner = TrialRunner(jobs=1, cache_dir=tmp_path, verify=False)
        counts = []
        runner.run("incr", _square_trial, [1, 2, 3],
                   on_result=lambda r: counts.append(
                       len(list(tmp_path.rglob("*.json")))))
        assert counts == [1, 2, 3]

    def test_keyboard_interrupt_flushes_completed_and_tears_down_pool(
            self, monkeypatch):
        """Ctrl-C mid-fan-out: results that already completed are still
        delivered (and cached), pending futures are cancelled, and the
        persistent pool is shut down rather than left running until
        interpreter exit."""
        import repro.runner.runner as rr

        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        real_as_completed = rr.as_completed

        def interrupting(futures):
            it = real_as_completed(futures)
            yield next(it)  # deliver one chunk...
            raise KeyboardInterrupt  # ...then the user hits Ctrl-C

        monkeypatch.setattr(rr, "as_completed", interrupting)
        seen = []
        with pytest.raises(KeyboardInterrupt):
            TrialRunner(jobs=2, verify=False).run(
                "ki", _square_trial, [1, 2, 3, 4],
                on_result=lambda r: seen.append(r.seed))
        assert seen  # the completed chunk was flushed, not dropped
        assert len(seen) == len(set(seen))  # and flushed exactly once
        assert all(s in (1, 2, 3, 4) for s in seen)
        assert 2 not in rr._POOLS  # the pool was discarded, not leaked


class TestExperimentIntegration:
    def test_averaged_job_time_matches_direct_loop(self):
        """Routing through the runner must not change the numbers the
        paper figures are built from."""
        wl = tiny_workload()
        cfg = _cfg()
        via_runner = averaged_job_time(wl, "yarn", None, cfg, repeats=2,
                                       job_name="eq")
        direct = []
        for k in range(2):
            _, res = run_benchmark_job(wl, "yarn",
                                       config=cfg.with_seed(cfg.seed + 101 * k),
                                       job_name="eq-direct")
            direct.append(res.elapsed)
        assert via_runner == pytest.approx(sum(direct) / len(direct))

    def test_run_benchmark_trial_payload_shape(self):
        payload = run_benchmark_trial(42, workload=tiny_workload(),
                                      base_config=_cfg(), job_name="shape")
        assert payload["success"] is True
        assert payload["elapsed"] > 0
        assert payload["counters"]["committed_reduces"] == 2
        assert len(payload["digest"]) == 64
