"""Deterministic backoff-with-jitter helper (repro.sim.backoff)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.backoff import BackoffPolicy, retry_intervals
from repro.sim.core import SimulationError, Simulator


class TestBackoffPolicy:
    def test_seeded_identity(self):
        """Same (policy, key) -> the exact same schedule, every time."""
        policy = BackoffPolicy(base=0.5, max_interval=8.0, max_retries=6)
        assert policy.schedule("am0-r3") == policy.schedule("am0-r3")
        assert BackoffPolicy(base=0.5, max_interval=8.0, max_retries=6) \
            .schedule("am0-r3") == policy.schedule("am0-r3")

    def test_different_keys_differ(self):
        policy = BackoffPolicy()
        assert policy.schedule("lane-a") != policy.schedule("lane-b")

    def test_exponential_growth_before_cap(self):
        policy = BackoffPolicy(base=1.0, multiplier=2.0, max_interval=1000.0,
                               jitter=0.0)
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]

    def test_jitter_stays_within_amplitude(self):
        policy = BackoffPolicy(base=1.0, multiplier=2.0, max_interval=1e9,
                               jitter=0.2)
        for attempt in range(8):
            raw = 2.0 ** attempt
            got = policy.interval(attempt, "k")
            assert raw * 0.8 <= got <= raw * 1.2

    def test_validation(self):
        with pytest.raises(SimulationError):
            BackoffPolicy(base=0.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(SimulationError):
            BackoffPolicy(base=2.0, max_interval=1.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(SimulationError):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(SimulationError):
            BackoffPolicy().interval(-1)

    @settings(max_examples=60, deadline=None)
    @given(
        base=st.floats(0.01, 5.0),
        multiplier=st.floats(1.0, 4.0),
        max_interval=st.floats(5.0, 100.0),
        jitter=st.floats(0.0, 0.99),
        attempt=st.integers(0, 40),
        key=st.text(max_size=12),
    )
    def test_interval_never_exceeds_cap(self, base, multiplier, max_interval,
                                        jitter, attempt, key):
        """The cap applies *after* jitter: no interval ever exceeds
        max_interval, for any parameters, any attempt, any key."""
        policy = BackoffPolicy(base=base, multiplier=multiplier,
                               max_interval=max_interval, jitter=jitter)
        got = policy.interval(attempt, key)
        assert 0.0 < got <= max_interval


class TestRetryIntervals:
    def test_stops_after_max_retries(self):
        policy = BackoffPolicy(max_retries=3, jitter=0.0)
        assert len(list(retry_intervals(policy, "k"))) == 3

    def test_never_yields_after_cancel(self):
        """Once the cancel event fires, the generator yields nothing
        more — a cancelled client never sleeps another interval."""
        sim = Simulator()
        cancel = sim.event()
        policy = BackoffPolicy(max_retries=10, jitter=0.0)
        gen = retry_intervals(policy, "k", cancel=cancel)
        seen = [next(gen), next(gen)]
        cancel.succeed(None)
        assert list(gen) == []
        assert seen == [1.0, 2.0]

    def test_cancelled_before_start_yields_nothing(self):
        sim = Simulator()
        cancel = sim.event()
        cancel.succeed(None)
        policy = BackoffPolicy(max_retries=5)
        assert list(retry_intervals(policy, "k", cancel=cancel)) == []
