"""Tests for the ablation drivers and ALM component switches."""

from repro.alm import ALMConfig, ALMPolicy
from repro.experiments.ablations import (
    ablate_liveness_timeout,
    compare_iss,
)
from repro.faults import kill_node_at_progress

from tests.test_failure_semantics import spatial_runtime


def sfm_variant(proactive: bool, wait: bool) -> ALMPolicy:
    return ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True,
                               proactive_regeneration=proactive,
                               wait_dont_fail=wait))


class TestComponentSwitches:
    def _spatial(self, policy):
        rt = spatial_runtime(policy=policy)
        kill_node_at_progress(0.15, target="map-only").install(rt)
        return rt.run()

    def test_full_sfm_zero_amplification(self):
        res = self._spatial(sfm_variant(True, True))
        assert res.counters["failed_reduce_attempts"] == 0

    def test_wait_only_still_protects_reducers(self):
        res = self._spatial(sfm_variant(False, True))
        assert res.success
        # Wait-don't-fail alone prevents the suicide cascade (the
        # regeneration then starts reactively from the first giveup).
        assert res.counters["failed_reduce_attempts"] == 0

    def test_regen_only_may_amplify_but_recovers(self):
        res = self._spatial(sfm_variant(True, False))
        assert res.success
        # Without wait-don't-fail, fetch failures are still counted; the
        # run completes either way and regenerates maps.
        assert res.counters["map_reruns"] > 0

    def test_component_flags_change_behaviour_vs_yarn(self):
        rt = spatial_runtime()
        kill_node_at_progress(0.15, target="map-only").install(rt)
        res_yarn = rt.run()
        res_full = self._spatial(sfm_variant(True, True))
        assert res_yarn.counters["failed_reduce_attempts"] > \
            res_full.counters["failed_reduce_attempts"]


class TestAblationDrivers:
    def test_liveness_timeout_monotone(self):
        rows = ablate_liveness_timeout(timeouts=(20.0, 60.0), scale=0.2)
        assert rows[0].job_time < rows[1].job_time

    def test_compare_iss_rows(self):
        rows = compare_iss(scale=0.2)
        names = {r.variant for r in rows}
        assert "iss failure-free" in names
        assert "sfm node-failure" in names
        by = {r.variant: r.job_time for r in rows}
        assert by["iss node-failure"] < by["yarn node-failure"]
