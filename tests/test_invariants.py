"""Unit tests for the post-run invariant checkers."""

import pytest

from repro.alm.sfm import ALMPolicy
from repro.faults import NodeFault, PartitionFault
from repro.invariants import (
    INVARIANTS,
    InvariantViolation,
    assert_invariants,
    check_invariants,
)
from repro.runner import TrialRunner, TrialResult
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


def run_checked(rt):
    res = rt.run()
    return res, check_invariants(rt, res)


class TestCleanRuns:
    def test_fault_free_run_passes_all(self):
        rt = make_runtime()
        res, violations = run_checked(rt)
        assert res.success
        assert violations == []

    def test_every_policy_passes_under_node_crash(self):
        for policy in (None, ALMPolicy()):
            rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                              policy=policy)
            NodeFault(target="reducer", at_progress=0.5, mode="crash").install(rt)
            res, violations = run_checked(rt)
            assert res.success
            assert violations == []

    def test_partition_with_recovery_passes(self):
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1),
                          policy=ALMPolicy())
        # Duration exceeds the 20 s liveness timeout: full lost->rejoin.
        # One node only — partitioning two can strand both replicas of an
        # input block (replication=2), which legitimately fails the job.
        PartitionFault(node_indices=(0,), at_time=4.0, duration=60.0).install(rt)
        res, violations = run_checked(rt)
        assert res.success
        assert violations == []

    def test_unknown_invariant_name_rejected(self):
        rt = make_runtime()
        res = rt.run()
        with pytest.raises(SimulationError):
            check_invariants(rt, res, names=["no-such-check"])


class TestViolationDetection:
    """Each checker must actually flag the breakage it guards against."""

    def test_leaked_container_detected(self):
        rt = make_runtime()
        res = rt.run()
        nm = next(iter(rt.rm.node_managers.values()))
        nm.allocate(1024)  # simulate a container nobody released
        violations = check_invariants(rt, res, names=["containers_released"])
        assert violations and "containers" in violations[0]

    def test_dead_replica_detected(self):
        rt = make_runtime()
        res = rt.run()
        some_block = next(iter(rt.hdfs._files.values())).blocks[0]
        dead = some_block.replicas[0]
        dead.alive = False
        violations = check_invariants(rt, res, names=["hdfs_consistency"])
        assert violations and "dead replica" in violations[0]

    def test_missing_replica_file_detected(self):
        rt = make_runtime()
        res = rt.run()
        some_block = next(iter(rt.hdfs._files.values())).blocks[0]
        some_block.replicas[0].delete_file(rt.hdfs._replica_path(some_block))
        violations = check_invariants(rt, res, names=["hdfs_consistency"])
        assert violations and "missing from" in violations[0]

    def test_byte_conservation_detects_lost_bytes(self):
        rt = make_runtime()
        res = rt.run()
        assert check_invariants(rt, res, names=["byte_conservation"]) == []
        record = next(iter(rt.am.reduce_commits.values()))
        record["input_bytes"] *= 0.5  # half the partition went missing
        violations = check_invariants(rt, res, names=["byte_conservation"])
        assert violations and "covered" in violations[0]

    def test_time_travelling_trace_event_detected(self):
        rt = make_runtime()
        res = rt.run()
        assert check_invariants(rt, res, names=["trace_monotonic"]) == []
        rt.trace.events[10].time = rt.trace.events[9].time - 1.0
        violations = check_invariants(rt, res, names=["trace_monotonic"])
        assert violations and "logged after" in violations[0]

    def test_stall_flag_is_a_termination_violation(self):
        rt = make_runtime()
        res = rt.run()
        res.counters["stalled"] = True
        res.counters["stall_reason"] = "synthetic"
        violations = check_invariants(rt, res, names=["termination"])
        assert violations and "stalled" in violations[0]

    def test_assert_invariants_raises(self):
        rt = make_runtime()
        res = rt.run()
        res.counters["stalled"] = True
        with pytest.raises(InvariantViolation):
            assert_invariants(rt, res, names=["termination"])


class TestStallWatchdog:
    def test_hard_timeout_produces_failed_result(self):
        rt = make_runtime()
        # stall_timeout sets the watchdog's check cadence (timeout/4,
        # floored at 1 s) — keep it small so the hard ceiling is noticed
        # before the job simply finishes.
        res = rt.run(timeout=0.5, stall_timeout=4.0)
        assert not res.success
        assert res.counters["stalled"]
        assert "timeout" in res.counters["stall_reason"]
        assert check_invariants(rt, res, names=["termination"])

    def test_registry_is_complete(self):
        assert set(INVARIANTS) == {
            "termination", "byte_conservation", "no_orphans",
            "containers_released", "hdfs_consistency", "trace_monotonic",
            "am_singleton", "am_no_orphans",
        }


class TestRunnerIntegration:
    def test_runner_raises_on_violating_payload(self):
        results = [TrialResult("exp", 1, {"invariant_violations": ["bytes: gone"]})]
        with pytest.raises(InvariantViolation):
            TrialRunner._check_invariant_payloads("exp", results)

    def test_runner_passes_clean_payload(self):
        results = [TrialResult("exp", 1, {"invariant_violations": []}),
                   TrialResult("exp", 2, {})]
        TrialRunner._check_invariant_payloads("exp", results)

    def test_trial_records_violations_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        from repro.experiments.common import ExperimentConfig, run_benchmark_trial
        from tests.conftest import small_cluster

        cfg = ExperimentConfig(cluster=small_cluster())
        payload = run_benchmark_trial(42, tiny_workload(), "alm", base_config=cfg)
        assert payload["invariant_violations"] == []
