"""Integration-grade tests for ReduceTask execution and the AppMaster."""

import pytest

from repro.mapreduce.config import JobConf
from repro.mapreduce.tasks import TaskState

from tests.conftest import make_runtime, tiny_workload


class TestReduceExecution:
    def test_job_completes_and_accounts_all_bytes(self):
        rt = make_runtime(tiny_workload(reducers=3))
        res = rt.run()
        assert res.success
        total_in = sum(
            t.attempts[-1].total_input_bytes for t in rt.am.reduce_tasks
        )
        assert total_in == pytest.approx(rt.workload.shuffle_bytes, rel=1e-6)

    def test_reduce_output_lands_in_hdfs(self):
        rt = make_runtime(tiny_workload(reducers=2, reduce_sel=0.5))
        rt.run()
        out_paths = [p for p in rt.hdfs._files if p.startswith("out/")]
        assert len(out_paths) == 2
        total_out = sum(rt.hdfs.file(p).size for p in out_paths)
        assert total_out == pytest.approx(rt.workload.shuffle_bytes * 0.5, rel=1e-6)

    def test_large_batches_go_straight_to_disk(self):
        # Shrink the reduce heap so per-host batches exceed the
        # single-segment memory limit.
        conf = JobConf(reduce_memory_mb=256)
        rt = make_runtime(tiny_workload(input_mb=1024, reducers=1), conf=conf)
        rt.run()
        attempt = rt.am.reduce_tasks[0].attempts[0]
        assert attempt.disk_segments  # something was spilled or fetched to disk

    def test_in_memory_merge_spills_above_trigger(self):
        conf = JobConf(reduce_memory_mb=512)
        rt = make_runtime(tiny_workload(input_mb=2048, reducers=1), conf=conf)
        rt.run()
        attempt = rt.am.reduce_tasks[0].attempts[0]
        spills = [s for s in attempt.disk_segments]
        assert spills
        # Everything fetched must be accounted: memory + disk == total.
        assert attempt.total_input_bytes == pytest.approx(
            rt.workload.shuffle_bytes, rel=1e-6)

    def test_final_merge_reduces_segment_count(self):
        # Force many tiny on-disk segments with a small io_sort_factor.
        conf = JobConf(io_sort_factor=2, reduce_memory_mb=256)
        rt = make_runtime(tiny_workload(input_mb=1024, reducers=1), conf=conf)
        rt.run()
        attempt = rt.am.reduce_tasks[0].attempts[0]
        assert len(attempt.disk_segments) <= 2

    def test_reduce_progress_monotone(self):
        rt = make_runtime(tiny_workload(reducers=1))
        samples = []

        def probe():
            vals = [a.progress for t in rt.am.reduce_tasks for a in t.running_attempts()]
            return vals[0] if vals else -1.0

        rt.sampler.add_probe("attempt_progress", probe)
        rt.run()
        series = [v for _, v in rt.trace.series_values("attempt_progress") if v >= 0]
        assert series, "no progress samples collected"
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1] <= 1.0


class TestAppMaster:
    def test_slowstart_defers_reducers(self):
        conf = JobConf(slowstart_completed_maps=0.9)
        rt = make_runtime(tiny_workload(input_mb=1024), conf=conf)
        rt.run()
        first_reduce = rt.trace.first("attempt_start", type="reduce")
        map_starts = rt.trace.times("attempt_start")
        assert first_reduce is not None
        # At least 90% of maps completed before any reducer started.
        completed_before = sum(
            1 for e in rt.trace.of_kind("attempt_success")
            if e.time <= first_reduce.time and e.data["task"].startswith("map")
        )
        assert completed_before >= 0.9 * rt.am.num_maps

    def test_all_tasks_succeed_exactly_once(self):
        rt = make_runtime(tiny_workload(reducers=2))
        rt.run()
        for t in rt.am.map_tasks + rt.am.reduce_tasks:
            assert t.state is TaskState.SUCCEEDED
            assert len(t.attempts) == 1

    def test_containers_released_after_job(self):
        rt = make_runtime()
        rt.run()
        for nm in rt.rm.node_managers.values():
            assert nm.used_mb == 0

    def test_deterministic_given_seed(self):
        r1 = make_runtime(seed=7).run()
        r2 = make_runtime(seed=7).run()
        assert r1.elapsed == r2.elapsed
        r3 = make_runtime(seed=8).run()
        # Different placement usually shifts timing at least slightly;
        # only assert it still completes.
        assert r3.success

    def test_job_time_scales_with_input(self):
        small = make_runtime(tiny_workload(input_mb=256)).run()
        big = make_runtime(tiny_workload(input_mb=2048)).run()
        assert big.elapsed > small.elapsed

    def test_counters_populated(self):
        res = make_runtime().run()
        assert res.counters["completed_maps"] == 8  # 512MB / 64MB blocks
        assert res.counters["committed_reduces"] == 2
        assert res.counters["failed_reduce_attempts"] == 0

    def test_reduce_phase_progress_bounds(self):
        rt = make_runtime()
        assert rt.am.reduce_phase_progress() == 0.0
        rt.run()
        assert rt.am.reduce_phase_progress() == 1.0
