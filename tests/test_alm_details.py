"""Deeper behavioural tests of ALG/SFM/FCM mechanics."""

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.alm.fcm import FCMReduceAttempt
from repro.faults import kill_node_at_progress, kill_reduce_at_progress
from repro.faults.inject import NodeFault
from repro.mapreduce.reducetask import ReduceAttempt

from tests.conftest import make_runtime, tiny_workload


def policy(**kw):
    defaults = dict(enable_alg=True, enable_sfm=True)
    defaults.update(kw)
    return ALMPolicy(ALMConfig(**defaults))


class TestFCMDetails:
    def test_fcm_recovery_keeps_no_local_spills(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt = make_runtime(wl, policy=policy(enable_alg=False))
        kill_node_at_progress(0.3, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        last = rt.am.reduce_tasks[0].attempts[-1]
        assert isinstance(last, FCMReduceAttempt)
        assert last.disk_segments == []  # all in memory, by design
        assert last.total_input_bytes > 0  # but the stream is accounted

    def test_fcm_participant_death_fails_over(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.3, input_mb=2048)
        # Two node losses with 2-way replication can genuinely destroy
        # input blocks; replication 3 isolates the FCM behaviour.
        rt = make_runtime(wl, nodes=8, policy=policy(enable_alg=False),
                          replication=3)
        # First failure migrates the reducer into FCM mode; then a
        # participant (another worker) dies mid-recovery.
        kill_node_at_progress(0.3, target="reducer").install(rt)
        NodeFault(target=1, at_progress=0.5, mode="crash").install(rt)
        res = rt.run()
        assert res.success  # recovered despite losing a participant

    def test_fcm_counts_against_cap(self):
        wl = tiny_workload(reducers=3, reduce_cpu=0.2, input_mb=1024)
        pol = policy(enable_alg=False, fcm_cap=1)
        rt = make_runtime(wl, policy=pol)
        kill_node_at_progress(0.3, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        fcm_attempts = [
            a for t in rt.am.reduce_tasks for a in t.attempts
            if isinstance(a, FCMReduceAttempt)
        ]
        assert len(fcm_attempts) <= 1


class TestALGDetails:
    def test_migrated_attempt_cannot_reuse_local_segments(self):
        """Local shuffle logs are node-bound: after a node loss the
        recovering attempt must not claim the dead node's spills."""
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        pol = policy(alg=ALGConfig(frequency=2.0))
        rt = make_runtime(wl, policy=pol)
        kill_node_at_progress(0.2, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        attempts = rt.am.reduce_tasks[0].attempts
        recovered = attempts[-1]
        first = attempts[0]
        assert recovered.node is not first.node
        if isinstance(recovered, ReduceAttempt) and not isinstance(recovered, FCMReduceAttempt):
            # Regular migrated attempt: no fetched-state restored from
            # the dead node's local log.
            assert not (recovered.recovery and recovered.recovery.disk_segments
                        and recovered.recovery.disk_segments[0].node is first.node
                        and recovered.fetched)

    def test_same_node_relaunch_reuses_segments(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.25, input_mb=1024)
        pol = policy(enable_sfm=False, alg=ALGConfig(frequency=2.0))
        rt = make_runtime(wl, policy=pol)
        kill_reduce_at_progress(0.75).install(rt)
        res = rt.run()
        assert res.success
        attempts = rt.am.reduce_tasks[0].attempts
        assert len(attempts) >= 2
        a0, a1 = attempts[0], attempts[-1]
        assert a1.node is a0.node  # relaunched locally (Alg. 1 lines 9-13)
        if a1.recovery is not None and a1.recovery.disk_segments:
            # Restored shuffle state skips refetching those map outputs.
            assert a1.recovery.fetched_map_ids

    def test_log_store_cleared_after_job(self):
        pol = policy()
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1), policy=pol)
        rt.run()
        assert pol.regenerating == set()

    def test_limit_local_bounds_same_node_retries(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.3)
        pol = policy(limit_local=1, enable_sfm=True)
        rt = make_runtime(wl, policy=pol)
        # Two consecutive transient failures on the same task.
        kill_reduce_at_progress(0.7).install(rt)
        kill_reduce_at_progress(0.7).install(rt)
        res = rt.run()
        assert res.success
        first_node = rt.am.reduce_tasks[0].attempts[0].node
        same_node = sum(1 for a in rt.am.reduce_tasks[0].attempts
                        if a.node is first_node)
        # limit_local=1 allows at most 1 extra local attempt beyond the
        # original.
        assert same_node <= 3


class TestSFMDetails:
    def test_speculative_and_local_attempts_race(self):
        """Algorithm 1 launches both a same-node relaunch and a
        speculative attempt; exactly one commits."""
        wl = tiny_workload(reducers=1, reduce_cpu=0.3, input_mb=1024)
        rt = make_runtime(wl, policy=policy(enable_alg=False))
        kill_reduce_at_progress(0.8).install(rt)
        res = rt.run()
        assert res.success
        commits = res.trace.count("reduce_commit", task="reduce-0")
        assert commits == 1

    def test_regeneration_only_once_per_node(self):
        wl = tiny_workload(reducers=2, reduce_cpu=0.2, input_mb=1024)
        pol = policy(enable_alg=False)
        rt = make_runtime(wl, policy=pol)
        kill_node_at_progress(0.3, target="map-only").install(rt)
        res = rt.run()
        assert res.success
        assert res.trace.count("sfm_regenerate") <= 1
