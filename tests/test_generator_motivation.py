"""Tests for the trace-mix generator and the motivation experiment."""

import pytest

from repro.cluster.node import GB
from repro.experiments.motivation import run_fleet
from repro.sim.core import SimulationError
from repro.workloads.generator import TraceMix


class TestTraceMix:
    def test_sample_count_and_ordering(self):
        mix = TraceMix(num_jobs=10, seed=1)
        jobs = mix.sample()
        assert len(jobs) == 10
        delays = [d for _, d in jobs]
        assert delays == sorted(delays)
        assert delays[0] == 0.0

    def test_reducer_counts_trace_like(self):
        mix = TraceMix(num_jobs=200, seed=2, mean_reducers=19.0)
        counts = [wl.num_reducers for wl, _ in mix.sample()]
        mean = sum(counts) / len(counts)
        assert 10 <= mean <= 30  # around the trace's 19
        assert max(counts) <= mix.max_reducers
        assert min(counts) >= 1

    def test_input_sizes_bounded_lognormal(self):
        mix = TraceMix(num_jobs=100, seed=3, median_input_gb=8.0)
        sizes = sorted(wl.input_size / GB for wl, _ in mix.sample())
        assert sizes[0] >= 0.5
        assert sizes[-1] <= 200.0
        median = sizes[len(sizes) // 2]
        assert 2.0 <= median <= 32.0

    def test_deterministic_given_seed(self):
        a = TraceMix(num_jobs=5, seed=9).sample()
        b = TraceMix(num_jobs=5, seed=9).sample()
        assert [(wl.name, wl.input_size, wl.num_reducers, d) for wl, d in a] == \
            [(wl.name, wl.input_size, wl.num_reducers, d) for wl, d in b]

    def test_families_mixed(self):
        names = {wl.name for wl, _ in TraceMix(num_jobs=30, seed=4).sample()}
        assert len(names) >= 2

    def test_scaled(self):
        mix = TraceMix(median_input_gb=8.0).scaled(0.25)
        assert mix.median_input_gb == 2.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            TraceMix(num_jobs=0)
        with pytest.raises(SimulationError):
            TraceMix(median_input_gb=0)


class TestFleet:
    def test_fleet_runs_and_reports(self):
        mix = TraceMix(num_jobs=3, seed=11, median_input_gb=1.0,
                       mean_interarrival=10.0)
        res = run_fleet("alm", mix)
        assert res.policy == "alm"
        assert len(res.job_slowdowns) + res.failed_jobs == 3
        assert res.makespan > 0
        for slowdown in res.job_slowdowns.values():
            assert slowdown > 0.5
