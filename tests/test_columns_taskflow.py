"""Task/flow column groups (the columnar data plane's second wave):
store round-trips against shadow python objects, the vectorized
attempt-progress kernel, cross-plane digest parity on the columnar
exercise scenarios, attempt-slot recycling across AM restarts, and the
flow scheduler's timer-reuse path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.experiments.common import make_policy
from repro.faults.chaos import build_fault
from repro.faults.inject import FaultInjector
from repro.hdfs.hdfs import HdfsConfig
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.sim.columns import AttemptColumns, FlowColumns, attempt_progress
from repro.sim.core import Simulator
from repro.sim.flows import FlowScheduler, LinkResource
from repro.sim.flows_columnar import ColumnarFlowScheduler
from repro.verify.scenarios import SCENARIOS, run_verify_spec
from repro.workloads import BENCHMARKS
from repro.yarn.rm import YarnConfig

pytestmark = pytest.mark.tier1


def _build_runtime(spec) -> MapReduceRuntime:
    """The same wiring :func:`run_verify_spec` uses, but returning the
    runtime so tests can inspect stores and incarnations after the run."""
    wl = BENCHMARKS[spec["workload"]](spec["input_gb"],
                                      num_reducers=spec["reducers"])
    rpc_kwargs = {f"rpc_{k}": v for k, v in (spec.get("rpc") or {}).items()}
    rt = MapReduceRuntime(
        wl,
        conf=JobConf(**spec["conf"]) if spec.get("conf") else None,
        cluster_spec=ClusterSpec(num_nodes=spec["nodes"], num_racks=spec["racks"],
                                 seed=spec["seed"]),
        yarn_config=YarnConfig(nm_liveness_timeout=spec["liveness"], **rpc_kwargs),
        hdfs_config=HdfsConfig(replication=spec["replication"]),
        policy=make_policy(spec["policy"]),
        job_name=f"test-{spec['name']}",
        speculation=bool(spec.get("speculation", False)),
        trace_columnar=bool(spec.get("trace_columnar", False)),
    )
    if spec["faults"]:
        FaultInjector(*[build_fault(d) for d in spec["faults"]]).install(rt)
    return rt


# ---------------------------------------------------------------------------
# Column-store round-trips vs shadow python objects
# ---------------------------------------------------------------------------
class TestFlowColumnsRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(0.0, 1e12, allow_nan=False),   # size
        st.floats(0.0, 1e9, allow_nan=False),    # rate
        st.integers(0, 10_000),                  # fid
        st.integers(1, 9),                       # degree (may exceed initial width)
    ), min_size=1, max_size=40))
    def test_cells_and_rids_match_shadow(self, rows):
        cols = FlowColumns()
        shadow = {}
        for size, rate, fid, deg in rows:
            cols.ensure_degree(deg)
            rids = [fid * 31 + j for j in range(deg)]
            slot = cols.alloc(remaining=size, rate=rate, size=size,
                              fid=fid, comp=fid, deg=deg)
            # The writer owns padding: the store clears neither on
            # free nor on alloc, so (like `_attach`) reset past-degree
            # entries to -1 when stamping the edge row.
            cols.rids[slot, :deg] = rids
            cols.rids[slot, deg:] = -1
            shadow[slot] = (size, rate, fid, deg, rids)
            if len(shadow) > 3 and fid % 3 == 0:
                victim = next(iter(shadow))
                cols.free(victim)
                del shadow[victim]
        for slot, (size, rate, fid, deg, rids) in shadow.items():
            assert cols.get(slot, "remaining") == size
            assert cols.get(slot, "rate") == rate
            assert cols.get(slot, "fid") == fid
            assert cols.get(slot, "deg") == deg
            assert cols.rids[slot, :deg].tolist() == rids
            # Padding past the degree stays -1 across frees, reuse and
            # both growth directions (capacity and degree widening).
            assert (cols.rids[slot, deg:] == -1).all()

    def test_rids_grow_with_capacity_and_degree(self):
        cols = FlowColumns()
        base_width = cols.rids.shape[1]
        slots = [cols.alloc(fid=i) for i in range(32)]
        assert cols.rids.shape[0] == cols.capacity
        cols.rids[slots[7], :2] = [70, 71]
        cols.ensure_degree(base_width + 3)
        assert cols.rids.shape[1] >= base_width + 3
        assert cols.rids[slots[7], :2].tolist() == [70, 71]
        assert (cols.rids[slots[7], 2:] == -1).all()


class TestAttemptColumnsRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(0, 1),                       # task_type
        st.integers(0, 500),                     # task_id
        st.floats(0.0, 1e6, allow_nan=False),    # start_time
        st.floats(0.0, 1.0, allow_nan=False),    # prog_base
        st.booleans(),                           # free it again?
    ), min_size=1, max_size=40))
    def test_cells_match_shadow(self, rows):
        store = AttemptColumns()
        shadow = {}
        seqs = []
        for i, (tt, tid, start, base, free_it) in enumerate(rows):
            slot = store.alloc_attempt(task_type=tt, task_id=tid, owner=0,
                                       running=True, start_time=start,
                                       prog_base=base, flow_slot=-1,
                                       flow_fid=-1)
            seqs.append(store.get(slot, "seq"))
            if free_it:
                store.free(slot)
                assert store.flow_refs[slot] is None
            else:
                shadow[slot] = (tt, tid, start, base)
        # seq is globally monotone (a deterministic sort key even after
        # LIFO slot reuse).
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for slot, (tt, tid, start, base) in shadow.items():
            assert store.get(slot, "task_type") == tt
            assert store.get(slot, "task_id") == tid
            assert store.get(slot, "start_time") == start
            assert store.get(slot, "prog_base") == base
            assert store.get(slot, "running") is True

    def test_reused_slot_zero_filled_and_ref_cleared(self):
        store = AttemptColumns()
        a = store.alloc_attempt(task_id=3, prog_base=0.5, reduce_live=True)
        store.flow_refs[a] = object()
        store.free(a)
        b = store.alloc_attempt(task_id=9)
        assert b == a  # LIFO reuse
        assert store.get(b, "prog_base") == 0.0
        assert store.get(b, "reduce_live") is False
        assert store.flow_refs[b] is None


# ---------------------------------------------------------------------------
# attempt_progress kernel vs hand-evaluated scalar formulas
# ---------------------------------------------------------------------------
class TestAttemptProgressKernel:
    def test_forms_match_scalar_evaluation(self):
        fcols = FlowColumns()
        store = AttemptColumns()
        now, last_update = 12.0, 10.0
        # Form A with a live column-backed flow: size 100, remaining 60
        # as of last_update, rate 5 -> remaining 50 at now.
        fs = fcols.alloc(remaining=60.0, rate=5.0, size=100.0, fid=7, comp=0, deg=1)
        a = store.alloc_attempt(prog_base=0.35, prog_span=0.35,
                                flow_slot=fs, flow_fid=7)
        # Form A with a stale link (freed cell) falling back to the ref.
        class _Ref:
            progress = 0.25
        b = store.alloc_attempt(prog_base=0.0, prog_span=0.35,
                                flow_slot=99, flow_fid=-2)
        store.flow_refs[b] = _Ref()
        # Form B (reduce stage): resume 0.2, cpu 8s started at t=10,
        # flow 40% done -> live = min(flowprog, cpu_part).
        fs2 = fcols.alloc(remaining=60.0, rate=0.0, size=100.0, fid=8, comp=1, deg=1)
        c = store.alloc_attempt(reduce_live=True, resume=0.2,
                                cpu_start=10.0, cpu_secs=8.0,
                                flow_slot=fs2, flow_fid=8)
        # FCM form: progress = resume + (1-resume)*cpu_part, flows ignored.
        d = store.alloc_attempt(reduce_live=True, fcm=True, resume=0.4,
                                cpu_start=10.0, cpu_secs=4.0,
                                flow_slot=fs2, flow_fid=8)
        slots = np.array([a, b, c, d])
        out = attempt_progress(store, slots, fcols, now, last_update)
        assert out[0] == 0.35 + 0.35 * ((100.0 - 50.0) / 100.0)
        assert out[1] == 0.0 + 0.35 * 0.25
        live_c = min((100.0 - 60.0) / 100.0, min(1.0, (now - 10.0) / 8.0))
        assert out[2] == 2.0 / 3.0 + (0.2 + (1.0 - 0.2) * live_c) / 3.0
        cpu_d = min(1.0, (now - 10.0) / 4.0)
        assert out[3] == 0.4 + (1.0 - 0.4) * cpu_d

    def test_zero_size_flow_counts_complete(self):
        fcols = FlowColumns()
        store = AttemptColumns()
        fs = fcols.alloc(remaining=0.0, rate=0.0, size=0.0, fid=1, comp=0, deg=0)
        a = store.alloc_attempt(prog_base=0.0, prog_span=0.3,
                                flow_slot=fs, flow_fid=1)
        out = attempt_progress(store, np.array([a]), fcols, 5.0, 5.0)
        assert out[0] == 0.3


# ---------------------------------------------------------------------------
# Cross-plane digest parity on the columnar exercise scenarios
# ---------------------------------------------------------------------------
def _plane_digest(monkeypatch, spec, plane: str) -> str:
    if plane == "reference":
        monkeypatch.setenv("REPRO_DATA_PLANE", "reference")
    else:
        monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    try:
        payload = run_verify_spec(spec)
    finally:
        monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    assert payload["invariant_violations"] == []
    return payload["digest"]


@pytest.mark.parametrize("name", ["shuffle-heavy-yarn", "straggler-spec-alm"])
@pytest.mark.parametrize("nodes", [
    64,
    pytest.param(1024, marks=pytest.mark.slow),
])
def test_cross_plane_digest_parity_scaled(monkeypatch, name, nodes):
    """The shuffle-heavy and speculation scenarios — the paths that
    exercise flow columns, attempt columns and the high-volume trace
    kinds together — must digest identically on both data planes at
    cluster sizes well past the verify corpus default."""
    spec = SCENARIOS[name].to_spec()
    spec["name"] = f"{name}-{nodes}"
    spec["nodes"] = nodes
    col = _plane_digest(monkeypatch, spec, "columnar")
    ref = _plane_digest(monkeypatch, spec, "reference")
    assert col == ref


@pytest.mark.parametrize("name", ["crash-reducer-sfm", "slow-node-iss",
                                  "clean-terasort-yarn"])
def test_speculation_set_identical_across_planes(monkeypatch, name):
    """Forcing speculation on, the launched-speculation set (and every
    other trace byte) must match the scalar scan: the ``speculation``
    records hash task name, estimate and mean, so digest equality pins
    the set, the ordering and the float estimates."""
    spec = SCENARIOS[name].to_spec()
    spec["name"] = f"{name}-spec"
    spec["speculation"] = True
    col = _plane_digest(monkeypatch, spec, "columnar")
    ref = _plane_digest(monkeypatch, spec, "reference")
    assert col == ref


@pytest.mark.slow
def test_speculation_set_identical_full_corpus(monkeypatch):
    """Satellite sweep: every golden scenario with speculation forced
    digests identically under the vectorized and scalar speculator
    scans."""
    for name, scenario in SCENARIOS.items():
        spec = scenario.to_spec()
        spec["name"] = f"{name}-spec"
        spec["speculation"] = True
        col = _plane_digest(monkeypatch, spec, "columnar")
        ref = _plane_digest(monkeypatch, spec, "reference")
        assert col == ref, name


# ---------------------------------------------------------------------------
# Attempt slots across AM restarts (the PR 8 adoption path)
# ---------------------------------------------------------------------------
def test_attempt_slots_recycle_across_am_restart(monkeypatch):
    monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    spec = SCENARIOS["am-restart-log-yarn"].to_spec()
    rt = _build_runtime(spec)
    result = rt.run()
    assert result.success
    assert result.counters["am_restarts"] >= 1
    store = rt.attempt_columns
    assert store is not None
    attempts = {id(a) for am in rt.am_incarnations
                for t in am.map_tasks + am.reduce_tasks for a in t.attempts}
    # Adopted attempts keep their slots and finished ones free them, so
    # the high-water mark stays below the total attempt count — slots
    # were recycled, not leaked, across the restart.
    assert store.size < len(attempts)
    # Every attempt was adjudicated and released its mirror slot.
    assert len(store) == 0


# ---------------------------------------------------------------------------
# Flow-timer reuse (stat plumbing regression)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("sched_cls", [FlowScheduler, ColumnarFlowScheduler],
                         ids=["incremental", "columnar"])
def test_disjoint_admission_reuses_completion_timer(sched_cls):
    """An admission in a *disjoint* component recomputes only its own
    rates; when the earliest completion deadline is unchanged, the
    scheduler must reuse the pending timer instead of pushing a new
    event. The stat plumbing is correct — ``timer_reuses`` stays 0 in
    ``BENCH_flows.json`` because the bench's ring waves change the
    earliest deadline on every recompute, not because the counter is
    broken (ordinary MapReduce runs reuse it; this pins the path).
    Power-of-two sizes/capacities keep the fire-time comparison exact.
    """
    sim = Simulator()
    fs = sched_cls(sim)
    ra = LinkResource("A", 1.0)
    rb = LinkResource("B", 1.0)
    f1 = fs.transfer(8.0, [ra], "early")  # completes at t=8.0

    def admit_later():
        yield sim.timeout(2.0)
        before = fs.stats["timer_reuses"]
        f2 = fs.transfer(16.0, [rb], "late")  # would complete at t=18.0
        yield sim.timeout(0.0)  # let the deferred flush run
        # The flush recomputed B's component; the earliest deadline is
        # still f1's t=8.0, so the timer must have been reused.
        assert fs.stats["timer_reuses"] == before + 1
        yield f2.done

    done = sim.process(admit_later())
    times = {}
    for f in (f1,):
        f.done._add_callback(lambda e: times.__setitem__("early", sim.now))
    sim.run(done)
    assert times["early"] == 8.0
    assert sim.now == 18.0
    assert fs.stats["timer_reuses"] >= 1
