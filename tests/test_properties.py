"""Property-based tests of job-level invariants.

These drive whole simulated jobs through hypothesis-chosen workload
shapes and failure points and check conservation laws and monotonicity
properties that must hold regardless of parameters.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alm import ALMPolicy
from repro.faults import kill_reduce_at_progress
from repro.mapreduce.tasks import TaskState

from tests.conftest import make_runtime, tiny_workload

# Hypothesis suites drive whole simulations per example: tier-2.
pytestmark = pytest.mark.slow

# Whole-job property tests are expensive; keep example counts small but
# meaningful. Deadlines off: a single example runs a full simulation.
_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestConservation:
    @given(
        input_mb=st.sampled_from([256.0, 512.0, 1024.0]),
        reducers=st.integers(min_value=1, max_value=4),
        map_sel=st.floats(min_value=0.1, max_value=1.5),
    )
    @settings(**_SETTINGS)
    def test_shuffle_bytes_conserved(self, input_mb, reducers, map_sel):
        """Every byte of map output is shuffled to exactly one reducer."""
        wl = tiny_workload(input_mb=input_mb, reducers=reducers, map_sel=map_sel)
        rt = make_runtime(wl)
        res = rt.run()
        assert res.success
        total = sum(t.attempts[-1].total_input_bytes for t in rt.am.reduce_tasks)
        assert total == pytest.approx(wl.shuffle_bytes, rel=1e-6)

    @given(
        reducers=st.integers(min_value=1, max_value=4),
        reduce_sel=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(**_SETTINGS)
    def test_output_bytes_match_selectivity(self, reducers, reduce_sel):
        wl = tiny_workload(reducers=reducers, reduce_sel=reduce_sel)
        rt = make_runtime(wl)
        rt.run()
        out = sum(f.size for p, f in rt.hdfs._files.items() if p.startswith("out/"))
        assert out == pytest.approx(wl.shuffle_bytes * reduce_sel, rel=1e-6)


class TestRecoveryInvariants:
    @given(progress=st.floats(min_value=0.05, max_value=0.95))
    @settings(**_SETTINGS)
    def test_single_failure_job_still_succeeds(self, progress):
        """A single transient ReduceTask failure never fails the job."""
        wl = tiny_workload(reducers=2, reduce_cpu=0.08)
        rt = make_runtime(wl)
        kill_reduce_at_progress(progress).install(rt)
        res = rt.run()
        assert res.success
        assert all(t.state is TaskState.SUCCEEDED
                   for t in rt.am.map_tasks + rt.am.reduce_tasks)

    @given(progress=st.floats(min_value=0.05, max_value=0.95))
    @settings(**_SETTINGS)
    def test_failure_never_speeds_up_job_much(self, progress):
        """A failure can reorder work but must not make the job
        dramatically faster than failure-free (sanity against
        accounting bugs that 'lose' work)."""
        wl = tiny_workload(reducers=2, reduce_cpu=0.08)
        base = make_runtime(wl).run().elapsed
        rt = make_runtime(wl)
        kill_reduce_at_progress(progress).install(rt)
        res = rt.run()
        assert res.elapsed > 0.9 * base

    @given(progress=st.floats(min_value=0.05, max_value=0.95))
    @settings(**_SETTINGS)
    def test_alm_never_loses_to_failure_by_much(self, progress):
        """Under ALM, recovery from a transient failure keeps the job
        within a modest envelope of the failure-free run."""
        wl = tiny_workload(reducers=2, reduce_cpu=0.08)
        base = make_runtime(wl).run().elapsed
        rt = make_runtime(wl, policy=ALMPolicy())
        kill_reduce_at_progress(progress).install(rt)
        res = rt.run()
        assert res.success
        assert res.elapsed < 2.0 * base


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**{**_SETTINGS, "max_examples": 6})
    def test_same_seed_same_result(self, seed):
        r1 = make_runtime(seed=seed).run()
        r2 = make_runtime(seed=seed).run()
        assert r1.elapsed == r2.elapsed
        assert r1.counters == r2.counters


class TestScaling:
    def test_job_time_monotone_in_input(self):
        times = [
            make_runtime(tiny_workload(input_mb=mb)).run().elapsed
            for mb in (256.0, 1024.0, 4096.0)
        ]
        assert times[0] < times[1] < times[2]

    def test_more_reducers_do_not_slow_small_job_down_much(self):
        t2 = make_runtime(tiny_workload(reducers=2)).run().elapsed
        t4 = make_runtime(tiny_workload(reducers=4)).run().elapsed
        assert t4 < t2 * 1.5
