"""Unit tests for workload models."""

import numpy as np
import pytest

from repro.cluster.node import GB
from repro.sim.core import SimulationError
from repro.workloads import BENCHMARKS, secondarysort, terasort, wordcount
from repro.workloads.workload import Workload


class TestBenchmarkDefinitions:
    def test_terasort_is_identity(self):
        wl = terasort(100.0)
        assert wl.map_selectivity == 1.0
        assert wl.reduce_selectivity == 1.0
        assert wl.input_size == 100 * GB
        assert wl.num_reducers == 20

    def test_wordcount_combines_and_has_one_reducer(self):
        wl = wordcount(10.0)
        assert wl.map_selectivity < 0.5
        assert wl.num_reducers == 1

    def test_secondarysort_is_reduce_cpu_heavy(self):
        wl = secondarysort(10.0)
        assert wl.reduce_cpu_per_mb > terasort().reduce_cpu_per_mb
        assert wl.reduce_cpu_per_mb > wordcount().reduce_cpu_per_mb

    def test_benchmark_registry(self):
        assert set(BENCHMARKS) == {"terasort", "wordcount", "secondarysort"}
        for factory in BENCHMARKS.values():
            assert isinstance(factory(1.0), Workload)

    def test_shuffle_bytes(self):
        wl = terasort(10.0)
        assert wl.shuffle_bytes == pytest.approx(10 * GB)
        assert wordcount(10.0).shuffle_bytes < 10 * GB


class TestPartitionWeights:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        for wl in (terasort(1.0), wordcount(1.0), secondarysort(1.0)):
            w = wl.partition_weights(rng)
            assert w.shape == (wl.num_reducers,)
            assert w.sum() == pytest.approx(1.0)
            assert (w > 0).all()

    def test_zero_skew_is_uniform(self):
        rng = np.random.default_rng(0)
        wl = terasort(1.0).with_reducers(8)
        wl = Workload(**{**wl.__dict__, "partition_skew": 0.0})
        w = wl.partition_weights(rng)
        assert np.allclose(w, 1 / 8)


class TestDerivedWorkloads:
    def test_with_input(self):
        wl = terasort(10.0).with_input(5 * GB)
        assert wl.input_size == 5 * GB
        assert wl.name == "terasort"

    def test_with_reducers(self):
        assert terasort(10.0).with_reducers(7).num_reducers == 7


class TestValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(SimulationError):
            terasort(0.0)
        with pytest.raises(SimulationError):
            terasort(1.0).with_reducers(0)
        with pytest.raises(SimulationError):
            Workload("x", 1.0, 1, -1.0, 0, 0, 0)
        with pytest.raises(SimulationError):
            Workload("x", 1.0, 1, 1.0, 0, 0, 0, deser_fraction=2.0)
