"""Tests of the ALM framework: ALG logging, SFM policy, FCM recovery."""

import pytest

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.alm.alg import AnalyticsLogStore, LogRecord
from repro.alm.fcm import FCMReduceAttempt
from repro.faults import kill_node_at_progress, kill_reduce_at_progress
from repro.hdfs.hdfs import ReplicationLevel
from repro.mapreduce.tasks import Task, TaskType
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload
from tests.test_failure_semantics import spatial_runtime


def alg_policy(**alg_kw):
    return ALMPolicy(ALMConfig(enable_alg=True, enable_sfm=False, alg=ALGConfig(**alg_kw)))


def sfm_policy():
    return ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True))


def alm_policy(**alg_kw):
    return ALMPolicy(ALMConfig(alg=ALGConfig(**alg_kw)))


class TestALMConfig:
    def test_policy_names(self):
        assert alg_policy().name == "alg"
        assert sfm_policy().name == "sfm"
        assert alm_policy().name == "alm"

    def test_validation(self):
        with pytest.raises(SimulationError):
            ALMConfig(enable_alg=False, enable_sfm=False)
        with pytest.raises(SimulationError):
            ALMConfig(fcm_cap=-1)
        with pytest.raises(SimulationError):
            ALGConfig(frequency=0)


class TestLogStore:
    def test_local_record_requires_same_live_node(self, runtime):
        store = AnalyticsLogStore()
        node = runtime.workers[0]
        other = runtime.workers[1]
        task = Task(0, TaskType.REDUCE, partition_index=0)
        store.put(LogRecord(task_id=0, stage="shuffle", time=1.0, node=node))
        assert store.local_record(task, node) is not None
        assert store.local_record(task, other) is None
        runtime.cluster.crash_node(node)
        assert store.local_record(task, node) is None

    def test_hdfs_record_available_anywhere(self, runtime):
        store = AnalyticsLogStore()
        task = Task(0, TaskType.REDUCE, partition_index=0)
        store.put(LogRecord(task_id=0, stage="reduce", time=1.0,
                            node=runtime.workers[0], reduce_fraction=0.6, on_hdfs=True))
        state = store.recovery_state_for(task, runtime.workers[3])
        assert state is not None
        assert state.reduce_resume_fraction == pytest.approx(0.6)

    def test_no_record_no_state(self, runtime):
        store = AnalyticsLogStore()
        task = Task(0, TaskType.REDUCE, partition_index=0)
        assert store.recovery_state_for(task, runtime.workers[0]) is None


class TestALG:
    def test_logging_ticks_happen(self):
        pol = alg_policy(frequency=3.0)
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1), policy=pol)
        rt.run()
        assert pol.logger.ticks > 0
        assert pol.log_store.hdfs_record(rt.am.reduce_tasks[0]) is not None

    def test_alg_overhead_is_small_failure_free(self):
        wl = lambda: tiny_workload(reducers=2, reduce_cpu=0.05)
        base = make_runtime(wl()).run().elapsed
        logged = make_runtime(wl(), policy=alg_policy(frequency=5.0)).run().elapsed
        assert logged <= base * 1.10  # Fig. 11: negligible overhead

    def test_alg_speeds_up_late_reduce_failure(self):
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.15)
        yarn = make_runtime(wl())
        kill_reduce_at_progress(0.9).install(yarn)
        t_yarn = yarn.run().elapsed
        alg = make_runtime(wl(), policy=alg_policy(frequency=3.0))
        kill_reduce_at_progress(0.9).install(alg)
        t_alg = alg.run().elapsed
        assert t_alg < t_yarn  # Fig. 8

    def test_recovered_attempt_resumes_from_fraction(self):
        pol = alg_policy(frequency=3.0)
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.15), policy=pol)
        kill_reduce_at_progress(0.9).install(rt)
        res = rt.run()
        assert res.success
        attempts = rt.am.reduce_tasks[0].attempts
        assert len(attempts) >= 2
        assert attempts[-1].reduce_resume_fraction > 0

    def test_replication_level_controls_output_placement(self):
        def out_blocks(level):
            pol = alg_policy(frequency=2.0, level=level)
            rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.05,
                                            reduce_sel=1.0, input_mb=512),
                              policy=pol)
            rt.run()
            return [
                b for p, f in rt.hdfs._files.items() if p.startswith("out/")
                for b in f.blocks
            ]

        for b in out_blocks(ReplicationLevel.NODE):
            assert len(b.replicas) == 1  # local only until lazy commit
        for b in out_blocks(ReplicationLevel.RACK):
            racks = {n.rack for n in b.replicas}
            assert len(racks) == 1
        assert any(
            len({n.rack for n in b.replicas}) > 1
            for b in out_blocks(ReplicationLevel.CLUSTER)
        )

    def test_cluster_replication_not_cheaper_than_node(self):
        def run(level):
            pol = alg_policy(frequency=2.0, level=level)
            rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.05,
                                            reduce_sel=1.0, input_mb=1024),
                              policy=pol)
            return rt.run().elapsed

        t_node = run(ReplicationLevel.NODE)
        t_cluster = run(ReplicationLevel.CLUSTER)
        # Fig. 13 ordering (allowing scheduling noise at toy scale).
        assert t_cluster >= t_node * 0.98

    def test_log_frequency_insensitivity(self):
        # Fig. 12: performance roughly flat across logging frequencies.
        times = []
        for freq in (2.0, 5.0, 15.0):
            rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.05),
                              policy=alg_policy(frequency=freq))
            times.append(rt.run().elapsed)
        assert max(times) <= min(times) * 1.15


class TestSFM:
    def test_sfm_eliminates_temporal_amplification(self):
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        yarn = make_runtime(wl())
        kill_node_at_progress(0.3, target="reducer").install(yarn)
        ry = yarn.run()
        sfm = make_runtime(wl(), policy=sfm_policy())
        kill_node_at_progress(0.3, target="reducer").install(sfm)
        rs = sfm.run()
        assert ry.counters["failed_reduce_attempts"] >= 1
        assert rs.counters["failed_reduce_attempts"] == 0
        assert rs.elapsed < ry.elapsed  # Figs. 9 & 10

    def test_sfm_regenerates_maps_proactively(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt = make_runtime(wl, policy=sfm_policy())
        kill_node_at_progress(0.3, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        lost = rt.trace.first("node_lost")
        regen = rt.trace.first("sfm_regenerate")
        assert regen is not None
        assert regen.time == pytest.approx(lost.time)
        # Regeneration beats the first recovered-reducer fetch failure:
        assert res.counters["fetch_failure_reports"] == 0

    def test_sfm_prevents_spatial_amplification(self):
        rt = spatial_runtime(policy=sfm_policy())
        kill_node_at_progress(0.15, target="map-only").install(rt)
        res = rt.run()
        assert res.success
        assert res.counters["failed_reduce_attempts"] == 0  # Table II

    def test_migrated_recovery_uses_fcm(self):
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt = make_runtime(wl, policy=sfm_policy())
        kill_node_at_progress(0.3, target="reducer").install(rt)
        rt.run()
        assert rt.trace.first("fcm_start") is not None
        last = rt.am.reduce_tasks[0].attempts[-1]
        assert isinstance(last, FCMReduceAttempt)

    def test_fcm_cap_limits_fcm_mode(self):
        wl = tiny_workload(reducers=3, reduce_cpu=0.15, input_mb=1024)
        pol = ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True, fcm_cap=0))
        rt = make_runtime(wl, policy=pol)
        kill_node_at_progress(0.3, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        assert rt.trace.first("fcm_start") is None  # cap 0: regular mode only

    def test_transient_failure_relaunches_on_same_node(self):
        # Algorithm 1 lines 9-13 relaunch locally *to reuse local ALG
        # logs*, so the failure must strike after a completed shuffle-
        # stage logging tick.
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=2048)
        pol = ALMPolicy(ALMConfig(enable_alg=True, enable_sfm=True,
                                  alg=ALGConfig(frequency=1.0)))
        rt = make_runtime(wl, policy=pol)
        kill_reduce_at_progress(0.8).install(rt)
        res = rt.run()
        assert res.success
        attempts = rt.am.reduce_tasks[0].attempts
        assert len(attempts) >= 2
        assert any(a.node is attempts[0].node for a in attempts[1:])

    def test_no_local_relaunch_without_logs(self):
        # SFM-only: a same-node relaunch would just duplicate the
        # speculative recovery's traffic, so it is skipped.
        wl = tiny_workload(reducers=1, reduce_cpu=0.2, input_mb=1024)
        rt = make_runtime(wl, policy=sfm_policy())
        kill_reduce_at_progress(0.8).install(rt)
        res = rt.run()
        assert res.success
        attempts = rt.am.reduce_tasks[0].attempts
        assert len(attempts) == 2  # exactly one recovery attempt


class TestSFMplusALG:
    def test_combined_beats_sfm_only_on_late_node_failure(self):
        # Fig. 15: ALG's HDFS reduce-stage logs let the FCM recovery
        # skip the already-reduced prefix.
        wl = lambda: tiny_workload(reducers=1, reduce_cpu=0.3, input_mb=1024)

        def run(policy):
            rt = make_runtime(wl(), policy=policy)
            kill_node_at_progress(0.85, target="reducer").install(rt)
            return rt.run()

        r_sfm = run(sfm_policy())
        r_alm = run(alm_policy(frequency=3.0))
        assert r_alm.success and r_sfm.success
        assert r_alm.elapsed < r_sfm.elapsed
