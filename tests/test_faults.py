"""Unit tests for the fault-injection layer."""

import pytest

from repro.faults import (
    EventTrigger,
    FaultInjector,
    MapWaveFault,
    NodeFault,
    PartitionFault,
    RackFault,
    SlowNodeFault,
    TaskFault,
    kill_maps_at_time,
    kill_node_at_progress,
    kill_node_at_time,
    kill_reduce_at_progress,
)
from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


class TestTaskFault:
    def test_fires_once_at_progress(self):
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1))
        fault = kill_reduce_at_progress(0.8)
        fault.install(rt)
        res = rt.run()
        assert res.success
        assert fault.fired_at is not None
        assert res.counters["failed_reduce_attempts"] == 1  # only one kill

    def test_does_not_fire_after_task_finished(self):
        rt = make_runtime()
        fault = TaskFault(TaskType.MAP, 0, 0.99)
        fault.install(rt)
        rt.run()
        # Either fired exactly once or never (map too fast to catch);
        # in both cases the job succeeds and no spurious kill happens.
        assert rt.am.map_tasks[0].state.value == "succeeded"

    def test_progress_validation(self):
        rt = make_runtime()
        with pytest.raises(SimulationError):
            TaskFault(TaskType.REDUCE, 0, 1.5).install(rt)


class TestNodeFault:
    def test_time_trigger(self):
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1))
        fault = kill_node_at_time(5.0, target=0)
        fault.install(rt)
        rt.run()
        assert fault.fired_at == pytest.approx(5.0)
        assert fault.victim_name == rt.workers[0].name
        assert not rt.workers[0].reachable
        assert rt.workers[0].alive  # network mode keeps the machine up

    def test_crash_mode_kills_machine(self):
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.1))
        NodeFault(target=0, at_time=5.0, mode="crash").install(rt)
        rt.run()
        assert not rt.workers[0].alive

    def test_reducer_target_hits_reducer_host(self):
        rt = make_runtime(tiny_workload(reducers=1, reduce_cpu=0.2))
        fault = kill_node_at_progress(0.5, target="reducer")
        fault.install(rt)
        rt.run()
        assert fault.victim_name is not None
        first = rt.trace.first("attempt_start", type="reduce")
        assert first.data["node"] == fault.victim_name

    def test_validation(self):
        rt = make_runtime()
        with pytest.raises(SimulationError):
            NodeFault(target=0).install(rt)  # neither trigger given
        with pytest.raises(SimulationError):
            NodeFault(target=0, at_time=1.0, at_progress=0.5).install(rt)
        with pytest.raises(SimulationError):
            NodeFault(target=0, at_time=1.0, mode="meteor").install(rt)

    def test_no_fire_when_job_ends_first(self):
        rt = make_runtime()
        fault = kill_node_at_progress(0.999999, target="reducer")
        fault.install(rt)
        res = rt.run()
        assert res.success  # fault may or may not fire; job completes


class TestMapWaveFault:
    def test_kills_up_to_count_running_maps(self):
        rt = make_runtime(tiny_workload(input_mb=1024))
        fault = kill_maps_at_time(4, at_time=3.0)
        fault.install(rt)
        res = rt.run()
        assert res.success
        assert 1 <= fault.killed <= 4
        assert len(fault.killed_tasks) == fault.killed
        assert res.counters["failed_map_attempts"] == fault.killed


class TestFaultInjector:
    def test_bundles_install_together(self):
        rt = make_runtime(tiny_workload(reducers=2, reduce_cpu=0.1))
        f1 = kill_reduce_at_progress(0.7, task_index=0)
        f2 = kill_reduce_at_progress(0.7, task_index=1)
        FaultInjector(f1).add(f2).install(rt)
        res = rt.run()
        assert res.success
        assert res.counters["failed_reduce_attempts"] == 2


class TestConstructValidation:
    """Every fault rejects bad parameters at install time, naming the
    offending field — a bad chaos schedule must fail loudly, not 2000
    simulated seconds into a campaign."""

    def test_task_fault_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="TaskFault.repeat"):
            TaskFault(TaskType.REDUCE, 0, 0.5, repeat=0).install(rt)
        with pytest.raises(SimulationError, match="TaskFault.task_index"):
            TaskFault(TaskType.REDUCE, -1, 0.5).install(rt)
        with pytest.raises(SimulationError, match="TaskFault.task_index"):
            TaskFault(TaskType.REDUCE, 99, 0.5).install(rt)
        with pytest.raises(SimulationError, match="TaskFault.at_progress"):
            TaskFault(TaskType.REDUCE, 0, -0.1).install(rt)

    def test_node_fault_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="NodeFault.duration"):
            NodeFault(target=0, at_time=1.0, duration=0.0).install(rt)
        with pytest.raises(SimulationError, match="NodeFault.target"):
            NodeFault(target=99, at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="NodeFault.target"):
            NodeFault(target="mapper", at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="NodeFault.at_time"):
            NodeFault(target=0, at_time=-1.0).install(rt)
        # An `after` trigger counts as a trigger: combining it with
        # at_time is ambiguous and rejected.
        with pytest.raises(SimulationError, match="exactly one trigger"):
            NodeFault(target=0, at_time=1.0,
                      after=EventTrigger("node_lost")).install(rt)

    def test_event_trigger_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="after.delay"):
            NodeFault(target=0, after=EventTrigger("node_lost", delay=-1.0)).install(rt)
        with pytest.raises(SimulationError, match="after.occurrence"):
            NodeFault(target=0, after=EventTrigger("node_lost", occurrence=0)).install(rt)
        with pytest.raises(SimulationError, match="after.kind"):
            NodeFault(target=0, after=EventTrigger("")).install(rt)

    def test_rack_fault_fields(self):
        rt = make_runtime()  # 2 racks
        with pytest.raises(SimulationError, match="RackFault.rack_index"):
            RackFault(rack_index=5, at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="RackFault.count"):
            RackFault(rack_index=0, count=0, at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="RackFault.mode"):
            RackFault(rack_index=0, at_time=1.0, mode="flood").install(rt)
        with pytest.raises(SimulationError, match="RackFault.stagger"):
            RackFault(rack_index=0, at_time=1.0, stagger=-1.0).install(rt)

    def test_partition_fault_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="PartitionFault.node_indices"):
            PartitionFault(node_indices=(), at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="PartitionFault.node_indices"):
            PartitionFault(node_indices=(99,), at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="PartitionFault.duration"):
            PartitionFault(node_indices=(0,), at_time=1.0, duration=0.0).install(rt)

    def test_map_wave_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="MapWaveFault.count"):
            MapWaveFault(count=0, at_time=1.0).install(rt)
        with pytest.raises(SimulationError, match="MapWaveFault.at_time"):
            MapWaveFault(count=1, at_time=-1.0).install(rt)

    def test_slow_node_fields(self):
        rt = make_runtime()
        with pytest.raises(SimulationError, match="SlowNodeFault.disk_factor"):
            SlowNodeFault(node_index=0, at_time=1.0, disk_factor=0.0).install(rt)
        with pytest.raises(SimulationError, match="SlowNodeFault.nic_factor"):
            SlowNodeFault(node_index=0, at_time=1.0, nic_factor=1.5).install(rt)
        with pytest.raises(SimulationError, match="SlowNodeFault.at_time"):
            SlowNodeFault(node_index=0, at_time=-1.0).install(rt)
        with pytest.raises(SimulationError, match="SlowNodeFault.node_index"):
            SlowNodeFault(node_index=99, at_time=1.0).install(rt)
