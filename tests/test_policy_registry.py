"""The policy registry: discovery, construction, and the conformance
property every registered policy must satisfy.

Tier-1 covers the registry mechanics (discovery is complete, the seed
roster is pinned, kwarg filtering matches the historical
``experiments.common.make_policy`` contract). The tier-2 conformance
suite is the registry's real teeth: *every* registered policy — seed or
zoo, present or future — runs a seeded smoke workload under each fault
kind and must pass all invariants, terminate, and produce byte-identical
trace digests on rerun and across the ``REPRO_DATA_PLANE`` /
``REPRO_SCHEDULER`` implementation modes. A new policy module gets this
safety net just by registering.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alm import ALMPolicy
from repro.baselines.iss import ISSPolicy
from repro.faults.chaos import CHAOS_POLICIES
from repro.mapreduce.recovery import RecoveryPolicy, YarnRecoveryPolicy
from repro.policies import (
    check_registry,
    make_policy,
    policy_names,
    policy_specs,
    register_policy,
    seed_policy_names,
)
from repro.sim.core import SimulationError

from tests.conftest import make_runtime, tiny_workload


class TestDiscovery:
    def test_check_registry_passes(self):
        """The CI discovery gate: every module registers, seeds pinned."""
        check_registry()

    def test_seed_roster_is_the_chaos_rotation(self):
        assert seed_policy_names() == ("yarn", "alg", "sfm", "alm", "iss")
        assert seed_policy_names() == CHAOS_POLICIES

    def test_seed_policies_enumerate_first(self):
        names = policy_names()
        assert names[:5] == seed_policy_names()
        assert len(names) >= 9

    def test_zoo_policies_present(self):
        names = policy_names()
        for name in ("binocular", "atlas", "quantile", "m3r"):
            assert name in names

    def test_specs_carry_descriptions_and_modules(self):
        for spec in policy_specs():
            assert spec.description
            assert spec.module.startswith("repro.")

    def test_every_policy_is_a_recovery_policy(self):
        for name in policy_names():
            assert isinstance(make_policy(name), RecoveryPolicy), name


class TestConstruction:
    def test_duplicate_name_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            register_policy("yarn", YarnRecoveryPolicy, "imposter")

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown policy"):
            make_policy("no-such-policy")

    def test_kwargs_filtered_per_factory(self):
        """One shared kwargs namespace: each factory takes only the
        knobs it declares (the historical make_policy contract)."""
        yarn = make_policy("yarn", fcm_cap=3, alg_frequency=5.0)
        assert isinstance(yarn, YarnRecoveryPolicy)
        sfm = make_policy("sfm", fcm_cap=3, alg_frequency=5.0)
        assert isinstance(sfm, ALMPolicy)
        assert sfm.config.fcm_cap == 3

    def test_experiments_make_policy_delegates(self):
        from repro.experiments.common import make_policy as exp_make_policy

        assert isinstance(exp_make_policy("iss"), ISSPolicy)
        alm = exp_make_policy("alm", fcm_cap=4)
        assert isinstance(alm, ALMPolicy)
        assert alm.config.fcm_cap == 4


# -- conformance -------------------------------------------------------------

#: One representative fault per chaos archetype family, shaped for the
#: smoke workload below (2 reducers, 6 nodes).
_CONFORMANCE_FAULTS = {
    "none": (),
    "task-oom": ({"kind": "task-oom", "task_type": "reduce", "task_index": 0,
                  "at_progress": 0.5},),
    "node-crash": ({"kind": "node-crash", "target": "reducer",
                    "at_progress": 0.4},),
    "partition": ({"kind": "partition", "node_indices": [2], "at_time": 6.0,
                   "duration": 30.0},),
    "degraded": ({"kind": "degraded", "node_index": 2, "at_time": 5.0,
                  "disk_factor": 0.2, "nic_factor": 0.5, "duration": 40.0},),
}

_MODES = (
    {},
    {"REPRO_DATA_PLANE": "scalar"},
    {"REPRO_SCHEDULER": "reference"},
)


def _conformance_run(policy_name: str, fault_key: str,
                     env: dict[str, str]) -> dict:
    from repro.faults.chaos import build_fault
    from repro.faults.inject import FaultInjector
    from repro.invariants import check_invariants
    from repro.runner import trace_digest

    saved = {k: os.environ.get(k) for k in
             ("REPRO_DATA_PLANE", "REPRO_SCHEDULER")}
    try:
        for key, value in env.items():
            os.environ[key] = value
        rt = make_runtime(tiny_workload(reducers=2, input_mb=768),
                          policy=make_policy(policy_name))
        faults = _CONFORMANCE_FAULTS[fault_key]
        if faults:
            FaultInjector(*[build_fault(dict(d)) for d in faults]).install(rt)
        # A bounded run IS the termination check: a policy that stalls
        # its job (no progress for stall_timeout) fails here instead of
        # hanging the suite.
        res = rt.run(timeout=50_000.0, stall_timeout=1_000.0)
        return {
            "digest": trace_digest(res.trace),
            "violations": check_invariants(rt, res),
            "success": res.success,
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.mark.slow
class TestConformance:
    """Every policy x fault kind: invariants, termination, determinism."""

    @given(
        policy=st.sampled_from(policy_names()),
        fault_key=st.sampled_from(sorted(_CONFORMANCE_FAULTS)),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_policy_fault_conformance(self, policy, fault_key):
        base = _conformance_run(policy, fault_key, {})
        assert base["violations"] == [], (
            f"{policy} under {fault_key}: {base['violations']}")
        rerun = _conformance_run(policy, fault_key, {})
        assert rerun["digest"] == base["digest"], (
            f"{policy} under {fault_key}: digest drifted on rerun")
        for env in _MODES[1:]:
            other = _conformance_run(policy, fault_key, env)
            assert other["digest"] == base["digest"], (
                f"{policy} under {fault_key}: digest differs under {env}")

    def test_full_grid_clean_fault(self):
        """Exhaustive (not sampled) sweep of the two cheapest fault
        kinds across the whole registry, so every policy is guaranteed
        coverage per run regardless of hypothesis sampling."""
        for policy in policy_names():
            for fault_key in ("none", "task-oom"):
                payload = _conformance_run(policy, fault_key, {})
                assert payload["violations"] == [], (policy, fault_key)
                assert payload["success"], (policy, fault_key)
