"""Unit tests for the YARN layer (RM, NM, containers, liveness)."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.sim import Simulator
from repro.sim.core import SimulationError
from repro.yarn import ContainerKilled, ResourceManager, YarnConfig


def make_env(num_nodes=4, memory_mb=8192, **yarn_kw):
    sim = Simulator()
    racks = min(2, num_nodes)
    cluster = Cluster(sim, ClusterSpec(num_nodes=num_nodes, num_racks=racks, node=NodeSpec(memory_mb=memory_mb)))
    cfg = YarnConfig(nm_memory_fraction=1.0, **yarn_kw)
    rm = ResourceManager(sim, cluster, cfg)
    return sim, cluster, rm


class TestAllocation:
    def test_grant_after_allocation_latency(self):
        sim, cluster, rm = make_env(allocation_latency=1.0)
        grant = rm.request_container(2048)
        c = sim.run(until=grant)
        assert sim.now == pytest.approx(1.0)
        assert c.memory_mb == 2048
        assert c.alive

    def test_memory_rounding_to_allocation_bounds(self):
        sim, cluster, rm = make_env()
        c = sim.run(until=rm.request_container(100))
        assert c.memory_mb == 1024  # min allocation
        c2 = sim.run(until=rm.request_container(99999))
        assert c2.memory_mb == 6144  # max allocation

    def test_queueing_when_cluster_full(self):
        sim, cluster, rm = make_env(num_nodes=1, memory_mb=4096)
        c1 = sim.run(until=rm.request_container(4096))
        grant2 = rm.request_container(4096)
        sim.run(until=sim.now + 20)
        assert not grant2.triggered
        rm.release_container(c1)
        c2 = sim.run(until=grant2)
        assert c2.alive

    def test_priority_order(self):
        sim, cluster, rm = make_env(num_nodes=1, memory_mb=4096)
        c1 = sim.run(until=rm.request_container(4096))
        low = rm.request_container(4096, priority=10)
        high = rm.request_container(4096, priority=1)
        rm.release_container(c1)
        first = sim.run(until=sim.any_of([low, high]))
        assert high.triggered and not low.triggered
        assert first is high.value

    def test_preferred_node_honoured(self):
        sim, cluster, rm = make_env()
        target = cluster.nodes[2]
        c = sim.run(until=rm.request_container(1024, preferred_nodes=[target]))
        assert c.node is target

    def test_excluded_node_avoided(self):
        sim, cluster, rm = make_env(num_nodes=2)
        bad = cluster.nodes[0]
        for _ in range(4):
            c = sim.run(until=rm.request_container(1024, exclude_nodes=[bad]))
            assert c.node is not bad

    def test_load_balancing_spreads_containers(self):
        sim, cluster, rm = make_env(num_nodes=4)
        nodes = set()
        for _ in range(4):
            c = sim.run(until=rm.request_container(1024))
            nodes.add(c.node.node_id)
        assert len(nodes) == 4

    def test_cancel_request(self):
        sim, cluster, rm = make_env(num_nodes=1, memory_mb=4096)
        c1 = sim.run(until=rm.request_container(4096))
        grant = rm.request_container(4096)
        rm.cancel_request(grant)
        rm.release_container(c1)
        sim.run(until=sim.now + 5)
        assert not grant.triggered

    def test_available_mb_accounting(self):
        sim, cluster, rm = make_env(num_nodes=2, memory_mb=4096)
        assert rm.available_mb() == 8192
        sim.run(until=rm.request_container(2048))
        assert rm.available_mb() == 8192 - 2048


class TestNodeManager:
    def test_over_allocation_rejected(self):
        sim, cluster, rm = make_env(num_nodes=1, memory_mb=2048)
        nm = rm.node_managers[0]
        nm.allocate(2048)
        with pytest.raises(SimulationError):
            nm.allocate(1)

    def test_double_release_is_noop(self):
        sim, cluster, rm = make_env()
        nm = rm.node_managers[0]
        c = nm.allocate(1024)
        nm.release(c)
        nm.release(c)
        assert nm.used_mb == 0

    def test_memory_fraction_reserves_headroom(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=1, num_racks=1, node=NodeSpec(memory_mb=10000)))
        rm = ResourceManager(sim, cluster, YarnConfig(nm_memory_fraction=0.9))
        assert rm.node_managers[0].capacity_mb == 9000


class TestLiveness:
    def test_node_loss_detected_after_timeout(self):
        sim, cluster, rm = make_env(nm_liveness_timeout=70.0)
        lost = []
        rm.node_lost_listeners.append(lambda n: lost.append((n.name, sim.now)))

        def killer(sim):
            yield sim.timeout(10.0)
            cluster.crash_node(cluster.nodes[1])

        sim.process(killer(sim))
        sim.run(until=200.0)
        assert len(lost) == 1
        name, t = lost[0]
        assert name == "node-1"
        # Last heartbeat at ~10s, expiry 70s later, detected within a
        # heartbeat-scan period.
        assert 79.0 <= t <= 82.0

    def test_network_stop_also_detected(self):
        sim, cluster, rm = make_env(nm_liveness_timeout=70.0)
        lost = []
        rm.node_lost_listeners.append(lambda n: lost.append(n.name))

        def killer(sim):
            yield sim.timeout(5.0)
            cluster.stop_network(cluster.nodes[2])

        sim.process(killer(sim))
        sim.run(until=100.0)
        assert lost == ["node-2"]

    def test_containers_killed_on_node_loss(self):
        sim, cluster, rm = make_env(nm_liveness_timeout=10.0)
        c = sim.run(until=rm.request_container(1024, preferred_nodes=[cluster.nodes[1]]))
        caught = []

        def task(sim):
            try:
                yield c.killed
            except ContainerKilled as exc:
                caught.append(exc.reason)

        sim.process(task(sim))
        cluster.crash_node(cluster.nodes[1])
        sim.run(until=50.0)
        assert caught == ["node-1 lost"]
        assert not c.alive

    def test_lost_node_not_scheduled(self):
        sim, cluster, rm = make_env(num_nodes=2, nm_liveness_timeout=5.0)
        cluster.crash_node(cluster.nodes[0])
        sim.run(until=10.0)
        assert rm.is_lost(cluster.nodes[0])
        for _ in range(3):
            c = sim.run(until=rm.request_container(1024))
            assert c.node is cluster.nodes[1]

    def test_grant_in_flight_when_node_dies_is_retried(self):
        sim, cluster, rm = make_env(num_nodes=2, allocation_latency=5.0, nm_liveness_timeout=5.0)
        target = cluster.nodes[0]
        grant = rm.request_container(1024, preferred_nodes=[target])

        def killer(sim):
            yield sim.timeout(1.0)
            cluster.crash_node(target)

        sim.process(killer(sim))
        c = sim.run(until=grant)
        assert c.node is cluster.nodes[1]

    def test_healthy_nodes_listing(self):
        sim, cluster, rm = make_env(num_nodes=3, nm_liveness_timeout=5.0)
        cluster.crash_node(cluster.nodes[1])
        sim.run(until=10.0)
        healthy = {n.node_id for n in rm.healthy_nodes()}
        assert healthy == {0, 2}


class TestConfigValidation:
    def test_bad_bounds(self):
        with pytest.raises(SimulationError):
            YarnConfig(min_allocation_mb=0)
        with pytest.raises(SimulationError):
            YarnConfig(min_allocation_mb=2048, max_allocation_mb=1024)
        with pytest.raises(SimulationError):
            YarnConfig(nm_heartbeat_interval=0)
