"""Unit tests for the cluster model."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.cluster.node import GB, MB
from repro.sim import Simulator
from repro.sim.core import SimulationError
from repro.sim.flows import FlowCancelled


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    spec = ClusterSpec(num_nodes=6, num_racks=2, node=NodeSpec(disk_bandwidth=100.0, nic_bandwidth=50.0), core_bandwidth=200.0)
    return Cluster(sim, spec)


class TestTopology:
    def test_default_spec_matches_paper_testbed(self, sim):
        c = Cluster(sim)
        assert len(c.nodes) == 21
        assert len(c.racks) == 2
        assert c.nodes[0].spec.memory_mb == 24 * 1024

    def test_round_robin_rack_assignment(self, cluster):
        assert [n.rack.rack_id for n in cluster.nodes] == [0, 1, 0, 1, 0, 1]
        assert all(len(r.nodes) == 3 for r in cluster.racks)

    def test_same_rack(self, cluster):
        n = cluster.nodes
        assert cluster.same_rack(n[0], n[2])
        assert not cluster.same_rack(n[0], n[1])

    def test_spec_validation(self):
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(SimulationError):
            ClusterSpec(num_nodes=2, num_racks=3)
        with pytest.raises(SimulationError):
            NodeSpec(cores=0)


class TestDataMovement:
    def test_disk_read_rate(self, sim, cluster):
        f = cluster.disk_read(cluster.nodes[0], 1000.0)
        sim.run(until=f.done)
        assert sim.now == pytest.approx(10.0)

    def test_intra_rack_transfer_bottlenecked_by_nic(self, sim, cluster):
        # nodes 0 and 2 share rack 0; nic 50 < disk 100.
        f = cluster.net_transfer(cluster.nodes[0], cluster.nodes[2], 500.0)
        sim.run(until=f.done)
        assert sim.now == pytest.approx(10.0)

    def test_cross_rack_transfer_uses_core_link(self, sim, cluster):
        f = cluster.net_transfer(cluster.nodes[0], cluster.nodes[1], 500.0)
        assert cluster.core_link in f.resources
        sim.run(until=f.done)
        assert sim.now == pytest.approx(10.0)  # still nic-bound (core=200)

    def test_core_link_contention_across_racks(self, sim, cluster):
        # 5 concurrent cross-rack transfers share the 200 B/s core link.
        n = cluster.nodes
        pairs = [(n[0], n[1]), (n[2], n[3]), (n[4], n[5]), (n[0], n[3]), (n[2], n[5])]
        flows = [
            cluster.net_transfer(s, d, 400.0, name=f"x{i}", read_src_disk=False)
            for i, (s, d) in enumerate(pairs)
        ]
        done = sim.all_of([f.done for f in flows])
        sim.run(until=done)
        # Ideal fair share of the core is 40 B/s each... but nodes 0 and 2
        # each source two flows over a 50 B/s NIC (25 each); the core then
        # redistributes to the other three flows (up to nic limit 50).
        assert sim.now >= 400.0 / 50.0

    def test_local_transfer_skips_network(self, sim, cluster):
        n0 = cluster.nodes[0]
        f = cluster.net_transfer(n0, n0, 500.0, write_dst_disk=True)
        assert n0.nic_in not in f.resources and n0.nic_out not in f.resources
        sim.run(until=f.done)
        assert sim.now == pytest.approx(5.0)  # disk-bound at 100 B/s

    def test_pure_memory_local_copy(self, sim, cluster):
        n0 = cluster.nodes[0]
        f = cluster.net_transfer(n0, n0, 4.0 * GB, read_src_disk=False)
        sim.run(until=f.done)
        assert sim.now == pytest.approx(1.0)

    def test_compute_is_plain_delay(self, sim, cluster):
        ev = cluster.compute(cluster.nodes[0], 2.5)
        sim.run(until=ev)
        assert sim.now == pytest.approx(2.5)

    def test_compute_negative_rejected(self, cluster):
        with pytest.raises(SimulationError):
            cluster.compute(cluster.nodes[0], -1)


class TestLocalFiles:
    def test_write_read_delete(self, cluster):
        n = cluster.nodes[0]
        n.write_file("mof/1", 10 * MB, kind="mof")
        assert n.has_file("mof/1")
        assert n.read_file("mof/1").size == 10 * MB
        assert n.local_bytes("mof") == 10 * MB
        n.delete_file("mof/1")
        assert not n.has_file("mof/1")

    def test_kind_filter(self, cluster):
        n = cluster.nodes[0]
        n.write_file("a", 5, kind="mof")
        n.write_file("b", 7, kind="spill")
        assert n.local_bytes("mof") == 5
        assert n.local_bytes() == 12


class TestFailures:
    def test_crash_kills_in_flight_transfer(self, sim, cluster):
        src, dst = cluster.nodes[0], cluster.nodes[2]
        f = cluster.net_transfer(src, dst, 1e6)
        caught = []

        def waiter(sim):
            try:
                yield f.done
            except FlowCancelled as exc:
                caught.append((sim.now, exc.reason))

        def killer(sim):
            yield sim.timeout(5.0)
            cluster.crash_node(src)

        sim.process(waiter(sim))
        sim.process(killer(sim))
        sim.run()
        assert caught and caught[0][0] == 5.0

    def test_crash_makes_files_inaccessible(self, cluster):
        n = cluster.nodes[0]
        n.write_file("mof/1", 100, kind="mof")
        cluster.crash_node(n)
        assert not n.has_file("mof/1")
        with pytest.raises(SimulationError):
            n.read_file("mof/1")

    def test_stop_network_keeps_files_but_unreachable(self, sim, cluster):
        n = cluster.nodes[0]
        n.write_file("mof/1", 100, kind="mof")
        cluster.stop_network(n)
        assert n.alive and not n.reachable
        assert n.has_file("mof/1")
        with pytest.raises(SimulationError):
            cluster.net_transfer(n, cluster.nodes[2], 10)
        # Local disk I/O still allowed.
        cluster.disk_read(n, 10)

    def test_failure_listeners_invoked_once(self, cluster):
        seen = []
        cluster.failure_listeners.append(lambda n: seen.append(n.name))
        cluster.crash_node(cluster.nodes[3])
        cluster.crash_node(cluster.nodes[3])
        assert seen == ["node-3"]

    def test_transfer_to_dead_node_rejected(self, cluster):
        cluster.crash_node(cluster.nodes[2])
        with pytest.raises(SimulationError):
            cluster.net_transfer(cluster.nodes[0], cluster.nodes[2], 10)
        with pytest.raises(SimulationError):
            cluster.disk_read(cluster.nodes[2], 10)

    def test_alive_and_reachable_listings(self, cluster):
        cluster.crash_node(cluster.nodes[0])
        cluster.stop_network(cluster.nodes[1])
        assert len(cluster.alive_nodes()) == 5
        assert len(cluster.reachable_nodes()) == 4
