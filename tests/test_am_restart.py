"""AM failure & restart: job-history recovery, container adoption,
attempt exhaustion, and AM crashes composed with data-plane faults."""

import pytest

from repro.faults import (
    AMFault,
    EventTrigger,
    FaultInjector,
    NodeFault,
    PartitionFault,
    kill_am_at_progress,
)
from repro.invariants import check_invariants
from repro.mapreduce.config import JobConf
from repro.sim.core import SimulationError
from repro.yarn import YarnConfig

from tests.conftest import make_runtime, tiny_workload


def run_checked(rt, **kw):
    res = rt.run(**kw)
    violations = check_invariants(rt, res)
    assert violations == [], violations
    return res


def slow_reduce_workload():
    """Reduces slow enough that an AM crash at 50% reduce progress
    lands well after every map has completed."""
    return tiny_workload(reduce_cpu=0.1)


def maps_succeeded_before(trace, kind="am_crashed"):
    """Map task names that completed before the first ``kind`` event."""
    cutoff = trace.first(kind)
    assert cutoff is not None
    return {e.data["task"] for e in trace.of_kind("attempt_success")
            if e.data["task"].startswith("map-") and e.time <= cutoff.time}


def map_starts_after(trace, kind="am_restarted"):
    """Map task names (re)started after the first ``kind`` event."""
    mark = trace.first(kind)
    assert mark is not None
    return {e.data["task"] for e in trace.of_kind("attempt_start")
            if e.data["task"].startswith("map-") and e.time > mark.time}


class TestRecoveryAblation:
    def test_log_recovery_reexecutes_zero_surviving_maps(self):
        """The acceptance claim: crash the AM at 50% reduce progress
        with am_recovery="log" — every completed map whose MOF is still
        on a live node is recovered from the job-history log, and *none*
        of them is re-executed (zero post-restart map attempt_starts)."""
        rt = make_runtime(slow_reduce_workload())
        FaultInjector(kill_am_at_progress(0.5)).install(rt)
        res = run_checked(rt)
        assert res.success
        assert res.counters["am_restarts"] == 1
        done_before = maps_succeeded_before(rt.trace)
        assert done_before  # the crash landed mid-job, not before work
        recovered = {e.data["task"] for e in rt.trace.of_kind("map_recovered")}
        assert recovered == done_before
        assert map_starts_after(rt.trace) == set()

    def test_rerun_all_reexecutes_completed_maps(self):
        """The ablation: same crash, am_recovery="rerun-all" — the new
        AM starts from scratch and re-runs every completed map."""
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(am_recovery="rerun-all"))
        FaultInjector(kill_am_at_progress(0.5)).install(rt)
        res = run_checked(rt)
        assert res.success
        done_before = maps_succeeded_before(rt.trace)
        assert done_before
        assert rt.trace.count("map_recovered") == 0
        assert done_before <= map_starts_after(rt.trace)

    def test_ablation_pair_from_one_trace(self):
        """log strictly dominates rerun-all on re-executed maps — the
        paper's replay-vs-scratch argument, one layer up."""
        def rerun_count(conf):
            rt = make_runtime(slow_reduce_workload(), conf=conf)
            FaultInjector(kill_am_at_progress(0.5)).install(rt)
            res = run_checked(rt)
            assert res.success
            return len(maps_succeeded_before(rt.trace)
                       & map_starts_after(rt.trace))

        assert rerun_count(JobConf(am_recovery="log")) == 0
        assert rerun_count(JobConf(am_recovery="rerun-all")) > 0


class TestKeepContainers:
    def test_adoption_keeps_running_reducers(self):
        """keep_containers=True: in-flight attempts survive the crash
        as orphans and the next incarnation adopts them instead of
        starting over."""
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(keep_containers_across_am_restart=True))
        FaultInjector(kill_am_at_progress(0.5)).install(rt)
        res = run_checked(rt)
        assert res.success
        adopted = rt.trace.of_kind("attempt_adopted")
        assert adopted, "expected at least one adopted attempt"
        adopted_ids = {e.data["attempt"] for e in adopted}
        # An adopted attempt is never also restarted from scratch.
        post = {e.data["attempt"] for e in rt.trace.of_kind("attempt_start")
                if e.time > rt.trace.first("am_restarted").time}
        assert adopted_ids.isdisjoint(post)

    def test_teardown_without_keep_containers(self):
        """keep_containers=False: survivors are torn down with the
        crashed AM; running reduces restart from scratch."""
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(keep_containers_across_am_restart=False))
        FaultInjector(kill_am_at_progress(0.5)).install(rt)
        res = run_checked(rt)
        assert res.success
        assert rt.trace.count("attempt_adopted") == 0
        # Every reduce ran again after the restart.
        mark = rt.trace.first("am_restarted").time
        restarted = {e.data["task"] for e in rt.trace.of_kind("attempt_start")
                     if e.data["type"] == "reduce" and e.time > mark}
        assert len(restarted) == rt.am.num_reduces

    def test_orphan_completion_during_downtime_is_replayed(self):
        """A map that finishes while no AM is alive reports into the
        void; the report is stashed and replayed by the successor —
        counted exactly once, container released (invariants verify)."""
        rt = make_runtime(tiny_workload(map_cpu=0.08),
                          conf=JobConf(keep_containers_across_am_restart=True,
                                       am_restart_delay=10.0))
        FaultInjector(AMFault(at_time=4.0)).install(rt)
        res = run_checked(rt)
        assert res.success
        assert res.counters["completed_maps"] == rt.am.num_maps


class TestComposedFaults:
    def test_node_lost_during_am_downtime(self):
        """A node dies right after the AM and is declared lost while no
        AM is listening: the new incarnation must not recover maps whose
        MOFs went down with the node, and must re-run them."""
        rt = make_runtime(
            slow_reduce_workload(),
            yarn_config=YarnConfig(nm_liveness_timeout=3.0),
            conf=JobConf(am_restart_delay=8.0))
        # A fixed worker index: "reducer" targeting cannot resolve a
        # victim once the crashed AM's attempts have been torn down.
        node_fault = NodeFault(target=1, mode="crash",
                               after=EventTrigger("am_crashed", delay=0.5))
        FaultInjector(kill_am_at_progress(0.5), node_fault).install(rt)
        res = run_checked(rt)
        assert res.success
        # The loss was declared while no AM was alive: nobody logged a
        # node_lost event (the trace is the AM's view of the world).
        assert node_fault.fired_at is not None
        assert rt.trace.first("node_lost") is None
        # Maps recovered + maps re-run covers every pre-crash completion.
        recovered = {e.data["task"] for e in rt.trace.of_kind("map_recovered")}
        rerun = map_starts_after(rt.trace)
        assert maps_succeeded_before(rt.trace) <= (recovered | rerun)

    def test_partition_heals_mid_restart(self):
        """A transient partition straddles the AM downtime window: it
        opens before the crash and heals after the new AM started."""
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(am_restart_delay=6.0))
        FaultInjector(
            AMFault(at_time=20.0),
            PartitionFault(node_indices=(2,), at_time=18.0, duration=12.0),
        ).install(rt)
        res = run_checked(rt)
        assert res.success
        assert res.counters["am_restarts"] == 1

    def test_am_crash_under_lossy_rpc(self):
        """The full stack at once: AM restart over a dropping/delaying
        control plane, deterministically."""
        def run():
            rt = make_runtime(
                slow_reduce_workload(),
                yarn_config=YarnConfig(nm_liveness_timeout=20.0,
                                       rpc_drop_prob=0.1, rpc_delay_prob=0.15,
                                       rpc_seed=23))
            FaultInjector(kill_am_at_progress(0.5)).install(rt)
            res = run_checked(rt)
            assert res.success
            return res.trace.digest()

        assert run() == run()


class TestAttemptExhaustion:
    def test_exhaustion_fails_the_job_cleanly(self):
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(am_max_attempts=2))
        fault = AMFault(at_progress=0.3, repeat=2, repeat_gap=6.0)
        FaultInjector(fault).install(rt)
        res = run_checked(rt)
        assert not res.success
        assert rt.trace.count("am_attempts_exhausted") == 1
        assert len(fault.fired_times) == 2

    def test_higher_budget_survives_the_same_schedule(self):
        rt = make_runtime(slow_reduce_workload(),
                          conf=JobConf(am_max_attempts=3))
        FaultInjector(AMFault(at_progress=0.3, repeat=2,
                              repeat_gap=6.0)).install(rt)
        res = run_checked(rt)
        assert res.success
        assert res.counters["am_restarts"] == 2

    def test_kill_am_on_dead_am_is_refused(self):
        rt = make_runtime(tiny_workload())
        run_checked(rt)
        assert rt.kill_am() is False  # job done: nothing to kill

    def test_am_fault_validation(self):
        with pytest.raises(SimulationError):
            AMFault().install(make_runtime(tiny_workload()))
        with pytest.raises(SimulationError):
            AMFault(at_time=1.0, at_progress=0.5).install(
                make_runtime(tiny_workload()))
        with pytest.raises(SimulationError):
            AMFault(at_time=1.0, repeat=0).install(make_runtime(tiny_workload()))


class TestTeardownGuards:
    def test_vanished_attempt_on_dead_am_is_ignored(self):
        """Regression (teardown race): an attempt vanishing while the
        AM is dead must not arm a task-timeout that would reschedule
        work against a dead job."""
        rt = make_runtime(slow_reduce_workload())
        rt.am.start()
        rt.sim.run(until=2.0)  # first map wave in flight
        am = rt.am
        attempt = next(a for t in am.map_tasks + am.reduce_tasks
                       for a in t.running_attempts())
        # Positive control first: a live AM arms a task-timeout watch
        # (one new event on the heap) ...
        before = len(rt.sim._heap)
        am.on_attempt_vanished(attempt)
        assert len(rt.sim._heap) == before + 1
        # ... a dead one must not.
        am.crash(keep_containers=True)
        before = len(rt.sim._heap)
        am.on_attempt_vanished(attempt)
        assert len(rt.sim._heap) == before

    def test_finish_on_dead_am_is_ignored(self):
        rt = make_runtime(slow_reduce_workload())
        rt.am.start()
        rt.sim.run(until=2.0)
        am = rt.am
        am.crash(keep_containers=True)
        am._finish(success=True)
        assert not am.done.triggered

    def test_crash_is_idempotent(self):
        rt = make_runtime(slow_reduce_workload())
        rt.am.start()
        rt.sim.run(until=2.0)
        rt.am.crash(keep_containers=False)
        rt.am.crash(keep_containers=False)  # no-op, no double teardown
        assert rt.am.dead


class TestChaosIntegration:
    def test_am_fault_pool_is_opt_in(self):
        """Without am_faults the generator pool is unchanged — the
        frozen chaos scenarios keep regenerating byte-identically."""
        from repro.faults.chaos import AM_FAULT_KINDS, generate_trial

        for idx in range(24):
            spec = generate_trial({"seed": 2015, "scale": 0.5}, idx)
            kinds = {f["kind"] for f in spec["faults"]}
            assert not kinds & {"am-crash", "rpc-loss"}
            assert "conf" not in spec
        assert AM_FAULT_KINDS == ("am-crash", "rpc-loss", "am-crash-rpc-loss")

    def test_am_fault_trial_is_deterministic(self):
        from repro.faults.chaos import generate_trial, run_trial_spec

        campaign = {"seed": 11, "scale": 0.4, "am_faults": True}
        spec = generate_trial(campaign, 8)
        assert any(f["kind"] in ("am-crash", "rpc-loss")
                   for f in spec["faults"])
        a = run_trial_spec(spec)
        b = run_trial_spec(spec)
        assert a["violations"] == [] and b["violations"] == []
        assert a["digest"] == b["digest"]
