"""Unit and property tests for the max-min fair flow scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.core import SimulationError
from repro.sim.flows import FlowCancelled, FlowScheduler, LinkResource


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def fs(sim):
    return FlowScheduler(sim)


def finish_times(sim, flows):
    """Run the sim to completion and return {flow: completion_time}."""
    times = {}
    for f in flows:
        f.done._add_callback(lambda e, f=f: times.__setitem__(f.name, sim.now))
    sim.run()
    return times


class TestSingleFlow:
    def test_lone_flow_gets_full_capacity(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(1000.0, [disk], "f")
        t = finish_times(sim, [f])
        assert t["f"] == pytest.approx(10.0)

    def test_bottleneck_is_slowest_resource(self, sim, fs):
        fast = LinkResource("fast", 1000.0)
        slow = LinkResource("slow", 10.0)
        f = fs.transfer(100.0, [fast, slow], "f")
        t = finish_times(sim, [f])
        assert t["f"] == pytest.approx(10.0)

    def test_rate_cap_limits_lone_flow(self, sim, fs):
        disk = LinkResource("disk", 1000.0)
        f = fs.transfer(100.0, [disk], "f", rate_cap=10.0)
        t = finish_times(sim, [f])
        assert t["f"] == pytest.approx(10.0)

    def test_zero_size_completes_immediately(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(0.0, [disk], "f")
        assert f.done.triggered
        assert f.progress == 1.0

    def test_negative_size_rejected(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        with pytest.raises(SimulationError):
            fs.transfer(-1.0, [disk])

    def test_flow_needs_resources_or_cap(self, sim, fs):
        with pytest.raises(SimulationError):
            fs.transfer(10.0, [])


class TestSharing:
    def test_equal_sharing_two_flows(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f1 = fs.transfer(500.0, [disk], "f1")
        f2 = fs.transfer(500.0, [disk], "f2")
        t = finish_times(sim, [f1, f2])
        assert t["f1"] == pytest.approx(10.0)
        assert t["f2"] == pytest.approx(10.0)

    def test_departure_releases_bandwidth(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f1 = fs.transfer(100.0, [disk], "f1")  # shares 50 until f2 done
        f2 = fs.transfer(100.0, [disk], "f2")
        t = finish_times(sim, [f1, f2])
        # Both at 50 B/s until t=2 when both finish simultaneously.
        assert t["f1"] == pytest.approx(2.0)
        assert t["f2"] == pytest.approx(2.0)

    def test_late_arrival_slows_existing_flow(self, sim):
        sim = Simulator()
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        times = {}

        def starter(sim):
            f1 = fs.transfer(150.0, [disk], "f1")
            f1.done._add_callback(lambda e: times.__setitem__("f1", sim.now))
            yield sim.timeout(1.0)  # f1 has moved 100 bytes
            f2 = fs.transfer(100.0, [disk], "f2")
            f2.done._add_callback(lambda e: times.__setitem__("f2", sim.now))

        sim.process(starter(sim))
        sim.run()
        # After t=1: f1 has 50 left, f2 has 100; both at 50 B/s.
        # f1 finishes at t=2; f2 then gets 100 B/s, 50 bytes left -> t=2.5.
        assert times["f1"] == pytest.approx(2.0)
        assert times["f2"] == pytest.approx(2.5)

    def test_maxmin_redistributes_capped_flow_share(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        nic = LinkResource("nic", 30.0)
        f1 = fs.transfer(30.0, [disk, nic], "f1")  # nic-bound at 30
        f2 = fs.transfer(70.0, [disk], "f2")  # gets disk residual 70
        assert f1.rate == pytest.approx(30.0)
        assert f2.rate == pytest.approx(70.0)
        t = finish_times(sim, [f1, f2])
        assert t["f1"] == pytest.approx(1.0)
        assert t["f2"] == pytest.approx(1.0)

    def test_progress_tracking(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(1000.0, [disk], "f")
        sim.run(until=5.0)
        fs._advance()
        assert f.transferred == pytest.approx(500.0)
        assert f.progress == pytest.approx(0.5)


class TestCapacityChange:
    def test_slower_capacity_mid_flight(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(200.0, [disk], "f")

        def throttle(sim):
            yield sim.timeout(1.0)  # 100 bytes moved
            disk.set_capacity(50.0)

        sim.process(throttle(sim))
        t = finish_times(sim, [f])
        assert t["f"] == pytest.approx(3.0)  # 1s at 100 + 2s at 50

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            LinkResource("bad", 0.0)
        r = LinkResource("ok", 1.0)
        with pytest.raises(SimulationError):
            r.set_capacity(-5.0)


class TestCancellation:
    def test_cancel_fails_done_event(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(1000.0, [disk], "f")
        caught = []

        def waiter(sim):
            try:
                yield f.done
            except FlowCancelled as exc:
                caught.append((sim.now, exc.flow.name))

        def canceller(sim):
            yield sim.timeout(2.0)
            fs.cancel(f, "node died")

        sim.process(waiter(sim))
        sim.process(canceller(sim))
        sim.run()
        assert caught == [(2.0, "f")]

    def test_cancel_releases_bandwidth(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f1 = fs.transfer(1000.0, [disk], "f1")
        f2 = fs.transfer(150.0, [disk], "f2")
        f1.done.defuse()

        def canceller(sim):
            yield sim.timeout(1.0)  # f2 at 50 B/s has 100 left
            fs.cancel(f1)

        times = {}
        f2.done._add_callback(lambda e: times.__setitem__("f2", sim.now))
        sim.process(canceller(sim))
        sim.run()
        assert times["f2"] == pytest.approx(2.0)  # 100 bytes at full 100 B/s

    def test_cancel_flows_using_resource(self, sim, fs):
        d1 = LinkResource("d1", 100.0)
        d2 = LinkResource("d2", 100.0)
        f1 = fs.transfer(1000.0, [d1], "f1")
        f2 = fs.transfer(1000.0, [d2], "f2")
        f1.done.defuse()
        victims = fs.cancel_flows_using(d1, "crash")
        assert [v.name for v in victims] == ["f1"]
        assert not f1._active and f2._active

    def test_double_cancel_is_noop(self, sim, fs):
        disk = LinkResource("disk", 100.0)
        f = fs.transfer(10.0, [disk], "f")
        f.done.defuse()
        fs.cancel(f)
        fs.cancel(f)  # no error


class TestMaxMinProperties:
    """Property-based checks of the progressive-filling allocation."""

    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=1, max_size=5),
        routes=st.lists(
            st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_feasible_and_maxmin(self, caps, routes):
        sim = Simulator()
        fs = FlowScheduler(sim)
        resources = [LinkResource(f"r{i}", c) for i, c in enumerate(caps)]
        flows = []
        for j, route in enumerate(routes):
            res = [resources[i % len(resources)] for i in route]
            # De-duplicate: a flow crossing the same device twice is modelled
            # once (fluid approximation).
            uniq = list(dict.fromkeys(res))
            f = fs.transfer(1e9, uniq, f"f{j}")
            f.done.defuse()
            flows.append(f)

        # Feasibility: per-resource load never exceeds capacity.
        for r in resources:
            load = sum(f.rate for f in flows if r in f.resources)
            assert load <= r.capacity * (1 + 1e-9)

        # Every flow has positive rate (no starvation).
        for f in flows:
            assert f.rate > 0

        # Max-min characterisation: each flow crosses at least one
        # saturated resource on which it has a maximal rate.
        for f in flows:
            ok = False
            for r in f.resources:
                users = [g for g in flows if r in g.resources]
                load = sum(g.rate for g in users)
                saturated = load >= r.capacity * (1 - 1e-6)
                is_max = all(f.rate >= g.rate * (1 - 1e-6) for g in users)
                if saturated and is_max:
                    ok = True
                    break
            assert ok, f"flow {f.name} is not bottlenecked anywhere"

    @given(
        sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
        cap=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_conservation_single_resource(self, sizes, cap):
        """All bytes are delivered, and total time equals work/capacity
        when flows share one resource from t=0 (work conservation)."""
        sim = Simulator()
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", cap)
        flows = [fs.transfer(s, [disk], f"f{i}") for i, s in enumerate(sizes)]
        last = {}
        for f in flows:
            f.done._add_callback(lambda e, f=f: last.__setitem__(f.name, sim.now))
        sim.run()
        assert len(last) == len(flows)
        expected_total = sum(sizes) / cap
        assert max(last.values()) == pytest.approx(expected_total, rel=1e-6)
        for f in flows:
            assert f.remaining == 0.0

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_completion_order_matches_size_order(self, data):
        """Equal-share flows over one resource finish in size order."""
        sim = Simulator()
        fs = FlowScheduler(sim)
        disk = LinkResource("disk", 100.0)
        sizes = data.draw(
            st.lists(
                st.floats(min_value=1.0, max_value=1e5),
                min_size=2,
                max_size=6,
                unique=True,
            )
        )
        # Epsilon-close sizes legitimately complete in the same event
        # batch; require a real gap for a meaningful ordering check.
        gaps = sorted(sizes)
        if any(b - a < 1e-5 * b for a, b in zip(gaps, gaps[1:])):
            return
        flows = [fs.transfer(s, [disk], f"f{i}") for i, s in enumerate(sizes)]
        order = []
        for f in flows:
            f.done._add_callback(lambda e, f=f: order.append(f.size))
        sim.run()
        assert order == sorted(sizes)
