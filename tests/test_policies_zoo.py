"""Per-policy tests for the zoo (binocular / atlas / quantile / m3r)
plus migration parity for the five seed systems.

The parity class pins the registry migration: building a seed policy
through the registry must yield exactly the object the pre-registry
hand-wired construction built (same class, same config values) — the
golden corpus then guarantees same *behaviour*, since those 23 digests
were frozen before the registry existed.
"""

from collections import deque

import pytest

from repro.alm import ALGConfig, ALMConfig, ALMPolicy
from repro.baselines.iss import ISSPolicy
from repro.faults import (
    TaskFault,
    kill_node_at_progress,
    kill_reduce_at_progress,
)
from repro.hdfs.hdfs import ReplicationLevel
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.policies import make_policy
from repro.policies.atlas import AtlasPolicy
from repro.policies.binocular import BinocularPolicy
from repro.policies.m3r import M3RPolicy, M3RReduceAttempt
from repro.policies.quantile import (
    QuantilePolicy,
    QuantileSpeculator,
    quantile,
    tukey_fence,
)
from repro.sim.core import SimulationError
from repro.yarn.rm import YarnConfig

from tests.conftest import make_runtime, tiny_workload


class TestMigrationParity:
    """Registry construction == the old hand-wired construction."""

    def test_yarn(self):
        pol = make_policy("yarn")
        assert type(pol) is YarnRecoveryPolicy

    def test_alg(self):
        pol = make_policy("alg", alg_frequency=7.5,
                          alg_level=ReplicationLevel.NODE)
        ref = ALMPolicy(ALMConfig(enable_alg=True, enable_sfm=False,
                                  alg=ALGConfig(frequency=7.5,
                                                level=ReplicationLevel.NODE)))
        assert type(pol) is type(ref)
        assert pol.config == ref.config

    def test_sfm(self):
        pol = make_policy("sfm", fcm_cap=6)
        ref = ALMPolicy(ALMConfig(enable_alg=False, enable_sfm=True,
                                  fcm_cap=6))
        assert pol.config == ref.config

    def test_alm(self):
        pol = make_policy("alm")
        ref = ALMPolicy(ALMConfig(alg=ALGConfig(), fcm_cap=10))
        assert pol.config == ref.config
        assert pol.config.enable_alg and pol.config.enable_sfm

    def test_iss(self):
        assert type(make_policy("iss")) is ISSPolicy

    def test_irrelevant_knobs_ignored(self):
        """The shared kwargs namespace never leaks into a factory that
        doesn't declare the knob (the historical contract)."""
        assert type(make_policy("yarn", fcm_cap=3)) is YarnRecoveryPolicy
        assert type(make_policy("iss", alg_frequency=1.0)) is ISSPolicy


class TestBinocular:
    def _reduce_fail_run(self):
        rt = make_runtime(tiny_workload(reducers=2, input_mb=1024),
                          policy=BinocularPolicy())
        kill_reduce_at_progress(0.4).install(rt)
        return rt, rt.run()

    def test_dual_attempts_on_reduce_failure(self):
        rt, res = self._reduce_fail_run()
        assert res.success
        assert rt.trace.count("binocular_dual") >= 1
        # The failed reduce got (at least) two recovery attempts: the
        # anchor relaunch plus the migrated speculative eye.
        failed = [t for t in rt.am.reduce_tasks
                  if any(a.state.name == "FAILED" for a in t.attempts)]
        assert failed and len(failed[0].attempts) >= 3

    def test_eyes_share_recovery_state(self):
        rt, res = self._reduce_fail_run()
        failed = next(t for t in rt.am.reduce_tasks
                      if any(a.state.name == "FAILED" for a in t.attempts))
        dead = next(a for a in failed.attempts if a.state.name == "FAILED")
        recoveries = [a.recovery for a in failed.attempts
                      if a is not dead and a.recovery is not None]
        assert len(recoveries) >= 2
        # Same shared snapshot object handed to both eyes.
        assert recoveries[0] is recoveries[1]
        assert recoveries[0].fetched_map_ids == set(dead.fetched)

    def test_anchor_eye_adopts_local_state(self):
        rt, res = self._reduce_fail_run()
        failed = next(t for t in rt.am.reduce_tasks
                      if any(a.state.name == "FAILED" for a in t.attempts))
        dead = next(a for a in failed.attempts if a.state.name == "FAILED")
        adopted = [a for a in failed.attempts
                   if a is not dead and a.node is dead.node
                   and a.fetched >= set(dead.fetched)]
        # The transient failure left the node healthy: the same-node eye
        # re-adopted the dead attempt's shuffle progress.
        if dead.fetched and dead.disk_segments:
            assert adopted

    def test_node_loss_dual_fresh(self):
        rt = make_runtime(tiny_workload(reducers=2, input_mb=1024),
                          policy=BinocularPolicy())
        kill_node_at_progress(0.4, target="reducer").install(rt)
        res = rt.run()
        assert res.success
        assert rt.trace.count("binocular_dual") >= 1

    def test_not_worse_than_yarn_on_node_crash(self):
        def crashed(policy):
            rt = make_runtime(tiny_workload(reducers=2, input_mb=1024),
                              policy=policy)
            kill_node_at_progress(0.3, target="reducer").install(rt)
            return rt.run()

        t_yarn = crashed(YarnRecoveryPolicy()).elapsed
        t_bino = crashed(BinocularPolicy()).elapsed
        assert t_bino <= t_yarn * 1.02


class TestAtlas:
    def test_failure_score_math(self):
        pol = AtlasPolicy(window=4, min_observations=3, failure_threshold=0.5)

        class _Node:
            node_id = 5

        class _Attempt:
            node = _Node()

        assert pol.failure_score(5) == 0.0  # no history: innocent
        pol.on_attempt_outcome(_Attempt(), ok=False)
        pol.on_attempt_outcome(_Attempt(), ok=False)
        assert pol.failure_score(5) == 0.0  # below min_observations
        pol.on_attempt_outcome(_Attempt(), ok=True)
        assert pol.failure_score(5) == pytest.approx(2 / 3)
        # The window slides: a fourth and fifth outcome evict the oldest.
        pol.on_attempt_outcome(_Attempt(), ok=True)
        pol.on_attempt_outcome(_Attempt(), ok=True)
        assert pol.failure_score(5) == pytest.approx(1 / 4)

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            AtlasPolicy(window=0)
        with pytest.raises(SimulationError):
            AtlasPolicy(failure_threshold=1.5)

    def test_steers_away_after_induced_failures(self):
        # A tight window so a single OOM marks its node risky, making
        # the recovery placement's steer deterministic.
        rt = make_runtime(tiny_workload(reducers=2, input_mb=1024),
                          policy=AtlasPolicy(window=2, min_observations=1,
                                             failure_threshold=0.5))
        TaskFault(task_index=0, at_progress=0.3, repeat=3).install(rt)
        res = rt.run()
        assert res.success
        assert rt.trace.count("atlas_steer") >= 1

    def test_never_vetoes_whole_cluster(self):
        pol = AtlasPolicy(min_observations=1, failure_threshold=0.1)
        rt = make_runtime(tiny_workload(reducers=2), policy=pol)
        # Poison every node's history before the run.
        for node in rt.cluster.nodes:
            history = pol.node_outcomes.setdefault(
                node.node_id, deque(maxlen=pol.window))
            history.append(False)
        res = rt.run()
        assert res.success  # the all-risky guard kept the job schedulable

    def test_rejoin_amnesty(self):
        pol = AtlasPolicy(min_observations=1)
        rt = make_runtime(tiny_workload(), policy=pol)
        node = rt.cluster.nodes[3]
        pol.node_outcomes.setdefault(
            3, deque(maxlen=pol.window)).append(False)
        assert pol.failure_score(3) == 1.0
        pol.on_node_rejoined(node)
        assert pol.failure_score(3) == 0.0


class TestQuantile:
    def test_quantile_hand_computed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == pytest.approx(2.5)
        assert quantile(values, 0.25) == pytest.approx(1.75)
        assert quantile(values, 0.75) == pytest.approx(3.25)
        assert quantile([7.0], 0.5) == 7.0
        with pytest.raises(SimulationError):
            quantile([], 0.5)
        with pytest.raises(SimulationError):
            quantile([1.0], 2.0)

    def test_tukey_fence_hand_computed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # q1=1.75, q3=3.25, iqr=1.5 -> fence = 3.25 + 1.5*1.5 = 5.5
        assert tukey_fence(values) == pytest.approx(5.5)
        assert tukey_fence(values, k=3.0) == pytest.approx(7.75)

    def test_fence_robust_to_one_outlier(self):
        """The point of the quantile model: one exploding estimate must
        not drag the cutoff up with it, unlike a mean-based threshold."""
        tight = [10.0, 11.0, 12.0, 13.0]
        with_outlier = tight + [500.0]
        assert tukey_fence(with_outlier) < 30.0

    def test_cutoff_below_min_samples_is_none(self):
        spec = QuantileSpeculator(am=None, min_samples=4)
        assert spec._cutoff([], []) is None
        assert spec._cutoff([(10.0, None), (11.0, None)], [9.0]) is None

    def test_cutoff_prefers_completed(self):
        spec = QuantileSpeculator(am=None, min_samples=4)
        completed = [10.0, 11.0, 12.0, 13.0]
        cutoff, benchmark = spec._cutoff([(99.0, None)], completed)
        assert cutoff == pytest.approx(tukey_fence(completed))
        assert benchmark == pytest.approx(11.5)

    def test_policy_swaps_in_speculator(self):
        rt = make_runtime(tiny_workload(),
                          policy=QuantilePolicy(min_samples=3, fence_k=2.0),
                          speculation=True)
        assert isinstance(rt.speculator, QuantileSpeculator)
        assert rt.speculator.min_samples == 3
        assert rt.speculator.fence_k == 2.0
        assert rt.run().success

    def test_min_samples_validated(self):
        with pytest.raises(SimulationError):
            QuantileSpeculator(am=None, min_samples=1)


class TestM3R:
    def test_reduce_attempts_never_spill(self):
        rt = make_runtime(tiny_workload(reducers=2, input_mb=2048),
                          policy=M3RPolicy())
        res = rt.run()
        assert res.success
        for task in rt.am.reduce_tasks:
            for attempt in task.attempts:
                assert isinstance(attempt, M3RReduceAttempt)
                assert attempt.disk_segments == []

    def test_fault_free_no_slower_than_yarn(self):
        wl = lambda: tiny_workload(reducers=2, input_mb=2048)
        t_yarn = make_runtime(wl()).run().elapsed
        t_m3r = make_runtime(wl(), policy=M3RPolicy()).run().elapsed
        assert t_m3r <= t_yarn

    def test_eager_regeneration_on_node_loss(self):
        # Short liveness so the RM declares the node lost while the job
        # is still shuffling (before fetch-failure reports would have
        # re-run the doomed maps the stock way).
        rt = make_runtime(tiny_workload(reducers=2, input_mb=2048),
                          policy=M3RPolicy(),
                          yarn_config=YarnConfig(nm_liveness_timeout=5.0))
        kill_node_at_progress(0.3, target="map-only").install(rt)
        res = rt.run()
        assert res.success
        assert rt.trace.count("m3r_regenerate") == 1
        # Every completed map on the dead node was re-run eagerly,
        # without waiting for per-reducer fetch-failure reports.
        assert res.counters.get("map_reruns", 0) >= 1

    def test_recovery_tradeoff_vs_yarn(self):
        """M3R discovers the loss instantly but re-runs more maps than
        stock YARN needs to (the in-memory recovery-cost trade)."""
        def crashed(policy):
            rt = make_runtime(tiny_workload(reducers=2, input_mb=2048),
                              policy=policy,
                              yarn_config=YarnConfig(nm_liveness_timeout=5.0))
            kill_node_at_progress(0.3, target="map-only").install(rt)
            return rt, rt.run()

        _, yarn_res = crashed(YarnRecoveryPolicy())
        m3r_rt, m3r_res = crashed(M3RPolicy())
        assert m3r_res.success
        assert (m3r_res.counters.get("map_reruns", 0)
                >= yarn_res.counters.get("map_reruns", 0))
