"""Tests for the command-line interface."""

import argparse
import json

import pytest

from repro.cli import main, parse_fault
from repro.faults import NodeFault, SlowNodeFault, TaskFault
from repro.faults.inject import MapWaveFault
from repro.mapreduce.tasks import TaskType


class TestParseFault:
    def test_reduce_spec(self):
        f = parse_fault("reduce@0.5")
        assert isinstance(f, TaskFault)
        assert f.task_type is TaskType.REDUCE
        assert f.at_progress == 0.5

    def test_map_spec_with_index(self):
        f = parse_fault("map@0.3:7")
        assert f.task_type is TaskType.MAP
        assert f.task_index == 7

    def test_node_specs(self):
        f = parse_fault("node@0.4:map-only")
        assert isinstance(f, NodeFault)
        assert f.at_progress == 0.4
        assert f.target == "map-only"
        f2 = parse_fault("nodetime@30:2")
        assert f2.at_time == 30 and f2.target == 2

    def test_maps_spec(self):
        f = parse_fault("maps@10:50")
        assert isinstance(f, MapWaveFault)
        assert f.count == 50 and f.at_time == 10

    def test_slow_spec(self):
        f = parse_fault("slow@5:1:0.25")
        assert isinstance(f, SlowNodeFault)
        assert f.disk_factor == 0.25

    def test_bad_specs_rejected(self):
        for bad in ("meteor@1", "reduce", "node@x", "maps@1"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_fault(bad)


class TestRunCommand:
    def test_run_small_job(self, capsys):
        rc = main(["run", "wordcount", "--size-gb", "1", "--nodes", "6",
                   "--policy", "alm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out
        assert "committed_reduces" in out

    def test_run_with_fault_and_report(self, capsys):
        rc = main(["run", "wordcount", "--size-gb", "1", "--nodes", "6",
                   "--fault", "reduce@0.8", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failure timeline" in out
        assert "fault_injected" in out

    def test_run_export_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        rc = main(["run", "wordcount", "--size-gb", "1", "--nodes", "6",
                   "--export", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["summary"]["success"] is True

    def test_run_iss_policy(self, capsys):
        rc = main(["run", "wordcount", "--size-gb", "1", "--nodes", "6",
                   "--policy", "iss"])
        assert rc == 0

    def test_run_reducers_override(self, capsys):
        rc = main(["run", "terasort", "--size-gb", "2", "--nodes", "6",
                   "--reducers", "3"])
        assert rc == 0


class TestOtherCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "terasort" in out and "alm" in out and "fig08" in out

    def test_experiment_fig03_small(self, capsys):
        assert main(["experiment", "fig03", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "crash=" in out

    def test_experiment_table2_small(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
