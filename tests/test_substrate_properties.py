"""Property-based tests for the HDFS and YARN substrates."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.cluster.node import MB
from repro.hdfs import Hdfs, HdfsConfig, ReplicationLevel
from repro.sim import Simulator
from repro.yarn.rm import ResourceManager, YarnConfig

# Hypothesis suites drive whole simulations per example: tier-2.
pytestmark = pytest.mark.slow

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_env(num_nodes, num_racks, seed, block_mb=64, replication=2):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(
        num_nodes=num_nodes, num_racks=num_racks,
        node=NodeSpec(memory_mb=8192), seed=seed))
    hdfs = Hdfs(sim, cluster, HdfsConfig(block_size=block_mb * MB,
                                         replication=replication))
    return sim, cluster, hdfs


class TestHdfsPlacementProperties:
    @given(
        num_nodes=st.integers(min_value=4, max_value=16),
        num_racks=st.integers(min_value=2, max_value=4),
        size_mb=st.floats(min_value=1.0, max_value=2048.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(**_SETTINGS)
    def test_ingest_invariants(self, num_nodes, num_racks, size_mb, seed):
        if num_racks > num_nodes:
            return
        _, cluster, hdfs = build_env(num_nodes, num_racks, seed)
        f = hdfs.ingest("data", size_mb * MB)
        # Sizes sum exactly; every block within block_size.
        assert sum(b.size for b in f.blocks) == pytest.approx(size_mb * MB)
        for b in f.blocks:
            assert 0 < b.size <= hdfs.config.block_size
            # Replicas distinct and (given >=2 racks) spread across racks.
            assert len({n.node_id for n in b.replicas}) == len(b.replicas)
            if len(b.replicas) >= 2:
                assert len({n.rack.rack_id for n in b.replicas}) >= 2

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        level=st.sampled_from(list(ReplicationLevel)),
        replication=st.integers(min_value=1, max_value=3),
    )
    @settings(**_SETTINGS)
    def test_choose_replicas_respects_level(self, seed, level, replication):
        _, cluster, hdfs = build_env(9, 3, seed)
        writer = cluster.nodes[0]
        chosen = hdfs._choose_replicas(writer, replication, level)
        assert chosen[0] is writer
        assert len({n.node_id for n in chosen}) == len(chosen)
        if level is ReplicationLevel.NODE:
            assert chosen == [writer]
        elif level is ReplicationLevel.RACK:
            assert all(n.rack is writer.rack for n in chosen)
        elif replication >= 2:
            assert chosen[1].rack is not writer.rack

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(**_SETTINGS)
    def test_crash_only_loses_that_nodes_replicas(self, seed):
        _, cluster, hdfs = build_env(8, 2, seed)
        f = hdfs.ingest("data", 512 * MB)
        victim = cluster.nodes[int(seed) % 8]
        before = {b.block_id: (len(b.replicas), victim in b.replicas)
                  for b in f.blocks}
        cluster.crash_node(victim)
        for b in f.blocks:
            count, had_victim = before[b.block_id]
            assert len(b.replicas) == count - (1 if had_victim else 0)
            assert victim not in b.replicas


class TestYarnSchedulerProperties:
    @given(
        requests=st.lists(
            st.tuples(st.integers(min_value=512, max_value=6144),
                      st.floats(min_value=0, max_value=20)),
            min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(**_SETTINGS)
    def test_capacity_never_exceeded(self, requests, seed):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4, num_racks=2,
                                           node=NodeSpec(memory_mb=8192), seed=seed))
        rm = ResourceManager(sim, cluster, YarnConfig(nm_memory_fraction=1.0))
        grants = [rm.request_container(mem, priority=prio)
                  for mem, prio in requests]
        sim.run(until=100.0)
        for nm in rm.node_managers.values():
            assert 0 <= nm.used_mb <= nm.capacity_mb

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(**_SETTINGS)
    def test_release_restores_full_capacity(self, seed):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=3, num_racks=3,
                                           node=NodeSpec(memory_mb=8192), seed=seed))
        rm = ResourceManager(sim, cluster, YarnConfig(nm_memory_fraction=1.0))
        total = rm.available_mb()
        grants = [rm.request_container(2048) for _ in range(6)]
        containers = []

        def collect(sim):
            for g in grants:
                containers.append((yield g))

        sim.process(collect(sim))
        sim.run(until=50.0)
        for c in containers:
            rm.release_container(c)
        assert rm.available_mb() == total
