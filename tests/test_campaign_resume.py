"""Crash/resume durability: SIGKILL a campaign mid-run in a subprocess,
resume it, and prove the result is bit-identical to an uninterrupted
run with zero re-executed trials — the harness-level version of the
paper's no-restart-from-scratch recovery contract."""

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.campaign import CampaignStore
from repro.faults.chaos import run_campaign

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spawn_campaign(store: Path, seed: int, trials: int, scale: float):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_JOBS", None)  # serial child: finest checkpoint granularity
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "submit",
         "--store", str(store), "--seed", str(seed),
         "--trials", str(trials), "--scale", str(scale)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _trials_done(store: Path) -> int:
    try:
        conn = sqlite3.connect(store, timeout=5.0)
        try:
            return conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
        finally:
            conn.close()
    except sqlite3.Error:
        return 0


def _kill_at(proc, store: Path, threshold: int, deadline: float = 120.0) -> int:
    """SIGKILL ``proc`` once the store holds >= threshold trials;
    returns the observed count at the kill."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        done = _trials_done(store)
        if done >= threshold:
            proc.kill()
            proc.wait()
            return done
        if proc.poll() is not None:
            return _trials_done(store)
        time.sleep(0.02)
    proc.kill()
    proc.wait()
    raise AssertionError(f"campaign never reached {threshold} trials")


def _kill_resume_roundtrip(tmp_path, seed: int, trials: int, scale: float,
                           threshold: int) -> None:
    store_path = tmp_path / "campaign.db"
    proc = _spawn_campaign(store_path, seed, trials, scale)
    done_at_kill = _kill_at(proc, store_path, threshold)
    if done_at_kill >= trials:
        pytest.skip("campaign finished before the kill landed")
    assert 0 < done_at_kill < trials

    resumed = run_campaign(seed=seed, trials=trials, scale=scale,
                           out_dir=None, minimize=False,
                           echo=lambda *_: None, store=store_path)
    # Exactly the missing trials ran; nothing was re-executed. (The
    # store may have gained a few more rows between the count read and
    # the SIGKILL landing — run_count is the authoritative check.)
    assert resumed["skipped"] >= done_at_kill
    assert resumed["executed"] == trials - resumed["skipped"]
    with CampaignStore(store_path) as store:
        assert store.max_run_count(resumed["campaign_id"]) == 1
        assert store.campaign(resumed["campaign_id"])["status"] == "complete"

    fresh = run_campaign(seed=seed, trials=trials, scale=scale,
                         out_dir=None, minimize=False, echo=lambda *_: None)
    assert resumed["digests"] == fresh["digests"]
    assert len(resumed["digests"]) == trials


class TestKillResume:
    def test_sigkill_mid_campaign_resumes_bit_identical(self, tmp_path):
        _kill_resume_roundtrip(tmp_path, seed=11, trials=60, scale=0.25,
                               threshold=8)

    @pytest.mark.slow
    def test_1000_trial_campaign_sigkill_resume(self, tmp_path):
        """The acceptance-criteria scale: a 1000-trial chaos campaign
        killed around the midpoint resumes losing nothing."""
        _kill_resume_roundtrip(tmp_path, seed=7, trials=1000, scale=0.25,
                               threshold=500)


class TestTornStore:
    def test_corrupt_store_quarantined_and_rebuilt(self, tmp_path):
        """A store file torn beyond sqlite's own crash-safety (disk
        fault, truncation, an errant writer) is quarantined and the
        campaign re-runs from scratch — degraded, never wedged."""
        db = tmp_path / "c.db"
        kw = dict(seed=7, trials=4, scale=0.25, out_dir=None, minimize=False,
                  echo=lambda *_: None)
        first = run_campaign(store=db, **kw)
        db.write_bytes(b"\x00garbage" * 4096)  # tear the whole file
        for suffix in ("-wal", "-shm"):
            Path(str(db) + suffix).unlink(missing_ok=True)

        resumed = run_campaign(store=db, **kw)
        assert resumed["executed"] == 4  # nothing salvageable: full re-run
        assert resumed["digests"] == first["digests"]
        assert list(tmp_path.glob("c.db.corrupt-*"))  # original preserved

    def test_sigkill_never_corrupts_the_store(self, tmp_path):
        """The WAL store after a SIGKILL opens clean — no quarantine,
        all recorded rows intact and parseable."""
        store_path = tmp_path / "campaign.db"
        proc = _spawn_campaign(store_path, seed=3, trials=60, scale=0.25)
        done = _kill_at(proc, store_path, threshold=5)
        with CampaignStore(store_path) as store:
            assert store.quarantined is None
            [row] = store.campaigns()
            payloads = dict(store.payloads(row["campaign_id"]))
            assert len(payloads) >= min(done, 5)
            for payload in payloads.values():
                assert "digest" in payload and "spec" in payload


class TestCampaignCLI:
    def test_resume_status_export_flow(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "c.db")
        assert main(["campaign", "submit", "--store", db, "--seed", "7",
                     "--trials", "3", "--scale", "0.25"]) == 0
        assert main(["campaign", "status", "--store", db]) == 0
        out = capsys.readouterr().out
        assert "3/3 trials" in out and "complete" in out
        # Nothing incomplete: resume refuses politely.
        assert main(["campaign", "resume", "--store", db]) == 1
        export = tmp_path / "export.json"
        assert main(["campaign", "export", "--store", db,
                     "--out", str(export)]) == 0
        import json

        doc = json.loads(export.read_text())
        assert doc["counts"]["done"] == 3
        assert len(doc["trials"]) == 3
        assert doc["summary"]["violations"] == 0
