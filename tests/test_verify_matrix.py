"""The differential matrix runner and its event-stream diff helper."""

import json

import pytest

from repro.metrics.trace import TraceEvent, first_divergence
from repro.verify import (
    COMBOS,
    DivergenceError,
    check_golden,
    refresh_golden,
    run_matrix,
    run_matrix_trial,
)


def _quiet(*_args, **_kw):
    pass


class TestFirstDivergence:
    def test_identical_streams(self):
        a = [{"time": float(i), "kind": "tick", "n": i} for i in range(100)]
        assert first_divergence(a, list(a)) is None

    def test_empty_streams(self):
        assert first_divergence([], []) is None
        assert first_divergence([], [{"kind": "x"}]) == 0

    def test_single_mid_stream_divergence(self):
        a = [{"time": float(i), "kind": "tick", "n": i} for i in range(1000)]
        b = [dict(r) for r in a]
        b[617]["n"] = -1
        assert first_divergence(a, b) == 617

    def test_first_divergence_wins_over_later_rematch(self):
        # Streams re-converge after index 3 — the *first* divergence
        # must be reported, not the later one.
        a = [{"k": v} for v in (1, 2, 3, 9, 5, 6, 7)]
        b = [{"k": v} for v in (1, 2, 3, 4, 5, 6, 8)]
        assert first_divergence(a, b) == 3

    def test_prefix_stream(self):
        a = [{"n": i} for i in range(10)]
        assert first_divergence(a, a[:7]) == 7
        assert first_divergence(a[:7], a) == 7

    def test_accepts_trace_events(self):
        a = [TraceEvent(0.0, "x", {"i": 0}), TraceEvent(1.0, "y", {"i": 1})]
        b = [TraceEvent(0.0, "x", {"i": 0}), TraceEvent(1.0, "y", {"i": 2})]
        assert first_divergence(a, b) == 1
        assert first_divergence(a, list(a)) is None


class TestMatrixTrial:
    def test_combo_selected_inside_trial(self, monkeypatch):
        """The implementation pair is chosen inside the trial (so it
        holds in worker processes) and restored afterwards."""
        import os

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        jobs = (("clean-terasort-yarn", "reference", "reference", ""),)
        payload = run_matrix_trial(0, jobs)
        assert payload["combo"] == ("reference", "reference")
        assert "REPRO_KERNEL" not in os.environ
        assert payload["invariant_violations"] == []

    def test_single_scenario_full_matrix_identical(self):
        report = run_matrix(names=["oom-reduce-yarn"], echo=_quiet)
        assert report["runs"] == len(COMBOS)
        assert len(report["digests"]) == 1


class TestSeededDivergence:
    """An intentionally-seeded divergence (test-only fault) must be
    reported with the scenario name, seed, and first diverging event."""

    def test_divergence_names_scenario_seed_and_event(self):
        with pytest.raises(DivergenceError) as excinfo:
            run_matrix(
                names=["oom-reduce-yarn"],
                mutations={("oom-reduce-yarn", "reference", "default"):
                           "append-event"},
                echo=_quiet,
            )
        divergence = excinfo.value.divergence
        assert divergence.scenario == "oom-reduce-yarn"
        assert divergence.seed == 11
        assert divergence.combo_b == ("reference", "default")
        assert divergence.event_index is not None
        assert divergence.event_b == {"time": -1.0,
                                      "kind": "verify_divergence_probe"}
        message = str(excinfo.value)
        assert "oom-reduce-yarn" in message
        assert "seed 11" in message
        assert "verify_divergence_probe" in message


@pytest.mark.slow
class TestFullMatrix:
    def test_full_corpus_all_combos(self):
        report = run_matrix(echo=_quiet)
        assert report["scenarios"] >= 15
        assert report["runs"] == report["scenarios"] * len(COMBOS)
        assert check_golden(report["digests"]) == []


class TestGoldenFile:
    def test_check_golden_flags_drift_and_names_remedy(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
        refresh_golden({"a": "1" * 64, "b": "2" * 64})
        assert check_golden({"a": "1" * 64, "b": "2" * 64}) == []
        problems = check_golden({"a": "1" * 64, "b": "f" * 64, "c": "3" * 64})
        text = "\n".join(problems)
        assert "'b' digest drifted" in text
        assert "'c' has no golden digest" in text
        assert "--refresh-golden" in text

    def test_refresh_writes_sorted_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
        path = refresh_golden({"z": "9" * 64, "a": "1" * 64})
        data = json.loads(path.read_text())
        assert list(data) == ["a", "z"]
