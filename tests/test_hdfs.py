"""Unit tests for the simulated HDFS."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.cluster.node import MB
from repro.hdfs import Hdfs, HdfsConfig, HdfsError, BlockLostError, ReplicationLevel
from repro.sim import Simulator


@pytest.fixture
def env():
    sim = Simulator()
    spec = ClusterSpec(
        num_nodes=8,
        num_racks=2,
        node=NodeSpec(disk_bandwidth=100 * MB, nic_bandwidth=100 * MB),
        core_bandwidth=400 * MB,
        seed=7,
    )
    cluster = Cluster(sim, spec)
    hdfs = Hdfs(sim, cluster, HdfsConfig(block_size=64 * MB, replication=2))
    return sim, cluster, hdfs


class TestIngest:
    def test_block_count_and_sizes(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 200 * MB)
        assert len(f.blocks) == 4  # 64+64+64+8
        assert sum(b.size for b in f.blocks) == 200 * MB
        assert f.blocks[-1].size == 8 * MB

    def test_replication_factor(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 128 * MB, replication=3)
        assert all(len(b.replicas) == 3 for b in f.blocks)

    def test_replicas_are_distinct_nodes(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 640 * MB)
        for b in f.blocks:
            assert len({n.node_id for n in b.replicas}) == len(b.replicas)

    def test_cluster_level_second_replica_off_rack(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 640 * MB)
        for b in f.blocks:
            assert b.replicas[0].rack is not b.replicas[1].rack

    def test_primaries_spread_over_nodes(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 8 * 64 * MB)
        primaries = {b.replicas[0].node_id for b in f.blocks}
        assert len(primaries) == 8  # round-robin over the 8 nodes

    def test_duplicate_path_rejected(self, env):
        _, _, hdfs = env
        hdfs.ingest("x", MB)
        with pytest.raises(HdfsError):
            hdfs.ingest("x", MB)

    def test_replica_files_on_datanodes(self, env):
        _, _, hdfs = env
        f = hdfs.ingest("input", 64 * MB)
        b = f.blocks[0]
        for n in b.replicas:
            assert n.local_bytes("hdfs") >= b.size


class TestWrite:
    def test_write_creates_available_file(self, env):
        sim, cluster, hdfs = env
        writer = cluster.nodes[0]
        p = hdfs.write(writer, "out", 64 * MB)
        sim.run(until=p)
        assert hdfs.exists("out")
        assert hdfs.file("out").available

    def test_node_level_write_has_no_network_cost(self, env):
        sim, cluster, hdfs = env
        writer = cluster.nodes[0]
        p = hdfs.write(writer, "out", 100 * MB, level=ReplicationLevel.NODE)
        sim.run(until=p)
        t_node = sim.now
        assert t_node == pytest.approx(1.0)  # 100 MB at 100 MB/s disk
        assert len(hdfs.file("out").blocks[0].replicas) == 1

    def test_rack_level_stays_in_rack(self, env):
        sim, cluster, hdfs = env
        writer = cluster.nodes[0]
        p = hdfs.write(writer, "out", 64 * MB, replication=3, level=ReplicationLevel.RACK)
        sim.run(until=p)
        for b in hdfs.file("out").blocks:
            assert all(n.rack is writer.rack for n in b.replicas)

    def test_cluster_level_crosses_racks_and_costs_more(self):
        def run(level):
            sim = Simulator()
            spec = ClusterSpec(
                num_nodes=8, num_racks=2,
                node=NodeSpec(disk_bandwidth=100 * MB, nic_bandwidth=100 * MB),
                core_bandwidth=50 * MB,  # constrained core: cross-rack hurts
                seed=7,
            )
            cluster = Cluster(sim, spec)
            hdfs = Hdfs(sim, cluster, HdfsConfig(block_size=64 * MB))
            p = hdfs.write(cluster.nodes[0], "out", 128 * MB, replication=2, level=level)
            sim.run(until=p)
            return sim.now

        # On an idle cluster rack-local pipelining hides behind the local
        # disk write (the paper observes small rack-level overhead for
        # small datasets); the constrained core makes cluster-level slow.
        assert run(ReplicationLevel.CLUSTER) > run(ReplicationLevel.RACK)
        assert run(ReplicationLevel.RACK) >= run(ReplicationLevel.NODE)

    def test_overwrite_flag(self, env):
        sim, cluster, hdfs = env
        sim.run(until=hdfs.write(cluster.nodes[0], "out", MB))
        with pytest.raises(HdfsError):
            sim.run(until=hdfs.write(cluster.nodes[0], "out", MB))
        sim.run(until=hdfs.write(cluster.nodes[0], "out", 2 * MB, overwrite=True))
        assert hdfs.file("out").size == 2 * MB

    def test_write_survives_replica_death(self, env):
        sim, cluster, hdfs = env
        writer = cluster.nodes[0]
        p = hdfs.write(writer, "out", 256 * MB, replication=2)

        def killer(sim):
            yield sim.timeout(0.5)
            # Kill a node that is probably in some pipeline; the write
            # must still complete via pipeline rebuild.
            for n in cluster.nodes[1:]:
                if n.alive and n is not writer:
                    cluster.crash_node(n)
                    return

        sim.process(killer(sim))
        sim.run(until=p)
        assert hdfs.file("out").available


class TestRead:
    def test_local_read_prefers_local_replica(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB)
        reader = f.blocks[0].replicas[0]
        p = hdfs.read(reader, "input")
        sim.run(until=p)
        assert sim.now == pytest.approx(64 / 100, rel=1e-6)  # local disk only

    def test_remote_read_moves_over_network(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB)
        holders = set(f.blocks[0].replicas)
        reader = next(n for n in cluster.nodes if n not in holders)
        p = hdfs.read(reader, "input")
        sim.run(until=p)
        assert sim.now > 0

    def test_read_fails_over_to_surviving_replica(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB, replication=2)
        primary, secondary = f.blocks[0].replicas
        reader = next(n for n in cluster.nodes if n not in (primary, secondary))

        result = {}

        def reading(sim):
            total = yield hdfs.read(reader, "input")
            result["bytes"] = total

        def killer(sim):
            yield sim.timeout(0.1)
            cluster.crash_node(primary)

        sim.process(reading(sim))
        sim.process(killer(sim))
        sim.run()
        assert result["bytes"] == 64 * MB

    def test_read_lost_block_raises(self, env):
        sim, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB, replication=1)
        cluster.crash_node(f.blocks[0].replicas[0])
        reader = cluster.nodes[5]
        caught = []

        def reading(sim):
            try:
                yield hdfs.read(reader, "input")
            except BlockLostError:
                caught.append(True)

        sim.process(reading(sim))
        sim.run()
        assert caught == [True]

    def test_missing_file_raises(self, env):
        _, cluster, hdfs = env
        with pytest.raises(HdfsError):
            hdfs.read(cluster.nodes[0], "ghost")


class TestFailureBookkeeping:
    def test_crash_removes_replicas(self, env):
        _, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB, replication=2)
        victim = f.blocks[0].replicas[0]
        cluster.crash_node(victim)
        assert victim not in f.blocks[0].replicas
        assert f.available  # one replica left

    def test_network_stop_keeps_replicas(self, env):
        _, cluster, hdfs = env
        f = hdfs.ingest("input", 64 * MB, replication=2)
        victim = f.blocks[0].replicas[0]
        cluster.stop_network(victim)
        assert victim in f.blocks[0].replicas  # data intact, just unreachable

    def test_delete_frees_datanode_space(self, env):
        _, cluster, hdfs = env
        hdfs.ingest("input", 64 * MB)
        assert sum(n.local_bytes("hdfs") for n in cluster.nodes) > 0
        hdfs.delete("input")
        assert sum(n.local_bytes("hdfs") for n in cluster.nodes) == 0
        assert not hdfs.exists("input")

    def test_total_bytes(self, env):
        _, _, hdfs = env
        hdfs.ingest("a", 10 * MB)
        hdfs.ingest("b", 20 * MB)
        assert hdfs.total_bytes() == 30 * MB
