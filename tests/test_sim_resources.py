"""Unit tests for counting resources and stores."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.core import SimulationError


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_within_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.available == 0

    def test_queueing_beyond_capacity(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        r2 = res.request()
        assert not r2.triggered
        assert res.queued == 1
        res.release()
        sim.run()
        assert r2.triggered
        assert res.available == 0

    def test_fifo_order_within_priority(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(sim, res, tag, hold):
            yield res.request()
            order.append(tag)
            yield sim.timeout(hold)
            res.release()

        for tag in "abc":
            sim.process(user(sim, res, tag, 1))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_priority_preempts_queue_order(self, sim):
        res = Resource(sim, capacity=1)
        got = []

        def holder(sim, res):
            yield res.request()
            yield sim.timeout(5)
            res.release()

        def waiter(sim, res, tag, prio, delay):
            yield sim.timeout(delay)
            yield res.request(priority=prio)
            got.append(tag)
            res.release()

        sim.process(holder(sim, res))
        sim.process(waiter(sim, res, "low", 10, 1))
        sim.process(waiter(sim, res, "high", 0, 2))
        sim.run()
        assert got == ["high", "low"]

    def test_cancel_pending_request(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        r2 = res.request()
        r3 = res.request()
        res.cancel(r2)
        assert res.queued == 1
        res.release()
        sim.run()
        assert not r2.triggered
        assert r3.triggered

    def test_release_without_grant_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        assert got.triggered
        sim.run()
        assert got.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        out = []

        def consumer(sim, store):
            out.append((yield store.get()))

        def producer(sim, store):
            yield sim.timeout(4)
            store.put("item")

        sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        sim.run()
        assert out == ["item"]
        assert sim.now == 4

    def test_fifo_semantics(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        out = []

        def consumer(sim, store):
            for _ in range(3):
                out.append((yield store.get()))

        sim.process(consumer(sim, store))
        sim.run()
        assert out == [0, 1, 2]

    def test_len(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
