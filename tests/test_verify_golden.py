"""Golden trace-digest pins for the verification scenario corpus.

These tests replace the old CI-only shell steps ("kernel-swap digest
equivalence" / "scheduler-swap digest equivalence") with pytest-native
pins: a plain ``pytest`` run now catches a digest drift locally, before
CI, and the failure message says how to move the pin deliberately
(``python -m repro verify --refresh-golden``).

The pins are stronger than the old swap steps: each scenario's digest
is compared against the checked-in golden value under *every*
implementation selection, so a drift in either the default or the
reference implementation is caught — not just a disagreement between
the two.
"""

import pytest

from repro.verify import load_golden, quick_corpus, run_verify_spec, scenario_spec
from repro.verify.scenarios import SCENARIOS

#: The swap pins run on one representative faulted scenario each.
_PIN_SCENARIO = "oom-reduce-yarn"


def _golden(name: str) -> str:
    golden = load_golden()
    assert name in golden, (
        f"scenario {name!r} has no golden digest in tests/golden/; run "
        "`python -m repro verify --refresh-golden` and commit the result"
    )
    return golden[name]


def _assert_pinned(name: str, digest: str, mode: str) -> None:
    assert digest == _golden(name), (
        f"scenario {name!r} trace digest drifted ({mode}). If this change "
        "is intentional, run `python -m repro verify --refresh-golden` "
        "and commit the updated tests/golden/scenarios.json"
    )


class TestGoldenQuick:
    """Tier-1: the quick-tagged subset must match its golden digests."""

    @pytest.mark.parametrize("name", [s.name for s in quick_corpus()])
    def test_quick_scenario_matches_golden(self, name):
        payload = run_verify_spec(scenario_spec(name))
        assert payload["invariant_violations"] == []
        _assert_pinned(name, payload["digest"], "default implementations")


class TestSwapPins:
    """The ported PIN steps: the reference kernel and the reference
    scheduler must reproduce the golden digest byte-for-byte."""

    def test_reference_kernel_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        payload = run_verify_spec(scenario_spec(_PIN_SCENARIO))
        _assert_pinned(_PIN_SCENARIO, payload["digest"], "REPRO_KERNEL=reference")

    def test_reference_scheduler_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "reference")
        payload = run_verify_spec(scenario_spec(_PIN_SCENARIO))
        _assert_pinned(_PIN_SCENARIO, payload["digest"],
                       "REPRO_SCHEDULER=reference")

    def test_reference_both_matches_golden(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "reference")
        monkeypatch.setenv("REPRO_SCHEDULER", "reference")
        payload = run_verify_spec(scenario_spec(_PIN_SCENARIO))
        _assert_pinned(_PIN_SCENARIO, payload["digest"],
                       "both reference implementations")


@pytest.mark.slow
class TestGoldenFullCorpus:
    """Tier-2: every scenario in the corpus matches its golden digest,
    and no golden entry is stale (names a scenario that no longer
    exists)."""

    def test_full_corpus_matches_golden(self):
        for name in SCENARIOS:
            payload = run_verify_spec(scenario_spec(name))
            assert payload["invariant_violations"] == [], name
            _assert_pinned(name, payload["digest"], "default implementations")

    def test_no_stale_golden_entries(self):
        stale = set(load_golden()) - set(SCENARIOS)
        assert not stale, (
            f"golden file pins scenarios that no longer exist: {sorted(stale)}; "
            "run `python -m repro verify --refresh-golden`"
        )
