"""Node, rack and local-file abstractions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import SimulationError
from repro.sim.flows import LinkResource

__all__ = ["LocalFile", "Node", "NodeSpec", "Rack"]

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one machine.

    Defaults follow the paper's testbed: hex-core Xeons (we expose 24
    hardware threads as 4 sockets x 6 cores), 24 GB RAM, one SATA SSD
    (~400 MB/s aggregate) and a 10 GbE NIC (~1.15 GB/s per direction).
    """

    cores: int = 24
    memory_mb: int = 24 * 1024
    disk_bandwidth: float = 400.0 * MB
    nic_bandwidth: float = 1150.0 * MB

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_mb < 1:
            raise SimulationError("node needs at least 1 core and 1 MB of memory")
        if self.disk_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise SimulationError("bandwidths must be positive")


@dataclass
class LocalFile:
    """A file on a node's local file system (MOF, spill, merge output)."""

    path: str
    size: float
    kind: str = "data"


class Node:
    """One machine: identity, liveness, devices and local files."""

    def __init__(self, node_id: int, rack: "Rack", spec: NodeSpec) -> None:
        self.node_id = node_id
        self.rack = rack
        self.spec = spec
        self.name = f"node-{node_id}"
        self._alive = True
        self._network_up = True
        #: Cluster-attached :class:`~repro.sim.columns.LivenessColumns`
        #: mirror (None for standalone nodes built outside a Cluster).
        self._liveness = None
        self.disk = LinkResource(f"{self.name}/disk", spec.disk_bandwidth)
        self.nic_in = LinkResource(f"{self.name}/nic-in", spec.nic_bandwidth)
        self.nic_out = LinkResource(f"{self.name}/nic-out", spec.nic_bandwidth)
        self._files: dict[str, LocalFile] = {}

    # -- liveness -----------------------------------------------------------
    # alive/network_up are properties so the rare fault-driven flips
    # dual-write into the cluster's liveness columns; reads stay plain
    # attribute loads on the private fields.
    @property
    def alive(self) -> bool:
        return self._alive

    @alive.setter
    def alive(self, value: bool) -> None:
        self._alive = value = bool(value)
        if self._liveness is not None:
            self._liveness.update(self.node_id, value, self._network_up)

    @property
    def network_up(self) -> bool:
        return self._network_up

    @network_up.setter
    def network_up(self, value: bool) -> None:
        self._network_up = value = bool(value)
        if self._liveness is not None:
            self._liveness.update(self.node_id, self._alive, value)

    @property
    def reachable(self) -> bool:
        """A node serves remote requests only if it is up *and* its
        network is up; the two fault modes are distinguishable locally
        but identical to remote observers."""
        return self._alive and self._network_up

    # -- local files ----------------------------------------------------------
    def write_file(self, path: str, size: float, kind: str = "data") -> LocalFile:
        if not self.alive:
            raise SimulationError(f"write on dead {self.name}")
        f = LocalFile(path, float(size), kind)
        self._files[path] = f
        return f

    def read_file(self, path: str) -> LocalFile:
        if not self.alive:
            raise SimulationError(f"read on dead {self.name}")
        return self._files[path]

    def has_file(self, path: str) -> bool:
        return self.alive and path in self._files

    def delete_file(self, path: str) -> None:
        self._files.pop(path, None)

    def clear_files(self) -> None:
        """Drop every local file (a reimaged replacement machine)."""
        self._files.clear()

    def files(self, kind: str | None = None) -> list[LocalFile]:
        fs = list(self._files.values())
        return fs if kind is None else [f for f in fs if f.kind == kind]

    def local_bytes(self, kind: str | None = None) -> float:
        return sum(f.size for f in self.files(kind))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "down"
        return f"<Node {self.name} rack={self.rack.rack_id} {state}>"


class Rack:
    """A group of nodes behind one top-of-rack switch."""

    def __init__(self, rack_id: int) -> None:
        self.rack_id = rack_id
        self.nodes: list[Node] = []

    def add(self, node: Node) -> None:
        self.nodes.append(node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Rack {self.rack_id} nodes={len(self.nodes)}>"
