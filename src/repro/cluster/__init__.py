"""Physical cluster model: nodes, racks, disks, NICs and data movement.

The testbed in the paper is 21 machines (hex-core Xeons, 24 GB RAM, one
SATA SSD each) on 10 GbE. Here a :class:`~repro.cluster.node.Node`
bundles a fair-shared disk, NIC ingress/egress links and a local file
namespace; a :class:`~repro.cluster.cluster.Cluster` wires nodes into
racks, owns the :class:`~repro.sim.flows.FlowScheduler` and exposes the
data-movement verbs (disk reads/writes, intra- and cross-rack network
transfers) the upper layers use.
"""

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.node import LocalFile, Node, NodeSpec, Rack

__all__ = ["Cluster", "ClusterSpec", "LocalFile", "Node", "NodeSpec", "Rack"]
