"""Cluster topology and data-movement verbs.

All byte movement in the simulation goes through the methods here so
that every transfer contends on the right devices:

- ``disk_read`` / ``disk_write``: the node's fair-shared SSD.
- ``net_transfer``: source disk (optional) -> source NIC egress ->
  [inter-rack core link if racks differ] -> destination NIC ingress ->
  destination disk (optional).

Node failure verbs (``crash_node``, ``stop_network``) flip liveness and
cancel every in-flight flow touching the victim's devices, which is how
remote peers experience a dead machine: their transfers abort with
:class:`~repro.sim.flows.FlowCancelled`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.cluster.node import GB, MB, Node, NodeSpec, Rack
from repro.sim.columns import LivenessColumns, columnar_enabled
from repro.sim.core import Event, SimulationError, Simulator
from repro.sim.flows import Flow, FlowScheduler, LinkResource

__all__ = ["Cluster", "ClusterSpec", "flow_scheduler_class"]


def flow_scheduler_class():
    """The flow scheduler implementation to use, selected by the
    ``REPRO_SCHEDULER`` environment variable: ``columnar`` (vectorized
    refill over flow columns — the default when the columnar data plane
    is on), ``incremental`` (the scalar coalescing scheduler, also the
    default under ``REPRO_DATA_PLANE=reference``), or ``reference`` for
    the eager full-recompute seed implementation (equivalence tests,
    before/after benchmarks). All three are bit-identical."""
    choice = os.environ.get("REPRO_SCHEDULER", "").strip().lower()
    if choice in ("reference", "eager"):
        from repro.sim.flows_reference import ReferenceFlowScheduler

        return ReferenceFlowScheduler
    if choice == "incremental":
        return FlowScheduler
    if choice == "columnar" or (choice == "" and columnar_enabled()):
        from repro.sim.flows_columnar import ColumnarFlowScheduler

        return ColumnarFlowScheduler
    if choice == "":
        return FlowScheduler
    raise SimulationError(f"unknown REPRO_SCHEDULER {choice!r}")


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    The default mirrors the paper's testbed: 21 machines (one dedicated
    to RM/NameNode, 20 workers), two racks, 10 GbE. ``core_bandwidth``
    is the aggregate inter-rack capacity; it is deliberately modest (an
    oversubscribed core) so that cluster-level replication is visibly
    more expensive than rack-local traffic (paper Fig. 13).
    """

    num_nodes: int = 21
    num_racks: int = 2
    node: NodeSpec = NodeSpec()
    core_bandwidth: float = 2.5 * GB
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SimulationError("need at least one node")
        if not 1 <= self.num_racks <= self.num_nodes:
            raise SimulationError("num_racks must be in [1, num_nodes]")
        if self.core_bandwidth <= 0:
            raise SimulationError("core bandwidth must be positive")


class Cluster:
    """The simulated machine room."""

    def __init__(self, sim: Simulator, spec: ClusterSpec | None = None) -> None:
        self.sim = sim
        self.spec = spec or ClusterSpec()
        self.flows = flow_scheduler_class()(sim)
        self.rng = np.random.default_rng(self.spec.seed)
        self.core_link = LinkResource("core-switch", self.spec.core_bandwidth)
        self.racks = [Rack(i) for i in range(self.spec.num_racks)]
        #: Dense per-node_id liveness arrays; every node dual-writes
        #: its alive/network_up flips here (repro.sim.columns). The
        #: mirror is maintained in both data-plane modes (writes are
        #: rare fault events); the mode only selects who *reads* it.
        self.columns = LivenessColumns(self.spec.num_nodes)
        self._columnar = columnar_enabled()
        self.nodes: list[Node] = []
        for i in range(self.spec.num_nodes):
            rack = self.racks[i % self.spec.num_racks]
            node = Node(i, rack, self.spec.node)
            node._liveness = self.columns
            rack.add(node)
            self.nodes.append(node)
        #: Listeners invoked as fn(node) when a node dies or loses network.
        self.failure_listeners: list = []
        #: Listeners invoked as fn(node) when a node comes back
        #: (network heal or machine restart). Subscribers re-register
        #: state the failure hid: the RM builds a fresh NodeManager, the
        #: NameNode takes a block report.
        self.rejoin_listeners: list = []

    # -- lookup ---------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def alive_nodes(self) -> list[Node]:
        if self._columnar:
            nodes = self.nodes
            return [nodes[i] for i in np.flatnonzero(self.columns.alive)]
        return [n for n in self.nodes if n.alive]

    def reachable_nodes(self) -> list[Node]:
        if self._columnar:
            nodes = self.nodes
            return [nodes[i] for i in np.flatnonzero(self.columns.reachable)]
        return [n for n in self.nodes if n.reachable]

    def reachable_mask(self) -> np.ndarray:
        """Per-``node_id`` reachability as a bool array (read-only by
        convention); the form batched ticks and fault pickers consume."""
        return self.columns.reachable

    def same_rack(self, a: Node, b: Node) -> bool:
        return a.rack is b.rack

    # -- data movement -----------------------------------------------------
    def disk_read(self, node: Node, size: float, name: str = "disk-read") -> Flow:
        self._check_up(node)
        return self.flows.transfer(size, [node.disk], f"{name}@{node.name}")

    def disk_write(self, node: Node, size: float, name: str = "disk-write") -> Flow:
        self._check_up(node)
        return self.flows.transfer(size, [node.disk], f"{name}@{node.name}")

    def net_transfer(
        self,
        src: Node,
        dst: Node,
        size: float,
        name: str = "net",
        read_src_disk: bool = True,
        write_dst_disk: bool = False,
    ) -> Flow:
        """Move ``size`` bytes from ``src`` to ``dst`` over the network.

        Raises :class:`SimulationError` immediately if either endpoint
        is unreachable *now*; mid-flight failures surface as
        ``FlowCancelled`` on the returned flow's ``done`` event.
        """
        if src is dst:
            # Local "transfer": loopback never leaves the host.
            res: list[LinkResource] = []
            if read_src_disk:
                res.append(src.disk)
            if write_dst_disk and dst.disk not in res:
                res.append(dst.disk)
            if not res:
                # Pure memory copy; generously fast but finite.
                return self.flows.transfer(size, [], name, rate_cap=4.0 * GB)
            self._check_reachable(src)
            return self.flows.transfer(size, res, f"{name}:{src.name}->{dst.name}")
        self._check_reachable(src)
        self._check_reachable(dst)
        res = []
        if read_src_disk:
            res.append(src.disk)
        res.append(src.nic_out)
        if not self.same_rack(src, dst):
            res.append(self.core_link)
        res.append(dst.nic_in)
        if write_dst_disk:
            res.append(dst.disk)
        return self.flows.transfer(size, res, f"{name}:{src.name}->{dst.name}")

    def net_transfer_many(self, requests: Iterable[dict]) -> list[Flow]:
        """Start several :meth:`net_transfer` calls as one batch (e.g.
        an HDFS pipeline or a recovery fan-out): each request is a dict
        of ``net_transfer`` keyword arguments. The whole batch shares a
        single progress advance and one deferred rate recompute."""
        with self.flows.batch():
            return [self.net_transfer(**req) for req in requests]

    def compute(self, node: Node, seconds: float) -> Event:
        """CPU work: containers own their cores, so compute is a plain
        delay (no contention modelling)."""
        self._check_up(node)
        if seconds < 0:
            raise SimulationError(f"negative compute time: {seconds}")
        return self.sim.timeout(seconds)

    # -- failures ---------------------------------------------------------------
    def crash_node(self, node: Node) -> None:
        """Power failure: processes die, local files are gone, NIC drops."""
        if not node.alive:
            return
        node.alive = False
        node.network_up = False
        self._sever(node, reason=f"{node.name} crashed")
        self._notify(node)

    def stop_network(self, node: Node) -> None:
        """The paper's node-failure injection: stop network services.

        The machine stays up (files intact, local processes running)
        but is unreachable — indistinguishable from a crash to peers.
        """
        if not node.network_up:
            return
        node.network_up = False
        self._sever(node, reason=f"{node.name} network down", include_disk=False)
        self._notify(node)

    # -- recovery ---------------------------------------------------------------
    def restore_network(self, node: Node) -> None:
        """Heal a :meth:`stop_network` partition: the machine was up the
        whole time (files and local processes intact), it just becomes
        reachable again. No-op on a dead or already-connected node."""
        if not node.alive or node.network_up:
            return
        node.network_up = True
        self._notify_rejoin(node)

    def restart_node(self, node: Node, wipe_disk: bool = False) -> None:
        """Bring a crashed machine back up.

        By default the disk survives the power cycle (real crashes do
        not erase disks), so surviving replicas can be re-registered by
        rejoin listeners — the HDFS "block report" path. ``wipe_disk``
        models a reimaged replacement machine instead.
        """
        if node.alive:
            return
        node.alive = True
        node.network_up = True
        if wipe_disk:
            node.clear_files()
        self._notify_rejoin(node)

    def _sever(self, node: Node, reason: str, include_disk: bool = True) -> None:
        # One batched sweep over all of the victim's device directions:
        # every flow touching the node is cancelled with a single
        # progress advance and one deferred rate recompute, instead of
        # the seed's three per-victim cancel sweeps.
        resources = [node.nic_in, node.nic_out]
        if include_disk:
            resources.append(node.disk)
        self.flows.cancel_flows_using(resources, reason)

    def _notify(self, node: Node) -> None:
        for fn in list(self.failure_listeners):
            fn(node)

    def _notify_rejoin(self, node: Node) -> None:
        for fn in list(self.rejoin_listeners):
            fn(node)

    # -- guards --------------------------------------------------------------
    def _check_up(self, node: Node) -> None:
        if not node.alive:
            raise SimulationError(f"{node.name} is dead")

    def _check_reachable(self, node: Node) -> None:
        if not node.reachable:
            raise SimulationError(f"{node.name} is unreachable")


# Re-export the byte-size helpers next to the class that uses them.
__all__ += ["GB", "MB"]
