"""Straggler injection: degrade a node's devices instead of killing it.

Dinu & Ng (HPDC'12), which the paper builds on, distinguish fail-stop
nodes from *faulty* nodes that remain responsive but slow — the case
Algorithm 1's lines 14-21 target by racing a speculative recovery task
against a same-node relaunch. This injector produces such nodes by
scaling down disk and/or NIC capacity at a trigger point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import MapReduceRuntime

__all__ = ["SlowNodeFault"]


@dataclass
class SlowNodeFault:
    """Degrade a worker's I/O bandwidth at ``at_time``.

    ``disk_factor`` / ``nic_factor`` multiply the device capacities
    (e.g. 0.1 = ten times slower). The node keeps heartbeating, so the
    RM never declares it lost — only speculation or ALM's Algorithm 1
    can save tasks scheduled there.
    """

    node_index: int = 0
    at_time: float = 0.0
    disk_factor: float = 0.1
    nic_factor: float = 1.0
    fired_at: float | None = field(default=None, init=False)
    victim_name: str | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        if not 0 < self.disk_factor <= 1 or not 0 < self.nic_factor <= 1:
            raise SimulationError("degradation factors must be in (0, 1]")
        rt.sim.process(self._watch(rt), name=f"fault:slow-node:{self.node_index}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        node = rt.workers[self.node_index]
        if not node.alive:
            return
        self.fired_at = rt.sim.now
        self.victim_name = node.name
        node.disk.set_capacity(node.spec.disk_bandwidth * self.disk_factor)
        node.nic_in.set_capacity(node.spec.nic_bandwidth * self.nic_factor)
        node.nic_out.set_capacity(node.spec.nic_bandwidth * self.nic_factor)
        rt.trace.log("fault_injected", fault="slow-node", node=node.name,
                     disk_factor=self.disk_factor, nic_factor=self.nic_factor)
