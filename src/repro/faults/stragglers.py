"""Straggler injection: degrade a node's devices instead of killing it.

Dinu & Ng (HPDC'12), which the paper builds on, distinguish fail-stop
nodes from *faulty* nodes that remain responsive but slow — the case
Algorithm 1's lines 14-21 target by racing a speculative recovery task
against a same-node relaunch. This injector produces such nodes by
scaling down disk and/or NIC capacity at a trigger point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.inject import _require

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import MapReduceRuntime

__all__ = ["SlowNodeFault"]


@dataclass
class SlowNodeFault:
    """Degrade a worker's I/O bandwidth at ``at_time``.

    ``disk_factor`` / ``nic_factor`` multiply the device capacities
    (e.g. 0.1 = ten times slower). The node keeps heartbeating, so the
    RM never declares it lost — only speculation or ALM's Algorithm 1
    can save tasks scheduled there. With ``duration`` the degradation
    is transient (a background scrub, a flaky cable): capacities are
    restored to the node's spec after that many seconds.
    """

    node_index: int = 0
    at_time: float = 0.0
    disk_factor: float = 0.1
    nic_factor: float = 1.0
    duration: float | None = None
    fired_at: float | None = field(default=None, init=False)
    recovered_at: float | None = field(default=None, init=False)
    victim_name: str | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        _require(0 < self.disk_factor <= 1, "SlowNodeFault.disk_factor",
                 f"must be in (0, 1], got {self.disk_factor}")
        _require(0 < self.nic_factor <= 1, "SlowNodeFault.nic_factor",
                 f"must be in (0, 1], got {self.nic_factor}")
        _require(self.at_time >= 0, "SlowNodeFault.at_time",
                 f"must be >= 0, got {self.at_time}")
        _require(0 <= self.node_index < len(rt.workers), "SlowNodeFault.node_index",
                 f"worker index out of range [0, {len(rt.workers)})")
        if self.duration is not None:
            _require(self.duration > 0, "SlowNodeFault.duration",
                     f"must be > 0, got {self.duration}")
        rt.sim.process(self._watch(rt), name=f"fault:slow-node:{self.node_index}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        node = rt.workers[self.node_index]
        if not node.alive:
            rt.trace.log("fault_skipped", fault="slow-node", node=node.name,
                         reason="victim already dead")
            return
        self.fired_at = rt.sim.now
        self.victim_name = node.name
        node.disk.set_capacity(node.spec.disk_bandwidth * self.disk_factor)
        node.nic_in.set_capacity(node.spec.nic_bandwidth * self.nic_factor)
        node.nic_out.set_capacity(node.spec.nic_bandwidth * self.nic_factor)
        rt.trace.log("fault_injected", fault="slow-node", node=node.name,
                     disk_factor=self.disk_factor, nic_factor=self.nic_factor)
        if self.duration is None:
            return
        yield rt.sim.timeout(self.duration)
        self.recovered_at = rt.sim.now
        # Restore to spec even if the node died meanwhile — harmless,
        # and a later restart should come back at full speed.
        node.disk.set_capacity(node.spec.disk_bandwidth)
        node.nic_in.set_capacity(node.spec.nic_bandwidth)
        node.nic_out.set_capacity(node.spec.nic_bandwidth)
        rt.trace.log("fault_recovered", fault="slow-node", node=node.name)
