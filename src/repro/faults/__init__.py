"""Fault injection: task kills and node failures, by time or progress.

Mirrors the paper's methodology (§V-B): transient task failures are
emulated by injecting an out-of-memory exception into a running task at
a chosen progress point; node failures by stopping a node's network
services (or crashing it outright) at a chosen time, job-progress point
or trace-event trigger. The chaos extensions add transient partitions
with recovery, rack-correlated failures and degraded-hardware faults.
"""

from repro.faults.inject import (
    AMFault,
    EventTrigger,
    FaultInjector,
    MapWaveFault,
    NodeFault,
    PartitionFault,
    RackFault,
    TaskFault,
    kill_am_at_progress,
    kill_node_at_progress,
    kill_node_at_time,
    kill_reduce_at_progress,
    kill_maps_at_time,
)
from repro.faults.stragglers import SlowNodeFault

__all__ = [
    "AMFault",
    "EventTrigger",
    "FaultInjector",
    "MapWaveFault",
    "NodeFault",
    "PartitionFault",
    "RackFault",
    "SlowNodeFault",
    "TaskFault",
    "kill_am_at_progress",
    "kill_maps_at_time",
    "kill_node_at_progress",
    "kill_node_at_time",
    "kill_reduce_at_progress",
]
