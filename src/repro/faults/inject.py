"""Fault injector implementations.

Every injector follows one contract:

- ``install(rt)`` validates the spec (raising
  :class:`~repro.sim.core.SimulationError` naming the offending field)
  and spawns a watcher process on the runtime's simulator.
- The watcher waits for its trigger — a wall-clock time, a job-progress
  threshold, or an :class:`EventTrigger` keyed on trace events — then
  fires, logging a ``fault_injected`` trace event.
- A watcher that cannot fire (victim already dead, task already done)
  logs ``fault_skipped`` with a reason instead of returning silently,
  so chaos campaigns can distinguish "fault never fired" from "fault
  fired and nothing broke".
- Faults with a ``duration`` undo themselves (network heal, node
  restart, capacity restore) and log ``fault_recovered``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import MapReduceRuntime

__all__ = [
    "AMFault",
    "EventTrigger",
    "FaultInjector",
    "MapWaveFault",
    "NodeFault",
    "PartitionFault",
    "RackFault",
    "TaskFault",
    "kill_am_at_progress",
    "kill_maps_at_time",
    "kill_node_at_progress",
    "kill_node_at_time",
    "kill_reduce_at_progress",
]

#: Poll interval for progress-triggered faults.
_POLL = 0.25


def _require(condition: bool, field_name: str, message: str) -> None:
    """Uniform install-time validation: every fault names the offending
    field so a bad chaos schedule fails loudly, not 2000 s into a run."""
    if not condition:
        raise SimulationError(f"{field_name}: {message}")


@dataclass
class EventTrigger:
    """Fire on the ``occurrence``-th trace event of ``kind`` (filtered
    by ``match`` on the event's data), then wait ``delay`` seconds.

    This is the "second crash 10 s after the first ``node_lost``"
    trigger: event-driven via :meth:`Trace.subscribe`, not polling, so
    it fires at the exact log instant and stays deterministic.
    """

    kind: str
    delay: float = 0.0
    occurrence: int = 1
    match: dict[str, Any] | None = None

    def validate(self, prefix: str) -> None:
        _require(bool(self.kind), f"{prefix}.kind", "must name a trace event kind")
        _require(self.delay >= 0, f"{prefix}.delay", f"must be >= 0, got {self.delay}")
        _require(self.occurrence >= 1, f"{prefix}.occurrence",
                 f"must be >= 1, got {self.occurrence}")

    def matches(self, event) -> bool:
        return not self.match or all(event.data.get(k) == v for k, v in self.match.items())


def _wait_for_event(rt: "MapReduceRuntime", trigger: EventTrigger):
    """Generator: suspend until the trigger's event (+delay) arrives."""
    armed = rt.sim.event()
    seen = 0

    def on_event(te) -> None:
        nonlocal seen
        if not trigger.matches(te):
            return
        seen += 1
        if seen == trigger.occurrence and not armed.triggered:
            armed.succeed(te)

    rt.trace.subscribe(trigger.kind, on_event)
    yield armed
    rt.trace.unsubscribe(trigger.kind, on_event)
    if trigger.delay > 0:
        yield rt.sim.timeout(trigger.delay)


@dataclass
class TaskFault:
    """Inject an OOM into a task attempt at a progress point.

    ``at_progress`` is the attempt's own progress in [0, 1]; the paper's
    "failure at X% of the reduce phase" maps to the reduce attempt's
    progress because reducers span the whole phase.

    ``repeat`` makes the fault recurring: it keeps arming against fresh
    attempts of the same task, so with ``repeat=2`` the *recovery*
    attempt is OOM-killed too (the fault-during-recovery scenario).
    Each attempt is killed at most once.
    """

    task_type: TaskType = TaskType.REDUCE
    task_index: int = 0
    at_progress: float = 0.5
    reason: str = "injected-oom"
    repeat: int = 1
    fired_at: float | None = field(default=None, init=False)
    fired_times: list[float] = field(default_factory=list, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        _require(0 <= self.at_progress <= 1, "TaskFault.at_progress",
                 f"must be in [0, 1], got {self.at_progress}")
        _require(self.task_index >= 0, "TaskFault.task_index",
                 f"must be >= 0, got {self.task_index}")
        _require(self.repeat >= 1, "TaskFault.repeat",
                 f"must be >= 1, got {self.repeat}")
        tasks = rt.am.map_tasks if self.task_type is TaskType.MAP else rt.am.reduce_tasks
        _require(self.task_index < len(tasks), "TaskFault.task_index",
                 f"job has only {len(tasks)} {self.task_type.value} tasks")
        rt.sim.process(self._watch(rt), name=f"fault:{self.task_type.value}{self.task_index}")

    def _watch(self, rt: "MapReduceRuntime"):
        tasks = rt.am.map_tasks if self.task_type is TaskType.MAP else rt.am.reduce_tasks
        task = tasks[self.task_index]
        killed: set[int] = set()
        while len(self.fired_times) < self.repeat:
            if task.is_finished or rt.am._finished:
                if not self.fired_times:
                    rt.trace.log("fault_skipped", fault="task-oom", task=task.name,
                                 reason="task finished before reaching trigger progress")
                return
            for attempt in task.running_attempts():
                if id(attempt) in killed or attempt.progress < self.at_progress:
                    continue
                killed.add(id(attempt))
                self.fired_times.append(rt.sim.now)
                if self.fired_at is None:
                    self.fired_at = rt.sim.now
                rt.trace.log("fault_injected", fault="task-oom", task=task.name,
                             attempt=attempt.attempt_id, progress=attempt.progress,
                             occurrence=len(self.fired_times))
                attempt.kill(self.reason)
                if len(self.fired_times) >= self.repeat:
                    return
            yield rt.sim.timeout(_POLL)


@dataclass
class NodeFault:
    """Take a node down at a time, progress or trace-event trigger.

    ``target`` selects the victim:

    - ``"reducer"`` — the node hosting the running attempt of reduce
      task ``reduce_task_index`` (Figs. 3, 9, 10);
    - ``"map-only"`` — a node holding MOFs but no running ReduceTask
      (the spatial-amplification setup of Fig. 4 / Table II);
    - an ``int`` — that worker index directly.

    ``mode="network"`` stops network services (the paper's method);
    ``mode="crash"`` power-fails the machine. With ``duration`` the
    fault is transient: the partition heals (or the machine restarts,
    disk intact) after that many seconds and the node re-registers with
    the RM — the recovery path chaos campaigns stress.

    ``after`` replaces the time/progress trigger with an
    :class:`EventTrigger` (e.g. fire 10 s after the first
    ``node_lost``), which is how double-failure-during-recovery
    schedules are expressed.
    """

    target: str | int = "reducer"
    at_time: float | None = None
    at_progress: float | None = None
    mode: str = "network"
    reduce_task_index: int = 0
    duration: float | None = None
    after: EventTrigger | None = None
    fired_at: float | None = field(default=None, init=False)
    recovered_at: float | None = field(default=None, init=False)
    victim_name: str | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        triggers = sum(x is not None for x in (self.at_time, self.at_progress, self.after))
        _require(triggers == 1, "NodeFault.at_time/at_progress/after",
                 f"specify exactly one trigger, got {triggers}")
        _require(self.mode in ("network", "crash"), "NodeFault.mode",
                 f"must be 'network' or 'crash', got {self.mode!r}")
        if self.at_time is not None:
            _require(self.at_time >= 0, "NodeFault.at_time",
                     f"must be >= 0, got {self.at_time}")
        if self.at_progress is not None:
            _require(0 <= self.at_progress <= 1, "NodeFault.at_progress",
                     f"must be in [0, 1], got {self.at_progress}")
        if self.after is not None:
            self.after.validate("NodeFault.after")
        if self.duration is not None:
            _require(self.duration > 0, "NodeFault.duration",
                     f"must be > 0, got {self.duration}")
        _require(self.reduce_task_index >= 0, "NodeFault.reduce_task_index",
                 f"must be >= 0, got {self.reduce_task_index}")
        if isinstance(self.target, int):
            _require(0 <= self.target < len(rt.workers), "NodeFault.target",
                     f"worker index out of range [0, {len(rt.workers)})")
        else:
            _require(self.target in ("reducer", "map-only"), "NodeFault.target",
                     f"must be 'reducer', 'map-only' or a worker index, got {self.target!r}")
        rt.sim.process(self._watch(rt), name=f"fault:node:{self.target}")

    def _watch(self, rt: "MapReduceRuntime"):
        if self.after is not None:
            yield from _wait_for_event(rt, self.after)
        elif self.at_time is not None:
            yield rt.sim.timeout(self.at_time)
        else:
            while rt.am.reduce_phase_progress() < self.at_progress:
                if rt.am._finished:
                    rt.trace.log("fault_skipped", fault=f"node-{self.mode}",
                                 reason="job finished before trigger progress")
                    return
                yield rt.sim.timeout(_POLL)
        victim = self._pick(rt)
        if victim is None:
            rt.trace.log("fault_skipped", fault=f"node-{self.mode}",
                         reason=f"no victim for target {self.target!r}")
            return
        down = not victim.alive if self.mode == "crash" else not victim.network_up
        if down:
            rt.trace.log("fault_skipped", fault=f"node-{self.mode}",
                         node=victim.name, reason="victim already down")
            return
        self.fired_at = rt.sim.now
        self.victim_name = victim.name
        rt.trace.log("fault_injected", fault=f"node-{self.mode}", node=victim.name)
        if self.mode == "crash":
            rt.cluster.crash_node(victim)
        else:
            rt.cluster.stop_network(victim)
        if self.duration is None:
            return
        yield rt.sim.timeout(self.duration)
        self.recovered_at = rt.sim.now
        rt.trace.log("fault_recovered", fault=f"node-{self.mode}", node=victim.name)
        if self.mode == "crash":
            rt.cluster.restart_node(victim)
        else:
            rt.cluster.restore_network(victim)

    def _pick(self, rt: "MapReduceRuntime"):
        if isinstance(self.target, int):
            return rt.workers[self.target]
        if self.target == "reducer":
            if self.reduce_task_index < len(rt.am.reduce_tasks):
                task = rt.am.reduce_tasks[self.reduce_task_index]
                running = task.running_attempts()
                if running:
                    return running[0].node
            # Fall back to any node hosting a reducer.
            for t in rt.am.reduce_tasks:
                if t.running_attempts():
                    return t.running_attempts()[0].node
            return None
        if self.target == "map-only":
            reducer_nodes = {
                a.node for t in rt.am.reduce_tasks for a in t.running_attempts()
            }
            # One vectorized mask read instead of a per-node property
            # chain: same values, cheaper on 10k-node fleets.
            reachable = rt.cluster.reachable_mask()
            candidates = [
                (len(rt.am.registry.on_node(n)), n)
                for n in rt.workers
                if reachable[n.node_id] and n not in reducer_nodes
                and len(rt.am.registry.on_node(n)) > 0
            ]
            if not candidates:
                # Every node hosts a reducer: fall back to the node
                # whose loss matters least directly (fewest reducers,
                # most MOFs) so the experiment still exercises the
                # lost-MOF path.
                candidates = [
                    (len(rt.am.registry.on_node(n)), n)
                    for n in rt.workers
                    if n.reachable and len(rt.am.registry.on_node(n)) > 0
                ]
                if not candidates:
                    return None
            candidates.sort(key=lambda cn: (-cn[0], cn[1].node_id))
            return candidates[0][1]
        raise SimulationError(f"unknown target {self.target!r}")


@dataclass
class RackFault:
    """Rack-correlated failure: take several nodes of one rack down at
    ``at_time``, ``stagger`` seconds apart (a ToR-switch death or a PDU
    trip — the correlated failure mode ATLAS observes in production).

    ``count=None`` fails every worker in the rack. With ``duration``
    the rack recovers (counted from the last member failure).
    """

    rack_index: int = 0
    count: int | None = None
    at_time: float = 60.0
    mode: str = "network"
    stagger: float = 0.0
    duration: float | None = None
    fired_at: float | None = field(default=None, init=False)
    victim_names: list[str] = field(default_factory=list, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        _require(self.at_time >= 0, "RackFault.at_time",
                 f"must be >= 0, got {self.at_time}")
        _require(self.mode in ("network", "crash"), "RackFault.mode",
                 f"must be 'network' or 'crash', got {self.mode!r}")
        _require(0 <= self.rack_index < len(rt.cluster.racks), "RackFault.rack_index",
                 f"cluster has only {len(rt.cluster.racks)} racks")
        if self.count is not None:
            _require(self.count >= 1, "RackFault.count",
                     f"must be >= 1, got {self.count}")
        _require(self.stagger >= 0, "RackFault.stagger",
                 f"must be >= 0, got {self.stagger}")
        if self.duration is not None:
            _require(self.duration > 0, "RackFault.duration",
                     f"must be > 0, got {self.duration}")
        rt.sim.process(self._watch(rt), name=f"fault:rack:{self.rack_index}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        members = [n for n in rt.workers if n.rack.rack_id == self.rack_index]
        victims = [n for n in members if n.reachable]
        if self.count is not None:
            victims = victims[: self.count]
        if not victims:
            rt.trace.log("fault_skipped", fault=f"rack-{self.mode}",
                         rack=self.rack_index, reason="no reachable workers in rack")
            return
        self.fired_at = rt.sim.now
        for i, victim in enumerate(victims):
            if i > 0 and self.stagger > 0:
                yield rt.sim.timeout(self.stagger)
            if not victim.reachable:
                continue  # an earlier fault got there first
            self.victim_names.append(victim.name)
            rt.trace.log("fault_injected", fault=f"rack-{self.mode}",
                         node=victim.name, rack=self.rack_index)
            if self.mode == "crash":
                rt.cluster.crash_node(victim)
            else:
                rt.cluster.stop_network(victim)
        if self.duration is None:
            return
        yield rt.sim.timeout(self.duration)
        for victim in victims:
            rt.trace.log("fault_recovered", fault=f"rack-{self.mode}",
                         node=victim.name, rack=self.rack_index)
            if self.mode == "crash":
                rt.cluster.restart_node(victim)
            else:
                rt.cluster.restore_network(victim)


@dataclass
class PartitionFault:
    """Transient network partition: the listed workers drop off the
    network at ``at_time`` and come back ``duration`` seconds later,
    files and local processes intact. Whether the RM declares them lost
    depends on ``duration`` vs the liveness timeout — both races are
    worth stressing.
    """

    node_indices: tuple[int, ...] = (0,)
    at_time: float = 60.0
    duration: float = 30.0
    fired_at: float | None = field(default=None, init=False)
    recovered_at: float | None = field(default=None, init=False)
    victim_names: list[str] = field(default_factory=list, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        _require(len(self.node_indices) > 0, "PartitionFault.node_indices",
                 "must list at least one worker index")
        _require(self.at_time >= 0, "PartitionFault.at_time",
                 f"must be >= 0, got {self.at_time}")
        _require(self.duration > 0, "PartitionFault.duration",
                 f"must be > 0, got {self.duration}")
        for idx in self.node_indices:
            _require(0 <= idx < len(rt.workers), "PartitionFault.node_indices",
                     f"worker index {idx} out of range [0, {len(rt.workers)})")
        rt.sim.process(self._watch(rt), name=f"fault:partition:{len(self.node_indices)}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        victims = [rt.workers[i] for i in self.node_indices]
        live = [n for n in victims if n.reachable]
        if not live:
            rt.trace.log("fault_skipped", fault="partition",
                         reason="all targets already unreachable")
            return
        self.fired_at = rt.sim.now
        for victim in live:
            self.victim_names.append(victim.name)
            rt.trace.log("fault_injected", fault="partition", node=victim.name,
                         duration=self.duration)
            rt.cluster.stop_network(victim)
        yield rt.sim.timeout(self.duration)
        self.recovered_at = rt.sim.now
        for victim in live:
            rt.trace.log("fault_recovered", fault="partition", node=victim.name)
            rt.cluster.restore_network(victim)


@dataclass
class MapWaveFault:
    """Kill up to ``count`` running MapTask attempts at ``at_time``
    (Fig. 1's N-MapTask-failure experiment)."""

    count: int
    at_time: float
    killed: int = field(default=0, init=False)
    killed_tasks: list = field(default_factory=list, init=False)
    fired_at: float | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        _require(self.count >= 1, "MapWaveFault.count",
                 f"must be >= 1, got {self.count}")
        _require(self.at_time >= 0, "MapWaveFault.at_time",
                 f"must be >= 0, got {self.at_time}")
        rt.sim.process(self._watch(rt), name=f"fault:maps:{self.count}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        self.fired_at = rt.sim.now
        for task in rt.am.map_tasks:
            if self.killed >= self.count:
                break
            for attempt in task.running_attempts():
                attempt.kill("injected-oom")
                self.killed += 1
                self.killed_tasks.append(task.name)
                break
        if self.killed == 0:
            rt.trace.log("fault_skipped", fault="map-wave",
                         reason="no running map attempts at trigger time")
            return
        rt.trace.log("fault_injected", fault="map-wave", count=self.killed)


@dataclass
class AMFault:
    """Crash the running :class:`MRAppMaster` (control-plane failure).

    The RM relaunches the AM after ``JobConf.am_restart_delay``, up to
    ``JobConf.am_max_attempts`` incarnations; the new AM recovers from
    the job-history log (or from scratch, per ``JobConf.am_recovery``).
    ``repeat`` kills that many successive incarnations — with
    ``repeat >= am_max_attempts`` this drives the job to AM-attempt
    exhaustion. ``repeat_gap`` is the delay between kills, counted from
    the moment the next incarnation is live.
    """

    at_time: float | None = None
    at_progress: float | None = None
    after: EventTrigger | None = None
    repeat: int = 1
    repeat_gap: float = 30.0
    fired_times: list[float] = field(default_factory=list, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        triggers = sum(x is not None for x in (self.at_time, self.at_progress, self.after))
        _require(triggers == 1, "AMFault.at_time/at_progress/after",
                 f"specify exactly one trigger, got {triggers}")
        if self.at_time is not None:
            _require(self.at_time >= 0, "AMFault.at_time",
                     f"must be >= 0, got {self.at_time}")
        if self.at_progress is not None:
            _require(0 <= self.at_progress <= 1, "AMFault.at_progress",
                     f"must be in [0, 1], got {self.at_progress}")
        if self.after is not None:
            self.after.validate("AMFault.after")
        _require(self.repeat >= 1, "AMFault.repeat",
                 f"must be >= 1, got {self.repeat}")
        _require(self.repeat_gap > 0, "AMFault.repeat_gap",
                 f"must be > 0, got {self.repeat_gap}")
        rt.sim.process(self._watch(rt), name="fault:am-crash")

    def _watch(self, rt: "MapReduceRuntime"):
        if self.after is not None:
            yield from _wait_for_event(rt, self.after)
        elif self.at_time is not None:
            yield rt.sim.timeout(self.at_time)
        else:
            while rt.am.reduce_phase_progress() < self.at_progress:
                if rt.job_done.triggered:
                    rt.trace.log("fault_skipped", fault="am-crash",
                                 reason="job finished before trigger progress")
                    return
                yield rt.sim.timeout(_POLL)
        for k in range(self.repeat):
            if rt.job_done.triggered:
                rt.trace.log("fault_skipped", fault="am-crash",
                             reason="job finished before kill")
                return
            # Wait out a restart already in flight: you cannot crash an
            # AM that is not running.
            while rt.am.dead and not rt.job_done.triggered:
                yield rt.sim.timeout(_POLL)
            if rt.job_done.triggered or not rt.kill_am():
                rt.trace.log("fault_skipped", fault="am-crash",
                             reason="no live AM to kill")
                return
            self.fired_times.append(rt.sim.now)
            rt.trace.log("fault_injected", fault="am-crash",
                         am_attempt=rt.am.am_attempt, occurrence=k + 1)
            if k + 1 < self.repeat:
                yield rt.sim.timeout(self.repeat_gap)

    @property
    def fired_at(self) -> float | None:
        return self.fired_times[0] if self.fired_times else None


class FaultInjector:
    """Bundle of faults installed together onto one runtime.

    A bundle installs exactly once: fault objects carry mutable fired
    state, so re-installing them (onto the same or another runtime)
    silently corrupts both schedules — reject it loudly instead.
    """

    def __init__(self, *faults) -> None:
        self.faults = list(faults)
        self._installed_on = None

    def add(self, fault) -> "FaultInjector":
        self.faults.append(fault)
        return self

    def install(self, rt: "MapReduceRuntime") -> None:
        if self._installed_on is not None:
            raise SimulationError(
                "FaultInjector.install: already installed onto a runtime; "
                "build a fresh injector (and fresh faults) per run")
        self._installed_on = rt
        for f in self.faults:
            f.install(rt)


# -- convenience constructors used by the experiment drivers ----------------

def kill_reduce_at_progress(progress: float, task_index: int = 0) -> TaskFault:
    return TaskFault(TaskType.REDUCE, task_index, progress)


def kill_node_at_time(at_time: float, target: str | int = "reducer", mode: str = "network") -> NodeFault:
    return NodeFault(target=target, at_time=at_time, mode=mode)


def kill_node_at_progress(progress: float, target: str | int = "reducer", mode: str = "network") -> NodeFault:
    return NodeFault(target=target, at_progress=progress, mode=mode)


def kill_maps_at_time(count: int, at_time: float) -> MapWaveFault:
    return MapWaveFault(count=count, at_time=at_time)


def kill_am_at_progress(progress: float, repeat: int = 1) -> AMFault:
    return AMFault(at_progress=progress, repeat=repeat)
