"""Fault injector implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import MapReduceRuntime

__all__ = [
    "FaultInjector",
    "NodeFault",
    "TaskFault",
    "kill_maps_at_time",
    "kill_node_at_progress",
    "kill_node_at_time",
    "kill_reduce_at_progress",
]

#: Poll interval for progress-triggered faults.
_POLL = 0.25


@dataclass
class TaskFault:
    """Inject an OOM into a task attempt at a progress point.

    ``at_progress`` is the attempt's own progress in [0, 1]; the paper's
    "failure at X% of the reduce phase" maps to the reduce attempt's
    progress because reducers span the whole phase.
    """

    task_type: TaskType = TaskType.REDUCE
    task_index: int = 0
    at_progress: float = 0.5
    reason: str = "injected-oom"
    #: Only fire once even if the task restarts (transient fault).
    fired_at: float | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        if not 0 <= self.at_progress <= 1:
            raise SimulationError("at_progress must be in [0, 1]")
        rt.sim.process(self._watch(rt), name=f"fault:{self.task_type.value}{self.task_index}")

    def _watch(self, rt: "MapReduceRuntime"):
        tasks = rt.am.map_tasks if self.task_type is TaskType.MAP else rt.am.reduce_tasks
        task = tasks[self.task_index]
        while self.fired_at is None:
            for attempt in task.running_attempts():
                if attempt.progress >= self.at_progress:
                    self.fired_at = rt.sim.now
                    rt.trace.log("fault_injected", fault="task-oom", task=task.name,
                                 attempt=attempt.attempt_id, progress=attempt.progress)
                    attempt.kill(self.reason)
                    return
            if task.is_finished:
                return
            yield rt.sim.timeout(_POLL)


@dataclass
class NodeFault:
    """Take a node down at a time or reduce-phase-progress trigger.

    ``target`` selects the victim:

    - ``"reducer"`` — the node hosting the running attempt of reduce
      task ``reduce_task_index`` (Figs. 3, 9, 10);
    - ``"map-only"`` — a node holding MOFs but no running ReduceTask
      (the spatial-amplification setup of Fig. 4 / Table II);
    - an ``int`` — that worker index directly.

    ``mode="network"`` stops network services (the paper's method);
    ``mode="crash"`` power-fails the machine.
    """

    target: str | int = "reducer"
    at_time: float | None = None
    at_progress: float | None = None
    mode: str = "network"
    reduce_task_index: int = 0
    fired_at: float | None = field(default=None, init=False)
    victim_name: str | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        if (self.at_time is None) == (self.at_progress is None):
            raise SimulationError("specify exactly one of at_time / at_progress")
        if self.mode not in ("network", "crash"):
            raise SimulationError(f"unknown mode {self.mode!r}")
        rt.sim.process(self._watch(rt), name=f"fault:node:{self.target}")

    def _watch(self, rt: "MapReduceRuntime"):
        if self.at_time is not None:
            yield rt.sim.timeout(self.at_time)
        else:
            while rt.am.reduce_phase_progress() < self.at_progress:
                if rt.am._finished:
                    return
                yield rt.sim.timeout(_POLL)
        victim = self._pick(rt)
        if victim is None:
            return
        self.fired_at = rt.sim.now
        self.victim_name = victim.name
        rt.trace.log("fault_injected", fault=f"node-{self.mode}", node=victim.name)
        if self.mode == "crash":
            rt.cluster.crash_node(victim)
        else:
            rt.cluster.stop_network(victim)

    def _pick(self, rt: "MapReduceRuntime"):
        if isinstance(self.target, int):
            return rt.workers[self.target]
        if self.target == "reducer":
            task = rt.am.reduce_tasks[self.reduce_task_index]
            running = task.running_attempts()
            if running:
                return running[0].node
            # Fall back to any node hosting a reducer.
            for t in rt.am.reduce_tasks:
                if t.running_attempts():
                    return t.running_attempts()[0].node
            return None
        if self.target == "map-only":
            reducer_nodes = {
                a.node for t in rt.am.reduce_tasks for a in t.running_attempts()
            }
            candidates = [
                (len(rt.am.registry.on_node(n)), n)
                for n in rt.workers
                if n.reachable and n not in reducer_nodes
                and len(rt.am.registry.on_node(n)) > 0
            ]
            if not candidates:
                # Every node hosts a reducer: fall back to the node
                # whose loss matters least directly (fewest reducers,
                # most MOFs) so the experiment still exercises the
                # lost-MOF path.
                candidates = [
                    (len(rt.am.registry.on_node(n)), n)
                    for n in rt.workers
                    if n.reachable and len(rt.am.registry.on_node(n)) > 0
                ]
                if not candidates:
                    return None
            candidates.sort(key=lambda cn: (-cn[0], cn[1].node_id))
            return candidates[0][1]
        raise SimulationError(f"unknown target {self.target!r}")


@dataclass
class MapWaveFault:
    """Kill up to ``count`` running MapTask attempts at ``at_time``
    (Fig. 1's N-MapTask-failure experiment)."""

    count: int
    at_time: float
    killed: int = field(default=0, init=False)
    killed_tasks: list = field(default_factory=list, init=False)
    fired_at: float | None = field(default=None, init=False)

    def install(self, rt: "MapReduceRuntime") -> None:
        rt.sim.process(self._watch(rt), name=f"fault:maps:{self.count}")

    def _watch(self, rt: "MapReduceRuntime"):
        yield rt.sim.timeout(self.at_time)
        self.fired_at = rt.sim.now
        for task in rt.am.map_tasks:
            if self.killed >= self.count:
                break
            for attempt in task.running_attempts():
                attempt.kill("injected-oom")
                self.killed += 1
                self.killed_tasks.append(task.name)
                break
        rt.trace.log("fault_injected", fault="map-wave", count=self.killed)


class FaultInjector:
    """Bundle of faults installed together onto one runtime."""

    def __init__(self, *faults) -> None:
        self.faults = list(faults)

    def add(self, fault) -> "FaultInjector":
        self.faults.append(fault)
        return self

    def install(self, rt: "MapReduceRuntime") -> None:
        for f in self.faults:
            f.install(rt)


# -- convenience constructors used by the experiment drivers ----------------

def kill_reduce_at_progress(progress: float, task_index: int = 0) -> TaskFault:
    return TaskFault(TaskType.REDUCE, task_index, progress)


def kill_node_at_time(at_time: float, target: str | int = "reducer", mode: str = "network") -> NodeFault:
    return NodeFault(target=target, at_time=at_time, mode=mode)


def kill_node_at_progress(progress: float, target: str | int = "reducer", mode: str = "network") -> NodeFault:
    return NodeFault(target=target, at_progress=progress, mode=mode)


def kill_maps_at_time(count: int, at_time: float) -> MapWaveFault:
    return MapWaveFault(count=count, at_time=at_time)
