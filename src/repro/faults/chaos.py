"""Seeded chaos campaigns: random fault schedules × policies × workloads,
checked against the simulation-wide invariants.

A campaign is fully determined by ``(campaign seed, trial index)``:
trial ``i`` derives its workload, cluster shape, policy and fault
schedule from ``numpy.random.default_rng([seed, i])``, so the same seed
always regenerates the identical campaign — schedules *and* trace
digests. Trials fan out through the
:class:`~repro.runner.TrialRunner` (``REPRO_JOBS`` parallelism and
caching apply unchanged).

Every trial runs the full invariant suite (:mod:`repro.invariants`).
A violation produces a *reproducer*: a self-contained JSON spec (the
exact fault schedule plus every sampled parameter) that
``python -m repro chaos --replay FILE`` re-executes, after a greedy
minimization pass has shrunk the schedule to the smallest subset of
faults that still violates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.cluster import ClusterSpec
from repro.faults.inject import (
    AMFault,
    EventTrigger,
    FaultInjector,
    MapWaveFault,
    NodeFault,
    PartitionFault,
    RackFault,
    TaskFault,
)
from repro.faults.stragglers import SlowNodeFault
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.mapreduce.tasks import TaskType
from repro.sim.core import SimulationError
from repro.workloads import BENCHMARKS
from repro.yarn.rm import YarnConfig

__all__ = [
    "AM_FAULT_KINDS",
    "CHAOS_POLICIES",
    "FAULT_KINDS",
    "build_fault",
    "generate_trial",
    "minimize_spec",
    "reproducer_path",
    "run_campaign",
    "run_chaos_trial",
    "run_trial_spec",
]

#: Every recovery policy under test, rotated across trial indices.
CHAOS_POLICIES = ("yarn", "alg", "sfm", "alm", "iss")

#: Fault-schedule archetypes, rotated across trial indices so every
#: kind appears regardless of campaign size (gcd(5, 8) = 1 means all
#: 40 policy x kind pairs appear within 40 trials).
FAULT_KINDS = (
    "task-oom",
    "task-oom-recurring",
    "node-crash",
    "node-partition-recover",
    "rack-crash",
    "degraded-node",
    "map-wave",
    "crash-during-recovery",
)

#: Control-plane archetypes, appended to the pool only when the
#: campaign opts in (``am_faults=True`` / ``chaos --am-faults``) so
#: historical campaign seeds — and the frozen chaos scenarios in the
#: golden corpus — keep regenerating byte-identical schedules.
#: gcd(5, 11) = 1 keeps full policy x kind coverage within 55 trials.
AM_FAULT_KINDS = (
    "am-crash",
    "rpc-loss",
    "am-crash-rpc-loss",
)


# -- schedule generation -----------------------------------------------------

def generate_trial(campaign: dict[str, Any], index: int) -> dict[str, Any]:
    """Derive trial ``index``'s complete spec from the campaign seed."""
    rng = np.random.default_rng([int(campaign["seed"]), int(index)])
    scale = float(campaign.get("scale", 1.0))
    # An explicit policy roster widens (or narrows) the rotation; its
    # absence keeps every historical campaign seed regenerating the
    # exact schedules it always did.
    policies = tuple(campaign.get("policies") or CHAOS_POLICIES)
    workload = ("terasort", "wordcount", "secondarysort")[int(rng.integers(3))]
    nodes = int(rng.integers(6, 10))
    spec: dict[str, Any] = {
        "index": index,
        "policy": policies[index % len(policies)],
        "workload": workload,
        "input_gb": round(float(rng.uniform(2.0, 5.0)) * scale, 3),
        "reducers": int(rng.integers(2, 5)),
        "nodes": nodes,
        "racks": 2 if nodes < 8 else int(rng.integers(2, 4)),
        "liveness": float(rng.choice([20.0, 40.0])),
        "runtime_seed": int(rng.integers(1, 2**31 - 1)),
        "hard_timeout": float(campaign.get("hard_timeout", 100_000.0)),
        "stall_timeout": float(campaign.get("stall_timeout", 2_000.0)),
    }
    pool = FAULT_KINDS + (AM_FAULT_KINDS if campaign.get("am_faults") else ())
    kinds = [pool[index % len(pool)]]
    if rng.random() < 0.4:  # sometimes compound two archetypes
        kinds.append(pool[int(rng.integers(len(pool)))])
    spec["faults"] = []
    for kind in kinds:
        spec["faults"].extend(_sample_faults(kind, rng, spec))
    return spec


def _sample_faults(kind: str, rng: np.random.Generator,
                   spec: dict[str, Any]) -> list[dict[str, Any]]:
    workers = spec["nodes"] - 1  # node 0 hosts the RM/NameNode
    if kind == "task-oom":
        return [{
            "kind": "task-oom",
            "task_type": "reduce" if rng.random() < 0.7 else "map",
            "task_index": int(rng.integers(spec["reducers"])),
            "at_progress": round(float(rng.uniform(0.1, 0.9)), 3),
        }]
    if kind == "task-oom-recurring":
        # repeat=2 also OOMs the recovery attempt (fault-during-recovery).
        return [{
            "kind": "task-oom",
            "task_type": "reduce",
            "task_index": int(rng.integers(spec["reducers"])),
            "at_progress": round(float(rng.uniform(0.2, 0.8)), 3),
            "repeat": 2,
        }]
    if kind == "node-crash":
        fault: dict[str, Any] = {
            "kind": "node-crash",
            "target": ("reducer", "map-only", int(rng.integers(workers)))[
                int(rng.integers(3))],
        }
        if rng.random() < 0.5:
            fault["at_progress"] = round(float(rng.uniform(0.2, 0.8)), 3)
        else:
            fault["at_time"] = round(float(rng.uniform(20.0, 150.0)), 1)
        if rng.random() < 0.5:  # power-cycled machine rejoins, disk intact
            fault["duration"] = round(float(rng.uniform(60.0, 200.0)), 1)
        return [fault]
    if kind == "node-partition-recover":
        # Durations straddle the liveness timeout on purpose: some heal
        # before the RM notices, some after (full lost -> rejoin path).
        duration = round(float(rng.uniform(10.0, 4.0 * spec["liveness"])), 1)
        if rng.random() < 0.5 and workers >= 3:
            count = int(rng.integers(2, min(4, workers)))
            picks = rng.choice(workers, size=count, replace=False)
            return [{
                "kind": "partition",
                "node_indices": sorted(int(i) for i in picks),
                "at_time": round(float(rng.uniform(15.0, 120.0)), 1),
                "duration": duration,
            }]
        return [{
            "kind": "node-network",
            "target": int(rng.integers(workers)),
            "at_time": round(float(rng.uniform(15.0, 120.0)), 1),
            "duration": duration,
        }]
    if kind == "rack-crash":
        fault = {
            "kind": "rack",
            "rack_index": int(rng.integers(spec["racks"])),
            "mode": "crash" if rng.random() < 0.5 else "network",
            "at_time": round(float(rng.uniform(20.0, 120.0)), 1),
            "stagger": round(float(rng.uniform(0.0, 5.0)), 2),
        }
        if rng.random() < 0.6:
            fault["count"] = int(rng.integers(1, 3))
        if rng.random() < 0.5:
            fault["duration"] = round(float(rng.uniform(60.0, 200.0)), 1)
        return [fault]
    if kind == "degraded-node":
        fault = {
            "kind": "degraded",
            "node_index": int(rng.integers(workers)),
            "at_time": round(float(rng.uniform(5.0, 80.0)), 1),
            "disk_factor": round(float(rng.uniform(0.05, 0.5)), 3),
            "nic_factor": round(float(rng.uniform(0.2, 1.0)), 3),
        }
        if rng.random() < 0.5:
            fault["duration"] = round(float(rng.uniform(40.0, 150.0)), 1)
        return [fault]
    if kind == "map-wave":
        return [{
            "kind": "map-wave",
            "count": int(rng.integers(1, 4)),
            "at_time": round(float(rng.uniform(2.0, 30.0)), 1),
        }]
    if kind == "crash-during-recovery":
        # First crash by progress; second crash keyed on the trace —
        # "another node dies N seconds after the first node_lost".
        first: dict[str, Any] = {
            "kind": "node-crash",
            "target": "reducer",
            "at_progress": round(float(rng.uniform(0.3, 0.7)), 3),
        }
        second: dict[str, Any] = {
            "kind": "node-crash",
            "target": int(rng.integers(workers)),
            "after": {"kind": "node_lost",
                      "delay": round(float(rng.uniform(5.0, 20.0)), 1)},
        }
        if rng.random() < 0.4:
            second["duration"] = round(float(rng.uniform(80.0, 200.0)), 1)
        return [first, second]
    if kind in ("am-crash", "am-crash-rpc-loss"):
        # The AM knobs live in spec["conf"], not in the fault dict:
        # they are environment (how the relaunched AM recovers), and
        # minimization must not be able to drop them.
        conf = spec.setdefault("conf", {})
        conf["am_recovery"] = "log" if rng.random() < 0.7 else "rerun-all"
        conf["keep_containers_across_am_restart"] = bool(rng.random() < 0.5)
        conf["am_max_attempts"] = int(rng.integers(2, 4))
        fault = {"kind": "am-crash"}
        if rng.random() < 0.6:
            fault["at_progress"] = round(float(rng.uniform(0.2, 0.8)), 3)
        else:
            fault["at_time"] = round(float(rng.uniform(20.0, 150.0)), 1)
        if rng.random() < 0.3:  # sometimes also crash the successor
            fault["repeat"] = 2
        faults = [fault]
        if kind == "am-crash-rpc-loss":
            faults.append(_sample_rpc_loss(rng))
        return faults
    if kind == "rpc-loss":
        return [_sample_rpc_loss(rng)]
    raise SimulationError(f"unknown chaos fault kind {kind!r}")


def _sample_rpc_loss(rng: np.random.Generator) -> dict[str, Any]:
    """A lossy-RPC 'fault': not an injector but a YarnConfig overlay —
    :func:`run_trial_spec` translates it into channel knobs. Keeping it
    in the fault list makes reproducers self-contained and lets
    minimization drop it like any other fault."""
    return {
        "kind": "rpc-loss",
        "drop_prob": round(float(rng.uniform(0.02, 0.15)), 3),
        "delay_prob": round(float(rng.uniform(0.05, 0.25)), 3),
        "max_delay": round(float(rng.uniform(0.5, 3.0)), 2),
        "seed": int(rng.integers(1, 2**31 - 1)),
    }


# -- spec -> injector --------------------------------------------------------

def build_fault(d: dict[str, Any]):
    """Materialise one JSON fault spec as an injector object."""
    kind = d["kind"]
    if kind == "task-oom":
        return TaskFault(
            task_type=TaskType.MAP if d.get("task_type") == "map" else TaskType.REDUCE,
            task_index=int(d.get("task_index", 0)),
            at_progress=float(d.get("at_progress", 0.5)),
            repeat=int(d.get("repeat", 1)),
        )
    if kind in ("node-crash", "node-network"):
        after = EventTrigger(**d["after"]) if "after" in d else None
        return NodeFault(
            target=d.get("target", "reducer"),
            at_time=d.get("at_time"),
            at_progress=d.get("at_progress"),
            after=after,
            mode="crash" if kind == "node-crash" else "network",
            duration=d.get("duration"),
            reduce_task_index=int(d.get("reduce_task_index", 0)),
        )
    if kind == "partition":
        return PartitionFault(
            node_indices=tuple(d["node_indices"]),
            at_time=float(d["at_time"]),
            duration=float(d["duration"]),
        )
    if kind == "rack":
        return RackFault(
            rack_index=int(d["rack_index"]),
            count=d.get("count"),
            at_time=float(d["at_time"]),
            mode=d.get("mode", "crash"),
            stagger=float(d.get("stagger", 0.0)),
            duration=d.get("duration"),
        )
    if kind == "degraded":
        return SlowNodeFault(
            node_index=int(d["node_index"]),
            at_time=float(d["at_time"]),
            disk_factor=float(d.get("disk_factor", 0.1)),
            nic_factor=float(d.get("nic_factor", 1.0)),
            duration=d.get("duration"),
        )
    if kind == "map-wave":
        return MapWaveFault(count=int(d["count"]), at_time=float(d["at_time"]))
    if kind == "am-crash":
        after = EventTrigger(**d["after"]) if "after" in d else None
        return AMFault(
            at_time=d.get("at_time"),
            at_progress=d.get("at_progress"),
            after=after,
            repeat=int(d.get("repeat", 1)),
            repeat_gap=float(d.get("repeat_gap", 30.0)),
        )
    raise SimulationError(f"unknown fault spec kind {kind!r}")


# -- execution ---------------------------------------------------------------

def run_trial_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Run one fully-specified trial; returns outcome + violations."""
    from repro.experiments.common import make_policy
    from repro.invariants import check_invariants, state_probe
    from repro.runner import trace_digest

    wl = BENCHMARKS[spec["workload"]](spec["input_gb"],
                                      num_reducers=spec["reducers"])
    # rpc-loss "faults" are YarnConfig overlays, not injectors; an
    # explicit spec["rpc"] block (scenario corpus) applies on top.
    rpc_kwargs: dict[str, Any] = {}
    fault_dicts: list[dict[str, Any]] = []
    for d in spec["faults"]:
        if d["kind"] == "rpc-loss":
            rpc_kwargs.update(
                rpc_drop_prob=float(d.get("drop_prob", 0.0)),
                rpc_delay_prob=float(d.get("delay_prob", 0.0)),
                rpc_max_delay=float(d.get("max_delay", 2.0)),
                rpc_seed=int(d.get("seed", 0)),
            )
        else:
            fault_dicts.append(d)
    rpc_kwargs.update({f"rpc_{k}": v for k, v in (spec.get("rpc") or {}).items()})
    rt = MapReduceRuntime(
        wl,
        conf=JobConf(**spec["conf"]) if spec.get("conf") else None,
        cluster_spec=ClusterSpec(num_nodes=spec["nodes"], num_racks=spec["racks"],
                                 seed=spec["runtime_seed"]),
        yarn_config=YarnConfig(nm_liveness_timeout=spec["liveness"], **rpc_kwargs),
        policy=make_policy(spec["policy"]),
        job_name=f"chaos-{spec['index']}",
    )
    FaultInjector(*[build_fault(d) for d in fault_dicts]).install(rt)
    result = rt.run(timeout=spec.get("hard_timeout", 100_000.0),
                    stall_timeout=spec.get("stall_timeout", 2_000.0))
    violations = check_invariants(rt, result)
    payload: dict[str, Any] = {
        "spec": spec,
        "success": result.success,
        "elapsed": round(result.elapsed, 3),
        "violations": violations,
        "faults_fired": len(rt.trace.of_kind("fault_injected")),
        "faults_skipped": len(rt.trace.of_kind("fault_skipped")),
        "nodes_lost": result.counters.get("nodes_lost", 0),
        "digest": trace_digest(result.trace),
    }
    if violations:
        payload["state"] = state_probe(rt)
    return payload


def run_chaos_trial(seed: int, campaign: dict[str, Any]) -> dict[str, Any]:
    """:class:`TrialRunner` fan-out target; ``seed`` is the trial index."""
    return run_trial_spec(generate_trial(campaign, seed))


def minimize_spec(
    spec: dict[str, Any],
    violates: Callable[[dict[str, Any]], bool] | None = None,
    floor: int = 1,
) -> dict[str, Any]:
    """Greedily shrink a violating schedule: keep dropping single faults
    while the remainder still violates. O(n^2) runs, n = #faults (small).

    ``violates`` is the oracle — given a candidate spec, does it still
    exhibit the failure? It defaults to "re-run the trial and check the
    invariant suite" (the chaos campaign's oracle); the metamorphic
    verifier (:mod:`repro.verify.metamorphic`) passes its own relation
    check instead, with ``floor=0`` because a relation can fail with no
    faults at all (the bug is then in the fault-free transform).
    """
    if violates is None:
        def violates(candidate: dict[str, Any]) -> bool:
            return bool(run_trial_spec(candidate)["violations"])
    faults = list(spec["faults"])
    changed = True
    while changed and len(faults) > floor:
        changed = False
        for i in range(len(faults)):
            candidate = dict(spec, faults=faults[:i] + faults[i + 1:])
            if violates(candidate):
                faults = candidate["faults"]
                changed = True
                break
    return dict(spec, faults=faults)


# -- campaign driver ---------------------------------------------------------

def reproducer_path(out_dir: str | Path, seed: int, scale: float,
                    campaign_id: str, index: int) -> Path:
    """Reproducer filename for one violating trial. Carries the scale
    and the campaign digest as well as the seed: two campaigns with the
    same seed but different ``--scale`` (or any other spec difference)
    must never overwrite each other's reproducers in a shared ``--out``
    directory."""
    return (Path(out_dir) /
            f"chaos-repro-s{seed}-x{scale:g}-{campaign_id[:8]}-t{index}.json")


def run_campaign(
    seed: int,
    trials: int,
    scale: float = 1.0,
    out_dir: str | Path | None = None,
    minimize: bool = True,
    echo=print,
    store: Any = None,
    strategy: str = "fifo",
    am_faults: bool = False,
    policies: tuple[str, ...] | list[str] | None = None,
) -> dict[str, Any]:
    """Run (or resume) a campaign; write a reproducer per violating
    trial.

    ``store`` selects durability: ``None`` keeps the historical one-shot
    behaviour (an ephemeral in-memory store), a path (or an open
    :class:`~repro.campaign.CampaignStore`) makes the campaign durable —
    every completed trial is checkpointed as it finishes, and calling
    ``run_campaign`` again with the same spec and store (or ``python -m
    repro campaign resume``) re-runs only what is missing.

    Returns a summary dict with per-policy / per-kind coverage counts,
    the violating trial indices, and resume accounting
    (``executed``/``skipped``).
    """
    from repro.campaign import CampaignScheduler, CampaignStore, aggregate_chaos, build_plan
    from repro.runner import atomic_write_text

    spec: dict[str, Any] = {"kind": "chaos", "seed": int(seed),
                            "trials": int(trials), "scale": float(scale),
                            "am_faults": bool(am_faults)}
    if policies:
        from repro.policies import policy_names

        known = set(policy_names())
        unknown = [p for p in policies if p not in known]
        if unknown:
            raise SimulationError(
                f"unknown polic{'ies' if len(unknown) > 1 else 'y'} "
                f"{', '.join(unknown)}; registered: {', '.join(sorted(known))}")
        # Only an explicit roster enters the plan: the default keeps
        # historical campaign ids (and their cached trials) stable.
        spec["policies"] = list(policies)
    plan = build_plan(spec)
    owns_store = not isinstance(store, CampaignStore)
    opened = CampaignStore(store if store is not None else ":memory:") \
        if owns_store else store
    try:
        scheduler = CampaignScheduler(opened, strategy=strategy)
        run_stats = scheduler.run(plan)
        campaign_id = run_stats["campaign_id"]
        summary = aggregate_chaos(opened.payloads(campaign_id))

        reproducers: list[str] = []
        for trial_index, payload in opened.payloads(campaign_id):
            if not payload["violations"]:
                continue
            spec = payload["spec"]
            echo(f"trial {spec['index']}: INVARIANT VIOLATION")
            for v in payload["violations"]:
                echo(f"  - {v}")
            minimized = minimize_spec(spec) if minimize else spec
            repro = {
                "campaign_seed": seed,
                "campaign_id": campaign_id,
                "scale": scale,
                "trial_index": spec["index"],
                "violations": payload["violations"],
                "spec": spec,
                "minimized_faults": minimized["faults"],
            }
            if out_dir is not None:
                path = reproducer_path(out_dir, seed, scale, campaign_id,
                                       spec["index"])
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_text(path, json.dumps(repro, indent=2, sort_keys=True))
                reproducers.append(str(path))
                echo(f"  reproducer written to {path} "
                     f"({len(minimized['faults'])}/{len(spec['faults'])} faults "
                     "after minimization)")
        return {
            "seed": seed,
            "trials": trials,
            "scale": scale,
            "campaign_id": campaign_id,
            "executed": run_stats["executed"],
            "skipped": run_stats["skipped"],
            "wall_seconds": run_stats["wall_seconds"],
            "violations": summary["violations"],
            "violating_trials": summary["violating_trials"],
            "jobs_failed": summary["jobs_failed"],
            "by_policy": summary["by_policy"],
            "by_kind": summary["by_kind"],
            "reproducers": reproducers,
            "digests": summary["digests"],
        }
    finally:
        if owns_store:
            opened.close()
