"""Analytics LogGing (ALG) — paper §III.

A light-weight daemon runs alongside each ReduceTask attempt and
periodically persists the analytics progress:

- **Shuffle/merge stage** (Fig. 6 left & middle columns): a temporary
  in-memory merger flushes in-memory segments to local disk so the
  shuffle progress is durable; the log records the fetched MOF ids and
  the paths of on-disk intermediate files. The log lives on the local
  file system, so it is only usable by a new attempt on the *same*
  node (transient task failure) — exactly the paper's design.
- **Reduce stage** (Fig. 6 right column): the log records the MPQ
  structure (per-file offsets, i.e. the processed fraction) and ALG
  asynchronously flushes the reduce output to HDFS with a configurable
  replication level (node / rack / cluster; Fig. 13 measures this
  cost). Because the log and flushed output are on HDFS, a *migrated*
  attempt on any node can resume from them.

No global coordination is needed: logs are entirely task-local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import MB, Node
from repro.hdfs.hdfs import ReplicationLevel
from repro.mapreduce.reducetask import DiskSegment, ReduceAttempt, ReduceRecoveryState
from repro.mapreduce.tasks import Task
from repro.sim.core import Interrupt, SimulationError
from repro.sim.flows import FlowCancelled

__all__ = ["ALGConfig", "AnalyticsLogStore", "AnalyticsLogger", "LogRecord"]


@dataclass(frozen=True)
class ALGConfig:
    """Knobs of the logging daemon."""

    #: Seconds between logging ticks (the paper sweeps this in Fig. 12).
    frequency: float = 10.0
    #: Replication spread for reduce-stage logs/output (Fig. 13).
    level: ReplicationLevel = ReplicationLevel.RACK
    #: Size of one log record on disk (metadata is tiny).
    record_bytes: float = 1.0 * MB
    #: Pause charged to the on-disk merger while its file list is
    #: snapshotted (the paper pauses rather than waits for completion).
    merger_pause_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise SimulationError("logging frequency must be positive")
        if self.record_bytes < 0 or self.merger_pause_seconds < 0:
            raise SimulationError("record size / pause must be >= 0")


@dataclass
class LogRecord:
    """The newest analytics log for one ReduceTask (Fig. 6)."""

    task_id: int
    stage: str
    time: float
    node: Node
    #: Shuffle/merge-stage payload (local-disk log).
    fetched_map_ids: set[int] = field(default_factory=set)
    disk_segments: list[DiskSegment] = field(default_factory=list)
    #: Reduce-stage payload (HDFS log).
    reduce_fraction: float = 0.0
    on_hdfs: bool = False


class AnalyticsLogStore:
    """Where recovery looks up the newest log per ReduceTask.

    Local (shuffle/merge) records are only served when the requesting
    node is the record's node and the files survive; HDFS (reduce)
    records are always served — their availability is what the
    replicated write paid for.
    """

    def __init__(self) -> None:
        self._local: dict[int, LogRecord] = {}
        self._hdfs: dict[int, LogRecord] = {}

    def put(self, record: LogRecord) -> None:
        if record.on_hdfs:
            self._hdfs[record.task_id] = record
        else:
            self._local[record.task_id] = record

    def local_record(self, task: Task, node: Node) -> LogRecord | None:
        rec = self._local.get(task.task_id)
        if rec is None or rec.node is not node or not node.alive:
            return None
        if not all(seg.exists() for seg in rec.disk_segments):
            return None
        return rec

    def hdfs_record(self, task: Task) -> LogRecord | None:
        return self._hdfs.get(task.task_id)

    def recovery_state_for(self, task: Task, node: Node) -> ReduceRecoveryState | None:
        """Assemble the best restorable state for a new attempt on ``node``."""
        local = self.local_record(task, node)
        hdfs = self.hdfs_record(task)
        if local is None and hdfs is None:
            return None
        state = ReduceRecoveryState()
        if local is not None:
            state.fetched_map_ids = set(local.fetched_map_ids)
            state.disk_segments = list(local.disk_segments)
        if hdfs is not None:
            state.reduce_resume_fraction = hdfs.reduce_fraction
            state.skip_deserialization = True
        return state

    def clear(self, task: Task) -> None:
        self._local.pop(task.task_id, None)
        self._hdfs.pop(task.task_id, None)


class AnalyticsLogger:
    """The per-attempt logging daemon."""

    def __init__(self, store: AnalyticsLogStore, config: ALGConfig | None = None) -> None:
        self.store = store
        self.config = config or ALGConfig()
        #: Count of completed ticks (exposed for tests/benchmarks).
        self.ticks = 0

    def attach(self, attempt: ReduceAttempt) -> None:
        """Spawn the daemon as a child of the attempt (dies with it)."""
        attempt._spawn(self._daemon(attempt), name=f"alg:{attempt.attempt_id}")

    # -- the daemon -------------------------------------------------------------
    def _daemon(self, attempt: ReduceAttempt):
        cfg = self.config
        sim = attempt.sim
        last_reduce_fraction = attempt.reduce_resume_fraction
        poll = min(cfg.frequency, 2.0)
        last_tick = sim.now
        last_stage = attempt.stage
        try:
            while attempt.stage != "done":
                yield sim.timeout(poll)
                stage = attempt.stage
                # Tick on the period — or immediately when the task
                # enters the reduce stage, so a log exists as soon as
                # durable reduce progress exists.
                due = (sim.now - last_tick) >= cfg.frequency
                entered_reduce = stage == "reduce" and last_stage != "reduce"
                last_stage = stage
                if not (due or entered_reduce):
                    continue
                last_tick = sim.now
                if stage in ("shuffle", "merge"):
                    yield from self._log_shuffle(attempt)
                elif stage == "reduce":
                    last_reduce_fraction = yield from self._log_reduce(
                        attempt, last_reduce_fraction)
                self.ticks += 1
                last_stage = attempt.stage
        except (Interrupt, FlowCancelled, SimulationError):
            return

    def _log_shuffle(self, attempt: ReduceAttempt):
        cfg = self.config
        # Temporary in-memory merger: make shuffled-but-in-memory bytes
        # durable. The more frequent the tick, the less there is to
        # flush — the Fig. 12 effect. The snapshot must be *quiescent*
        # (no bytes in memory or mid-flush), otherwise the record's
        # fetched-set would claim data the on-disk files don't hold.
        for _ in range(8):
            yield from attempt.flush_memory()
            while attempt._flushing_bytes > 1.0:
                yield attempt.sim.timeout(0.2)
            if attempt.mem_bytes < 1.0:
                break
        else:
            return  # shuffle too hot to quiesce; skip this tick
        # Capture the snapshot at the quiescent instant (no yields since
        # the check above), then pay the pause + record-write costs.
        record = LogRecord(
            task_id=attempt.task.task_id,
            stage=attempt.stage,
            time=attempt.sim.now,
            node=attempt.node,
            fetched_map_ids=set(attempt.fetched),
            disk_segments=list(attempt.disk_segments),
        )
        yield attempt.sim.timeout(cfg.merger_pause_seconds)
        if cfg.record_bytes > 0:
            fl = attempt.cluster.disk_write(attempt.node, cfg.record_bytes,
                                            name=f"alg-rec:{attempt.attempt_id}")
            yield fl.done
        self.store.put(record)

    def _log_reduce(self, attempt: ReduceAttempt, last_fraction: float):
        cfg = self.config
        cluster = attempt.cluster
        node = attempt.node
        fraction = attempt.reduce_progress_fraction
        # The reduce *output* is already streaming through an HDFS
        # pipeline placed at the ALG replication level (the policy sets
        # it on the attempt), so the hflush at this tick only has to
        # persist the MPQ-offset record — locally and at one replica.
        waits = []
        if cfg.record_bytes > 0:
            # The local hflush and its replica copy start together:
            # batch them into one scheduler update.
            with cluster.flows.batch():
                waits.append(cluster.disk_write(node, cfg.record_bytes,
                                                name=f"alg-hrec:{attempt.attempt_id}").done)
                if cfg.level is not ReplicationLevel.NODE:
                    target = self._replica_target(attempt, cfg.level)
                    if target is not None:
                        waits.append(cluster.net_transfer(
                            node, target, cfg.record_bytes,
                            name=f"alg-rec-repl:{attempt.attempt_id}",
                            read_src_disk=False, write_dst_disk=True,
                        ).done)
        for w in waits:
            yield w
        self.store.put(LogRecord(
            task_id=attempt.task.task_id,
            stage="reduce",
            time=attempt.sim.now,
            node=node,
            reduce_fraction=fraction,
            on_hdfs=True,
        ))
        return fraction

    def _replica_target(self, attempt: ReduceAttempt, level: ReplicationLevel) -> Node | None:
        node = attempt.node
        hdfs = attempt.am.hdfs
        if level is ReplicationLevel.RACK:
            pool = [n for n in hdfs.datanodes
                    if n.reachable and n is not node and n.rack is node.rack]
        else:
            pool = [n for n in hdfs.datanodes
                    if n.reachable and n.rack is not node.rack]
            if not pool:
                pool = [n for n in hdfs.datanodes if n.reachable and n is not node]
        if not pool:
            return None
        return pool[int(attempt.cluster.rng.integers(len(pool)))]
