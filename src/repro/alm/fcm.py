"""Fast Collective Merging (FCM) — paper §IV-A.

A recovery-mode ReduceTask execution that enlists every node holding
MOF segments for the failed partition:

1. Each participant organises its local segments into a Local-MPQ and
   pre-merges them (local disk read + merge CPU, all nodes in
   parallel).
2. The recovering reducer builds a Global-MPQ whose entries are the
   participants' merged streams and pipelines shuffle, merge and
   reduce: participants stream over the network straight into the
   reduce function — **no intermediate data ever touches the
   recovering node's disk**.

Recovery time is therefore governed by max(slowest participant's local
pre-merge, the recoverer's NIC, reduce CPU, output write) instead of
the serial disk-heavy shuffle->spill->merge->reduce of a stock restart.
The paper advocates FCM only for recovery, not for normal execution,
because of its synchronisation cost — modelled here as a fixed setup
charge plus a per-participant bookkeeping charge.
"""

from __future__ import annotations

from repro.cluster.node import MB
from repro.mapreduce.reducetask import ReduceAttempt
from repro.mapreduce.tasks import TaskFailed
from repro.sim.flows import FlowCancelled

__all__ = ["FCMReduceAttempt", "FCM_SETUP_SECONDS", "FCM_PER_PARTICIPANT_SECONDS"]

#: Fixed synchronisation cost to establish the Local-/Global-MPQs.
FCM_SETUP_SECONDS = 2.0
#: Bookkeeping cost per participant node.
FCM_PER_PARTICIPANT_SECONDS = 0.1
#: Participants dismantle an orphaned Local-MPQ after this long without
#: a request from the recovering ReduceTask (paper §IV-A1). State-only
#: in this model: Local-MPQs hold no disk space.
FCM_DISMANTLE_TIMEOUT = 30.0


class FCMReduceAttempt(ReduceAttempt):
    """A recovering ReduceTask executing in FCM mode."""

    @property
    def progress(self) -> float:
        if self.stage == "fcm-wait":
            return 0.0
        if self.stage == "fcm":
            resume = self.reduce_resume_fraction
            if self._reduce_cpu_started is not None and self._reduce_cpu_seconds > 0:
                live = min(1.0, (self.sim.now - self._reduce_cpu_started) / self._reduce_cpu_seconds)
            else:
                live = self._fcm_frac
            return resume + (1 - resume) * live
        return super().progress

    @property
    def total_input_bytes(self) -> float:
        """FCM keeps nothing on local disk; report the planned stream."""
        total = getattr(self, "_fcm_total", None)
        if total is not None:
            return total
        return super().total_input_bytes

    def run(self):
        conf = self.am.conf
        wl = self.am.workload
        self._fcm_frac = 0.0
        yield from self._step(self.sim.timeout(conf.task_startup_seconds))

        if self.recovery is not None:
            self.reduce_resume_fraction = self.recovery.reduce_resume_fraction

        # Wait until every map's MOF is registered (SFM re-executes lost
        # maps at high priority, so this wait is short and bounded by
        # the map-regeneration time the paper accepts in Fig. 10).
        self.stage = "fcm-wait"
        self.am.register_reducer(self)
        self._registered = True
        try:
            while len(self._known_mofs()) < self.num_maps:
                yield from self._step(self.sim.timeout(1.0))
        finally:
            self.am.unregister_reducer(self)
            self._registered = False

        self.stage = "fcm"
        # FCM progress form: resume + (1-resume)*live, live = CPU part
        # (flows deliberately excluded — the mirror's ``fcm`` flag makes
        # the vectorized kernel reproduce exactly that).
        self._col_set(reduce_live=True, fcm=True,
                      resume=self.reduce_resume_fraction)
        by_node = self._plan_participants()
        self._fcm_total = sum(by_node.values())
        self.am.trace.log("fcm_start", attempt=self.attempt_id,
                          participants=len(by_node))

        # Synchronisation/bookkeeping cost of establishing the MPQs.
        setup = FCM_SETUP_SECONDS + FCM_PER_PARTICIPANT_SECONDS * len(by_node)
        yield from self._step(self.cluster.compute(self.node, setup))

        work_frac = 1.0 - self.reduce_resume_fraction
        total_in = sum(by_node.values()) * work_frac
        waits = []
        # Participants: each loads its segments into the memory-resident
        # Local-MPQ (a pure disk read), pre-merges (CPU) and streams to
        # our Global-MPQ (a pure network flow). The three overlap — the
        # disk read is NOT chained into the network flow, which is what
        # keeps many concurrent FCM recoveries from interlocking all
        # devices into one max-min bottleneck.
        # All participants start streaming at this same instant: batch
        # the whole fan-out so the 2·participants flow admissions share
        # one progress advance and one deferred rate recompute.
        with self.cluster.flows.batch():
            for node_id, size in by_node.items():
                size *= work_frac
                if size <= 0:
                    continue
                src = self.cluster.node(node_id)
                try:
                    fl_load = self._flow(self.cluster.disk_read(
                        src, size, name=f"fcm-load:{self.attempt_id}@{src.name}"))
                    fl_net = self._flow(self.cluster.net_transfer(
                        src, self.node, size,
                        name=f"fcm:{self.attempt_id}<-{src.name}",
                        read_src_disk=False, write_dst_disk=False,
                    ))
                except Exception as exc:
                    raise TaskFailed("fcm-participant-unreachable") from exc
                waits.append(fl_load.done)
                waits.append(fl_net.done)
                # Participant-side pre-merge CPU overlaps its own streaming;
                # charge it as a parallel timeout rather than serialising.
                waits.append(self.cluster.compute(src, wl.merge_cpu_per_mb * size / MB))

        # Recoverer: reduce CPU + HDFS output, overlapped with the
        # incoming streams (the Global-MPQ pipeline).
        cpu_s = wl.reduce_cpu_per_mb * total_in / MB
        self._reduce_cpu_seconds = cpu_s
        self._reduce_cpu_started = self.sim.now
        self._col_set(cpu_start=self._reduce_cpu_started, cpu_secs=cpu_s)
        if cpu_s > 0:
            waits.append(self.cluster.compute(self.node, cpu_s))
        out_bytes = total_in * wl.reduce_selectivity
        if out_bytes > 0:
            out_path = f"out/{self.am.job_name}/{self.attempt_id}"
            writer = self.am.hdfs.write(self.node, out_path, out_bytes,
                                        replication=conf.output_replication,
                                        overwrite=True)
            self._children.append(writer)
            waits.append(writer)
        try:
            yield from self._step(self.sim.all_of(waits))
        except FlowCancelled as exc:
            # A participant died mid-recovery. FCM holds no local state,
            # so the clean response is to fail this attempt and let the
            # policy launch a fresh one (participants dismantle their
            # Local-MPQs after FCM_DISMANTLE_TIMEOUT).
            raise TaskFailed("fcm-participant-lost") from exc
        self._fcm_frac = 1.0
        self.stage = "done"
        self._col_set(prog_base=1.0, prog_span=0.0, reduce_live=False, fcm=False)
        self.shuffled_bytes = total_in
        return {"output_bytes": out_bytes, "input_bytes": total_in, "mode": "fcm"}

    # -- helpers ----------------------------------------------------------
    def _known_mofs(self):
        mofs = []
        for map_id in range(self.num_maps):
            mof = self.am.registry.get(map_id)
            if mof is not None and mof.node.reachable:
                mofs.append(mof)
        return mofs

    def _plan_participants(self) -> dict[int, float]:
        """Partition bytes we need, grouped by holder node."""
        by_node: dict[int, float] = {}
        for mof in self._known_mofs():
            by_node.setdefault(mof.node.node_id, 0.0)
            by_node[mof.node.node_id] += mof.partition(self.partition)
        return by_node
