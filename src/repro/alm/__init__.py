"""The paper's contribution: the Analytics Logging and Migration (ALM)
fault-tolerance framework.

- :mod:`~repro.alm.alg` — **Analytics LogGing**: a non-intrusive,
  task-level logging daemon that periodically snapshots ReduceTask
  progress (shuffle/merge stage: fetched MOF ids + intermediate file
  paths, kept on the local file system; reduce stage: MPQ offsets +
  flushed output, replicated to HDFS at a configurable level).
- :mod:`~repro.alm.fcm` — **Fast Collective Merging**: recovery-mode
  ReduceTask execution where every participant node pre-merges its
  local MOF segments (Local-MPQ) and streams into the recovering
  reducer's Global-MPQ, fully in memory, pipelining shuffle/merge/
  reduce.
- :mod:`~repro.alm.sfm` — **Speculative Fast Migration** and the
  enhanced recovery scheduling policy (Algorithm 1): proactive MapTask
  re-execution on node loss, same-node relaunch for transient failures,
  speculative FCM recovery attempts (capped), and the wait-don't-fail
  directive that cracks down spatial failure amplification.
"""

from repro.alm.alg import ALGConfig, AnalyticsLogStore, AnalyticsLogger, LogRecord
from repro.alm.fcm import FCMReduceAttempt
from repro.alm.sfm import ALMConfig, ALMPolicy

__all__ = [
    "ALGConfig",
    "ALMConfig",
    "ALMPolicy",
    "AnalyticsLogStore",
    "AnalyticsLogger",
    "FCMReduceAttempt",
    "LogRecord",
]
