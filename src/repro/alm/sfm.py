"""Speculative Fast Migration and the enhanced recovery scheduling
policy (paper §IV-B, Algorithm 1).

Behavioural summary, mapped to Algorithm 1's lines:

- Lines 5-7: every failed MapTask *and every completed map whose MOFs
  were lost* is re-executed immediately on a healthy node at high
  priority. Stock YARN waits for fetch-failure reports instead; this
  proactive regeneration is what kills both temporal and spatial
  amplification.
- Lines 9-13: a ReduceTask that failed while its node is still alive
  (transient failure, e.g. OOM) is relaunched **on the same node**, up
  to ``limit_local`` attempts, so it can resume from ALG's local logs.
- Lines 14-21: additionally a speculative recovery attempt is spawned
  on a healthy node, in FCM mode while the per-job FCM budget
  (``fcm_cap``, default 10) lasts, else in regular mode. When the node
  is actually dead only this branch fires: that is the migration.
- §V-C: reducers whose fetch rounds fail against a node the AM knows is
  dead/regenerating are told to *wait* instead of accumulating fetch
  failures — no reducer suicide, no amplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alm.alg import ALGConfig, AnalyticsLogStore, AnalyticsLogger
from repro.alm.fcm import FCMReduceAttempt
from repro.cluster.node import Node
from repro.mapreduce.recovery import RecoveryPolicy
from repro.mapreduce.reducetask import ReduceAttempt
from repro.mapreduce.tasks import Task, TaskType
from repro.sim.core import SimulationError

__all__ = ["ALMConfig", "ALMPolicy"]


@dataclass(frozen=True)
class ALMConfig:
    """Feature switches of the ALM framework.

    The paper evaluates three configurations: ALG only (Fig. 8,
    11-13), SFM only (Figs. 9, 10, 14, Table II) and SFM+ALG
    (Fig. 15). Both default on.
    """

    enable_alg: bool = True
    enable_sfm: bool = True
    alg: ALGConfig = field(default_factory=ALGConfig)
    #: Max concurrent FCM-mode tasks per job (Algorithm 1 line 16).
    fcm_cap: int = 10
    #: Same-node relaunch budget for transient failures (line 10).
    limit_local: int = 2
    #: Max concurrent attempts per reduce task (line 14's bound).
    max_parallel_attempts: int = 2
    # -- ablation switches (both on in the paper's SFM) ---------------------
    #: Re-execute a dead node's completed maps immediately on detection
    #: (Algorithm 1 lines 5-7). Off = stock YARN's report-driven reruns.
    proactive_regeneration: bool = True
    #: Tell reducers to wait for regenerating MOFs instead of counting
    #: fetch failures (§V-C). Off = stock accounting (amplification).
    wait_dont_fail: bool = True

    def __post_init__(self) -> None:
        if self.fcm_cap < 0 or self.limit_local < 0:
            raise SimulationError("caps must be >= 0")
        if not (self.enable_alg or self.enable_sfm):
            raise SimulationError("enable at least one of ALG / SFM")


class ALMPolicy(RecoveryPolicy):
    """The paper's recovery policy, pluggable into the MRAppMaster."""

    def __init__(self, config: ALMConfig | None = None) -> None:
        super().__init__()
        self.config = config or ALMConfig()
        self.log_store = AnalyticsLogStore()
        self.logger = AnalyticsLogger(self.log_store, self.config.alg)
        #: Nodes whose MOFs are known lost and being regenerated.
        self.regenerating: set[int] = set()

    @property
    def name(self) -> str:  # type: ignore[override]
        cfg = self.config
        if cfg.enable_alg and cfg.enable_sfm:
            return "alm"
        return "alg" if cfg.enable_alg else "sfm"

    # -- attempt construction ------------------------------------------------
    def make_reduce_attempt(self, task: Task, container, mode: str = "regular",
                            use_logs: bool = True, **kwargs):
        recovery = None
        if self.config.enable_alg and use_logs:
            recovery = self.log_store.recovery_state_for(task, container.node)
        if mode == "fcm":
            return FCMReduceAttempt(self.am, task, container, recovery=recovery)
        return ReduceAttempt(self.am, task, container, recovery=recovery)

    def on_reduce_attempt_started(self, attempt) -> None:
        if self.config.enable_alg and not isinstance(attempt, FCMReduceAttempt):
            self.logger.attach(attempt)

    def reduce_output_level(self):
        """ALG places the reduce output pipeline at its replication
        level (§III-B: 'local and rack replicas' by default)."""
        if self.config.enable_alg:
            return self.config.alg.level
        return None

    # -- Algorithm 1 ------------------------------------------------------------
    def on_task_failed(self, task: Task, attempt, reason: str) -> None:
        am = self.am
        if task.task_type is TaskType.MAP:
            # Line 6: higher-priority re-execution on a healthy node.
            am.schedule_task(task, priority=am.conf.recovery_map_priority,
                             exclude=[attempt.node] if not attempt.node.reachable else None)
            return
        self._recover_reduce(task, failed_node=attempt.node)

    def _recover_reduce(self, task: Task, failed_node: Node | None) -> None:
        am = self.am
        cfg = self.config
        live = len(task.running_attempts()) + task.outstanding_requests

        # Lines 9-13: transient failure -> relaunch on the original node
        # to reuse local ALG logs. The whole point of the same-node
        # relaunch is those logs; without ALG (or without a usable
        # record) it would only duplicate the speculative attempt's
        # traffic — a stampede under mass concurrent failures.
        has_local_log = (
            cfg.enable_alg and failed_node is not None
            and self.log_store.local_record(task, failed_node) is not None
        )
        if (has_local_log and failed_node.reachable
                and not am.rm.is_lost(failed_node)
                and self._attempts_on(task, failed_node) <= cfg.limit_local
                and live < cfg.max_parallel_attempts):
            am.schedule_task(
                task, priority=am.conf.recovery_reduce_priority,
                preferred=[failed_node],
                attempt_kwargs={"mode": "regular"},
            )
            live += 1

        if not cfg.enable_sfm:
            if live == 0:
                # ALG without SFM falls back to stock re-execution
                # (still resuming from logs where possible).
                am.schedule_task(task, priority=am.conf.reduce_priority,
                                 attempt_kwargs={"mode": "regular"})
            return

        # Lines 14-21: speculative recovery attempt on a healthy node.
        if live < cfg.max_parallel_attempts:
            mode = "fcm" if self._fcm_tasks_running() < cfg.fcm_cap else "regular"
            am.schedule_task(
                task, priority=am.conf.recovery_reduce_priority,
                exclude=[failed_node] if failed_node is not None else None,
                attempt_kwargs={"mode": mode, "speculative": True},
            )

    def on_node_lost(self, node: Node) -> None:
        am = self.am
        sfm = self.config.enable_sfm
        if sfm and self.config.proactive_regeneration:
            # Lines 5-7 + §IV-B: proactively regenerate every MOF that
            # lived on the dead node, at high priority, before reducers
            # stall. (ALG-only keeps stock YARN's blindness here.)
            self._start_regeneration(node)
        # Re-run tasks whose running attempt died with the node; under
        # SFM its ReduceTasks migrate with speculative FCM recovery.
        for task in am.tasks_running_on(node):
            if task.is_finished or task.running_attempts() or task.outstanding_requests:
                continue
            if task.task_type is TaskType.MAP:
                prio = am.conf.recovery_map_priority if sfm else am.conf.map_priority
                am.schedule_task(task, priority=prio, exclude=[node])
            elif sfm:
                self._recover_reduce(task, failed_node=node)
            else:
                am.schedule_task(task, priority=am.conf.reduce_priority,
                                 attempt_kwargs={"mode": "regular"})

    def on_node_rejoined(self, node: Node) -> None:
        # The host is reachable again: stop steering reducers into the
        # wait-for-regeneration path for it. In-flight map reruns still
        # complete and re-register their MOFs either way.
        self.regenerating.discard(node.node_id)

    def _start_regeneration(self, node: Node) -> None:
        am = self.am
        if node.node_id in self.regenerating:
            return
        self.regenerating.add(node.node_id)
        lost_maps = am.completed_maps_on(node)
        if lost_maps:
            am.trace.log("sfm_regenerate", node=node.name, maps=len(lost_maps))
        for task in lost_maps:
            am.rerun_map(task, priority=am.conf.recovery_map_priority)

    # -- fetch-failure handling (§V-C) ----------------------------------------
    def on_fetch_failure_report(self, map_task: Task, report_count: int) -> None:
        if not self.config.enable_sfm:
            # ALG-only keeps stock behaviour.
            if report_count >= self.am.conf.map_refetch_reports:
                self.am.rerun_map(map_task)
            return
        # SFM treats the first report against an unreachable host as
        # node-failure evidence and regenerates immediately.
        mof = self.am.registry.get(map_task.task_id)
        if mof is not None and not mof.node.reachable:
            self._start_regeneration(mof.node)
        elif report_count >= self.am.conf.map_refetch_reports:
            self.am.rerun_map(map_task)

    def on_fetch_giveup(self, attempt, host: Node, map_ids: list[int]) -> str:
        if not self.config.enable_sfm or not self.config.wait_dont_fail:
            return "report"
        if host.node_id in self.regenerating or self.am.rm.is_lost(host):
            return "wait"
        if not host.reachable:
            # The AM can see the host is unreachable the moment a
            # reducer complains: start regenerating and tell the reducer
            # to wait (the paper's wait-until-regenerated directive).
            self._start_regeneration(host)
            return "wait"
        return "report"

    # -- helpers -------------------------------------------------------------
    def _attempts_on(self, task: Task, node: Node) -> int:
        return sum(1 for a in task.attempts if a.node is node)

    def _fcm_tasks_running(self) -> int:
        count = 0
        for task in self.am.reduce_tasks:
            for a in task.running_attempts():
                if isinstance(a, FCMReduceAttempt):
                    count += 1
        return count

    def on_job_finished(self) -> None:
        self.regenerating.clear()
