"""Durable, resumable campaign orchestration.

The paper's thesis — restart-from-scratch recovery amplifies failures;
log progress so recovery resumes instead of repeating — applied to our
own harness: a sqlite-backed trial store (:mod:`~repro.campaign.store`)
records every trial as it completes, a scheduler
(:mod:`~repro.campaign.scheduler`) drains trial queues through the
:class:`~repro.runner.TrialRunner` pools with fifo/priority/dependency
strategies, and campaign kinds (:mod:`~repro.campaign.plans`) rebuild a
runnable plan from nothing but the stored spec, so

    python -m repro campaign resume --store sweeps.db

picks a killed 100k-trial sweep up exactly where it died, re-running
nothing that already completed.
"""

from repro.campaign.plans import (
    aggregate_chaos,
    aggregate_payloads,
    build_plan,
    resolve_function,
)
from repro.campaign.scheduler import (
    STRATEGIES,
    CampaignPlan,
    CampaignScheduler,
    TrialSpec,
)
from repro.campaign.store import CampaignStore, StoreError

__all__ = [
    "STRATEGIES",
    "CampaignPlan",
    "CampaignScheduler",
    "CampaignStore",
    "StoreError",
    "TrialSpec",
    "aggregate_chaos",
    "aggregate_payloads",
    "build_plan",
    "resolve_function",
]
