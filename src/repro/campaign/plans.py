"""Campaign kinds: from a durable JSON spec to a runnable plan.

A campaign *spec* is a plain JSON document with a ``kind`` field; it is
what the store persists, so resume needs nothing but the store file:
``build_plan(stored_spec)`` reconstructs the exact trial family.

Kinds:

``chaos``
    a seeded chaos campaign (:mod:`repro.faults.chaos`): ``seed``,
    ``trials``, ``scale``;
``verify-matrix``
    the differential scenario × implementation matrix
    (:mod:`repro.verify.differential`): a ``jobs`` list of
    ``[scenario, kernel, scheduler, mutate]`` rows;
``function``
    any module-level ``fn(seed, **kwargs)`` named by dotted path, with
    optional per-seed ``priority`` and ``depends_on`` maps — the
    generic surface the scheduler strategies are exercised through.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Iterable

from repro.campaign.scheduler import CampaignPlan, TrialSpec
from repro.campaign.store import StoreError

__all__ = [
    "aggregate_chaos",
    "aggregate_payloads",
    "build_plan",
    "resolve_function",
]


def resolve_function(dotted: str) -> Callable:
    """Import ``pkg.mod:name`` (or ``pkg.mod.name``) to a callable."""
    if ":" in dotted:
        module_name, attr = dotted.split(":", 1)
    else:
        module_name, _, attr = dotted.rpartition(".")
    if not module_name:
        raise StoreError(f"not a dotted function path: {dotted!r}")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in attr.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise StoreError(f"cannot resolve campaign function {dotted!r}: {exc}") from exc
    if not callable(obj):
        raise StoreError(f"campaign function {dotted!r} is not callable")
    return obj


def _chaos_plan(spec: dict[str, Any]) -> CampaignPlan:
    from repro.faults.chaos import run_chaos_trial

    seed = int(spec["seed"])
    trials = int(spec["trials"])
    scale = float(spec.get("scale", 1.0))
    am_faults = bool(spec.get("am_faults", False))
    policies = tuple(str(p) for p in (spec.get("policies") or ()))
    campaign = {"seed": seed, "scale": scale}
    if am_faults:
        campaign["am_faults"] = True
    if policies:
        # Explicit roster only: its absence keeps historical specs (and
        # their experiment keys / cached trials) byte-stable.
        campaign["policies"] = list(policies)
    for key in ("hard_timeout", "stall_timeout"):
        if key in spec:
            campaign[key] = float(spec[key])
    plan_spec = dict(spec, kind="chaos", seed=seed, trials=trials, scale=scale,
                     am_faults=am_faults)
    experiment = f"chaos:{seed}:{scale}" + (":am" if am_faults else "")
    if policies:
        plan_spec["policies"] = list(policies)
        experiment += ":" + ",".join(policies)
    return CampaignPlan(
        spec=plan_spec,
        experiment=experiment,
        fn=run_chaos_trial,
        kwargs={"campaign": campaign},
        trials=[TrialSpec(i) for i in range(trials)],
    )


def _matrix_plan(spec: dict[str, Any]) -> CampaignPlan:
    from repro.verify.differential import run_matrix_trial

    jobs = tuple(tuple(row) for row in spec["jobs"])
    return CampaignPlan(
        spec=dict(spec, kind="verify-matrix", jobs=[list(row) for row in jobs]),
        experiment="verify-matrix",
        fn=run_matrix_trial,
        kwargs={"jobs": jobs},
        trials=[TrialSpec(i) for i in range(len(jobs))],
    )


def _function_plan(spec: dict[str, Any]) -> CampaignPlan:
    fn = resolve_function(spec["fn"])
    seeds = [int(s) for s in spec["seeds"]]
    priority = {int(k): int(v) for k, v in (spec.get("priority") or {}).items()}
    depends = {int(k): tuple(int(d) for d in v)
               for k, v in (spec.get("depends_on") or {}).items()}
    return CampaignPlan(
        spec=dict(spec, kind="function"),
        experiment=spec.get("experiment", spec["fn"]),
        fn=fn,
        kwargs=dict(spec.get("kwargs") or {}),
        trials=[TrialSpec(s, priority.get(s, 0), depends.get(s, ())) for s in seeds],
    )


_KINDS: dict[str, Callable[[dict[str, Any]], CampaignPlan]] = {
    "chaos": _chaos_plan,
    "verify-matrix": _matrix_plan,
    "function": _function_plan,
}


def build_plan(spec: dict[str, Any]) -> CampaignPlan:
    """Materialise a campaign spec as a runnable plan."""
    kind = spec.get("kind")
    builder = _KINDS.get(kind)
    if builder is None:
        raise StoreError(
            f"unknown campaign kind {kind!r}; choose from {sorted(_KINDS)}")
    return builder(spec)


# -- incremental aggregation -------------------------------------------------

def aggregate_chaos(payloads: Iterable[tuple[int, dict[str, Any]]]) -> dict[str, Any]:
    """Fold chaos trial payloads one row at a time (stream straight off
    the store cursor — a 100k-trial campaign never materialises in
    memory) into the campaign summary counters."""
    by_policy: dict[str, int] = {}
    by_kind: dict[str, int] = {}
    violating: list[int] = []
    jobs_failed = 0
    digests: list[str] = []
    done = 0
    for _seed, payload in payloads:
        done += 1
        spec = payload["spec"]
        by_policy[spec["policy"]] = by_policy.get(spec["policy"], 0) + 1
        for f in spec["faults"]:
            by_kind[f["kind"]] = by_kind.get(f["kind"], 0) + 1
        if not payload["success"]:
            jobs_failed += 1
        if payload["violations"]:
            violating.append(spec["index"])
        digests.append(payload["digest"])
    return {
        "done": done,
        "violations": len(violating),
        "violating_trials": violating,
        "jobs_failed": jobs_failed,
        "by_policy": by_policy,
        "by_kind": by_kind,
        "digests": digests,
    }


def aggregate_payloads(kind: str,
                       payloads: Iterable[tuple[int, dict[str, Any]]],
                       ) -> dict[str, Any]:
    """Kind-aware incremental aggregation for ``campaign status`` /
    ``export``: chaos campaigns get the full counter summary, everything
    else a generic success/digest fold."""
    if kind == "chaos":
        return aggregate_chaos(payloads)
    done = succeeded = 0
    for _seed, payload in payloads:
        done += 1
        if payload.get("success", True):
            succeeded += 1
    return {"done": done, "succeeded": succeeded}
