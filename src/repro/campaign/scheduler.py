"""The campaign scheduler: drain a queue of trial specs through the
:class:`~repro.runner.TrialRunner` pools, checkpointing every completed
trial into the :class:`~repro.campaign.store.CampaignStore` so a killed
campaign resumes from where it died and re-runs nothing.

Strategies (after AWorld's ``ScheduledTask`` shapes):

``fifo``
    submission order — the chaos/verify default;
``priority``
    higher :attr:`TrialSpec.priority` first (stable within a priority);
``dependency``
    only trials whose ``depends_on`` seeds are complete are dispatched,
    ready trials ordered by priority then submission; an unsatisfiable
    queue (cycle or dangling dependency) is a hard error naming the
    stuck seeds.

Dispatch happens in bounded *waves* (``batch_size``, default scaled to
the runner's parallelism): the checkpoint granularity under parallel
fan-out is one worker chunk of one wave, so a SIGKILL loses at most the
wave in flight — never completed, recorded trials.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.campaign.store import CampaignStore, StoreError
from repro.runner import TrialRunner, spec_digest

__all__ = ["CampaignScheduler", "StoreError", "STRATEGIES", "TrialSpec"]

STRATEGIES = ("fifo", "priority", "dependency")


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable trial: the seed passed to the campaign's trial
    function, plus scheduling metadata."""

    seed: int
    priority: int = 0
    depends_on: tuple[int, ...] = ()


@dataclass
class CampaignPlan:
    """Everything the scheduler needs to run (or resume) a campaign:
    the durable JSON ``spec`` it was built from, the runner trial family
    ``(experiment, fn, kwargs)``, and the trial queue."""

    spec: dict[str, Any]
    experiment: str
    fn: Callable[..., dict[str, Any]]
    kwargs: dict[str, Any] = field(default_factory=dict)
    trials: list[TrialSpec] = field(default_factory=list)

    def campaign_id(self) -> str:
        """The durable identity: the runner's ``spec_digest`` of the
        trial family (which also folds in the implementation-mode
        environment). ``None`` — an unnameable fn/kwargs — cannot be
        durably keyed, so it is a hard error here rather than a silent
        cache skip as in the runner."""
        digest = spec_digest(self.experiment, self.fn, self.kwargs)
        if digest is None:
            raise StoreError(
                f"campaign {self.experiment!r} is not durable: its trial "
                "function or kwargs have no stable name (lambda/closure?)")
        return digest


class CampaignScheduler:
    """Drains a :class:`CampaignPlan` through a :class:`TrialRunner`,
    checkpointing into ``store`` as each trial completes."""

    def __init__(
        self,
        store: CampaignStore,
        runner: TrialRunner | None = None,
        strategy: str = "fifo",
        batch_size: int | None = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise StoreError(
                f"unknown scheduling strategy {strategy!r}; choose from {STRATEGIES}")
        self.store = store
        self.runner = runner or TrialRunner()
        self.strategy = strategy
        self.batch_size = batch_size or max(16, 4 * self.runner.jobs)

    # -- public API ---------------------------------------------------------
    def run(self, plan: CampaignPlan, echo: Callable[[str], None] = lambda _: None,
            ) -> dict[str, Any]:
        """Run ``plan`` to completion, skipping every trial the store
        already holds. Returns a summary with ``executed`` (fresh runs)
        and ``skipped`` (store hits) counts. On ``KeyboardInterrupt``
        (or a raising trial) the campaign is checkpointed — completed
        trials are already recorded — and the exception re-raised; a
        later :meth:`run` of the same plan picks up where it stopped.
        """
        campaign_id = plan.campaign_id()
        self.store.register(campaign_id, plan.spec)

        done = self.store.completed_seeds(campaign_id)
        queue = [t for t in plan.trials if t.seed not in done]
        skipped = len(plan.trials) - len(queue)
        executed = 0
        t0 = time.perf_counter()

        def on_result(result) -> None:
            nonlocal executed
            self.store.record_trial(campaign_id, result.seed, result.payload,
                                    result.wall_seconds)
            if not result.cached:
                executed += 1

        try:
            while queue:
                batch = self._take_batch(queue, done)
                self.runner.run(plan.experiment, plan.fn,
                                [t.seed for t in batch], plan.kwargs,
                                on_result=on_result)
                done.update(t.seed for t in batch)
                echo(f"  campaign {campaign_id[:12]}: "
                     f"{len(done)}/{len(plan.trials)} trials done")
        except KeyboardInterrupt:
            self.store.mark_status(campaign_id, "running", "interrupted")
            raise
        except Exception as exc:
            self.store.mark_status(campaign_id, "running",
                                   f"{type(exc).__name__}: {exc}")
            raise

        self.store.mark_status(campaign_id, "complete")
        wall = time.perf_counter() - t0
        return {
            "campaign_id": campaign_id,
            "experiment": plan.experiment,
            "strategy": self.strategy,
            "trials": len(plan.trials),
            "executed": executed,
            "skipped": skipped,
            "wall_seconds": round(wall, 3),
            "trials_per_sec": round(executed / wall, 3) if wall > 0 else 0.0,
            "status": "complete",
        }

    # -- strategies ---------------------------------------------------------
    def _take_batch(self, queue: list[TrialSpec], done: set[int]) -> list[TrialSpec]:
        """Pop the next wave off ``queue`` per the strategy. ``queue``
        holds only not-yet-completed trials, in submission order."""
        if self.strategy == "fifo":
            batch, queue[:] = queue[:self.batch_size], queue[self.batch_size:]
            return batch
        if self.strategy == "priority":
            order = sorted(range(len(queue)),
                           key=lambda i: (-queue[i].priority, i))
            picks = order[:self.batch_size]
            batch = [queue[i] for i in picks]
            queue[:] = [t for i, t in enumerate(queue) if i not in set(picks)]
            return batch
        # dependency: only trials whose deps are all complete are ready.
        ready = [i for i, t in enumerate(queue)
                 if all(dep in done for dep in t.depends_on)]
        if not ready:
            stuck = ", ".join(str(t.seed) for t in queue[:8])
            raise StoreError(
                f"dependency deadlock: no runnable trial among {len(queue)} "
                f"pending (cycle or dangling dependency; stuck seeds: {stuck})")
        order = sorted(ready, key=lambda i: (-queue[i].priority, i))
        picks = set(order[:self.batch_size])
        batch = [queue[i] for i in order[:self.batch_size]]
        queue[:] = [t for i, t in enumerate(queue) if i not in picks]
        return batch
