"""The durable campaign store: sqlite-backed, crash-safe, resumable.

One store file holds any number of campaigns. A campaign is identified
by the :func:`repro.runner.spec_digest` of its trial family —
``(experiment, fn, kwargs)`` plus the implementation-mode environment —
so the identity that already keys the runner's disk memoization also
keys durability: re-submitting the same campaign spec maps onto the
same rows, and a campaign run under a different ``REPRO_KERNEL`` is a
different campaign (its trials genuinely are different executions).

Durability properties:

- every completed trial is recorded in its own transaction *as it
  completes* (via the runner's ``on_result`` hook), not at end of run —
  a SIGKILL at any instant loses at most in-flight trials;
- the database runs in WAL mode with ``synchronous=NORMAL``: torn
  writes cannot corrupt committed rows, and committed rows survive a
  process kill (an OS crash can lose the tail of the WAL — acceptable:
  the affected trials simply re-run on resume);
- a corrupt database file (torn by something outside sqlite's control:
  truncation, disk faults, an errant writer) is quarantined to
  ``<name>.corrupt-N`` and a fresh store started in its place, so a
  damaged store degrades to re-running trials instead of wedging every
  future resume;
- ``run_count`` increments on re-record, which is how the resume tests
  assert "zero re-executed trials" — after a kill + resume, every row
  must still say ``run_count == 1``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Iterator

from repro.sim.core import SimulationError

__all__ = ["CampaignStore", "StoreError"]


class StoreError(SimulationError):
    """The campaign store cannot satisfy a request (unknown campaign,
    undurable spec, ...)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    spec        TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'running',
    last_error  TEXT,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    campaign_id  TEXT    NOT NULL,
    seed         INTEGER NOT NULL,
    status       TEXT    NOT NULL DEFAULT 'done',
    payload      TEXT    NOT NULL,
    digest       TEXT,
    wall_seconds REAL    NOT NULL DEFAULT 0.0,
    run_count    INTEGER NOT NULL DEFAULT 1,
    completed_at REAL    NOT NULL,
    PRIMARY KEY (campaign_id, seed)
);
"""


def campaign_digest(spec: dict[str, Any]) -> str:
    """Content hash of a campaign *spec* document (not of its trial
    family — see :meth:`CampaignStore.register` for that distinction)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CampaignStore:
    """Open (creating or recovering as needed) a campaign store.

    ``path`` is a filesystem path or ``":memory:"`` (the default) for an
    ephemeral store — the one-shot compatibility mode ``run_campaign``
    and ``run_matrix`` use when no ``--store`` is given.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self.quarantined: str | None = None
        self._conn = self._open()

    # -- lifecycle ----------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            if self.path == ":memory:":
                raise
            self.quarantined = self._quarantine()
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> str:
        """Move a corrupt database aside (with its -wal/-shm leftovers)
        so a fresh store can start; returns the quarantine path."""
        n = 0
        while True:
            candidate = f"{self.path}.corrupt-{n}"
            if not os.path.exists(candidate):
                break
            n += 1
        os.replace(self.path, candidate)
        for suffix in ("-wal", "-shm"):
            try:
                os.replace(self.path + suffix, candidate + suffix)
            except OSError:
                pass
        return candidate

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaigns ----------------------------------------------------------
    def register(self, campaign_id: str, spec: dict[str, Any]) -> str:
        """Register (or re-open) a campaign. ``campaign_id`` is the
        runner ``spec_digest`` of the trial family, so the same campaign
        spec always lands on the same rows; re-registering updates the
        stored spec (e.g. a trial-count extension) and flips the status
        back to ``running``."""
        now = time.time()
        self._conn.execute(
            "INSERT INTO campaigns (campaign_id, spec, status, created_at, updated_at)"
            " VALUES (?, ?, 'running', ?, ?)"
            " ON CONFLICT(campaign_id) DO UPDATE SET"
            "   spec = excluded.spec, status = 'running', last_error = NULL,"
            "   updated_at = excluded.updated_at",
            (campaign_id, json.dumps(spec, sort_keys=True), now, now))
        self._conn.commit()
        return campaign_id

    def campaign(self, campaign_id: str) -> dict[str, Any]:
        """Load one campaign row (``campaign_id`` may be a unique
        prefix); the ``spec`` comes back parsed."""
        rows = self._conn.execute(
            "SELECT campaign_id, spec, status, last_error, created_at, updated_at"
            " FROM campaigns WHERE campaign_id LIKE ? ORDER BY created_at",
            (campaign_id + "%",)).fetchall()
        if not rows:
            raise StoreError(f"no campaign matching {campaign_id!r} in {self.path}")
        if len(rows) > 1:
            raise StoreError(
                f"campaign id prefix {campaign_id!r} is ambiguous in {self.path} "
                f"({len(rows)} matches)")
        return self._campaign_row(rows[0])

    def campaigns(self) -> list[dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT campaign_id, spec, status, last_error, created_at, updated_at"
            " FROM campaigns ORDER BY created_at").fetchall()
        return [self._campaign_row(r) for r in rows]

    @staticmethod
    def _campaign_row(row) -> dict[str, Any]:
        cid, spec, status, last_error, created_at, updated_at = row
        return {
            "campaign_id": cid,
            "spec": json.loads(spec),
            "status": status,
            "last_error": last_error,
            "created_at": created_at,
            "updated_at": updated_at,
        }

    def latest_incomplete(self) -> dict[str, Any] | None:
        """The most recently updated campaign not marked complete —
        what ``python -m repro campaign resume`` picks without an id."""
        rows = self._conn.execute(
            "SELECT campaign_id, spec, status, last_error, created_at, updated_at"
            " FROM campaigns WHERE status != 'complete'"
            " ORDER BY updated_at DESC LIMIT 1").fetchall()
        return self._campaign_row(rows[0]) if rows else None

    def mark_status(self, campaign_id: str, status: str,
                    error: str | None = None) -> None:
        self._conn.execute(
            "UPDATE campaigns SET status = ?, last_error = ?, updated_at = ?"
            " WHERE campaign_id = ?",
            (status, error, time.time(), campaign_id))
        self._conn.commit()

    # -- trials -------------------------------------------------------------
    def record_trial(self, campaign_id: str, seed: int, payload: dict[str, Any],
                     wall_seconds: float = 0.0, status: str = "done") -> None:
        """Record one completed trial in its own transaction — this is
        the durability point the whole layer exists for."""
        self._conn.execute(
            "INSERT INTO trials"
            " (campaign_id, seed, status, payload, digest, wall_seconds, completed_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(campaign_id, seed) DO UPDATE SET"
            "   status = excluded.status, payload = excluded.payload,"
            "   digest = excluded.digest, wall_seconds = excluded.wall_seconds,"
            "   completed_at = excluded.completed_at,"
            "   run_count = run_count + 1",
            (campaign_id, int(seed), status, json.dumps(payload, sort_keys=True),
             payload.get("digest"), float(wall_seconds), time.time()))
        self._conn.commit()

    def completed_seeds(self, campaign_id: str) -> set[int]:
        rows = self._conn.execute(
            "SELECT seed FROM trials WHERE campaign_id = ? AND status = 'done'",
            (campaign_id,)).fetchall()
        return {r[0] for r in rows}

    def payloads(self, campaign_id: str) -> Iterator[tuple[int, dict[str, Any]]]:
        """Stream ``(seed, payload)`` in seed order — the incremental-
        aggregation entry point (one row in memory at a time)."""
        cursor = self._conn.execute(
            "SELECT seed, payload FROM trials"
            " WHERE campaign_id = ? AND status = 'done' ORDER BY seed",
            (campaign_id,))
        for seed, payload in cursor:
            yield seed, json.loads(payload)

    def trial_rows(self, campaign_id: str) -> list[dict[str, Any]]:
        rows = self._conn.execute(
            "SELECT seed, status, digest, wall_seconds, run_count, completed_at"
            " FROM trials WHERE campaign_id = ? ORDER BY seed",
            (campaign_id,)).fetchall()
        return [
            {"seed": seed, "status": status, "digest": digest,
             "wall_seconds": wall, "run_count": run_count, "completed_at": done_at}
            for seed, status, digest, wall, run_count, done_at in rows
        ]

    def digests(self, campaign_id: str) -> list[str]:
        rows = self._conn.execute(
            "SELECT digest FROM trials"
            " WHERE campaign_id = ? AND status = 'done' ORDER BY seed",
            (campaign_id,)).fetchall()
        return [r[0] for r in rows]

    def counts(self, campaign_id: str) -> dict[str, Any]:
        done, executions, wall = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(run_count), 0),"
            "       COALESCE(SUM(wall_seconds), 0.0)"
            " FROM trials WHERE campaign_id = ? AND status = 'done'",
            (campaign_id,)).fetchone()
        return {"done": done, "executions": executions,
                "trial_wall_seconds": round(wall, 3)}

    def max_run_count(self, campaign_id: str) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(run_count), 0) FROM trials WHERE campaign_id = ?",
            (campaign_id,)).fetchone()
        return row[0]
