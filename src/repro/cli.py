"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Run one simulated job, e.g.::

        python -m repro run terasort --size-gb 100 --policy alm \\
            --fault node@0.5:reducer --report --export job.json

``experiment``
    Regenerate one paper figure/table, e.g.::

        python -m repro experiment table2 --scale 0.5

``list``
    Show available workloads, policies and experiments.

``chaos``
    Run a seeded chaos campaign checked against the simulation-wide
    invariants, e.g.::

        python -m repro chaos --seed 7 --trials 50

``campaign``
    Durable, resumable campaign orchestration: every completed trial is
    checkpointed into a sqlite store as it finishes, so a killed sweep
    resumes losing nothing, e.g.::

        python -m repro campaign submit --store sweeps.db --trials 100000
        python -m repro campaign resume --store sweeps.db
        python -m repro campaign status --store sweeps.db
        python -m repro campaign export --store sweeps.db --out sweep.json

``verify``
    Differential verification: run the scenario corpus across the
    kernel x scheduler implementation matrix, check golden trace
    digests, and check the metamorphic relations, e.g.::

        python -m repro verify --matrix --jobs 4
        python -m repro verify --refresh-golden

Fault specs: ``reduce@P`` (OOM the reducer at progress P),
``map@P:IDX``, ``node@P:TARGET`` (TARGET = reducer | map-only | worker
index), ``nodetime@T:TARGET``, ``maps@T:N`` (kill N maps at time T),
``slow@T:IDX[:FACTOR]`` (degrade a node's disk),
``partition@T:IDX[,IDX...]:DUR`` (transient network partition that
heals after DUR seconds), ``rack@T:IDX[:crash|network]`` (rack-wide
failure), ``am@P[:REPEAT]`` (crash the AppMaster at reduce progress P,
REPEAT incarnations in a row), ``amtime@T`` (crash the AppMaster at
time T).
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import ClusterSpec
from repro.experiments import format_table
from repro.experiments.common import make_policy
from repro.faults import (
    AMFault,
    PartitionFault,
    RackFault,
    SlowNodeFault,
    TaskFault,
    kill_maps_at_time,
    kill_node_at_progress,
    kill_node_at_time,
)
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.mapreduce.tasks import TaskType
from repro.metrics import export_result_json, failure_timeline, progress_curve, task_gantt
from repro.workloads import BENCHMARKS

__all__ = ["main", "parse_fault"]


def _policy_choices() -> tuple[str, ...]:
    """Every registered recovery policy (the zoo), lazily discovered so
    ``--help`` stays cheap and a broken policy module fails loudly at
    the point of use, not at import."""
    from repro.policies import policy_names

    return policy_names()
_EXPERIMENTS = (
    "fig01", "fig02", "fig03", "fig04", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "table2",
)


def parse_fault(spec: str):
    """Parse one ``--fault`` spec string into an injector."""
    try:
        kind, rest = spec.split("@", 1)
        parts = rest.split(":")
        if kind == "reduce":
            return TaskFault(TaskType.REDUCE, int(parts[1]) if len(parts) > 1 else 0,
                             float(parts[0]))
        if kind == "map":
            return TaskFault(TaskType.MAP, int(parts[1]) if len(parts) > 1 else 0,
                             float(parts[0]))
        if kind == "node":
            target = _node_target(parts[1] if len(parts) > 1 else "reducer")
            return kill_node_at_progress(float(parts[0]), target=target)
        if kind == "nodetime":
            target = _node_target(parts[1] if len(parts) > 1 else "reducer")
            return kill_node_at_time(float(parts[0]), target=target)
        if kind == "maps":
            return kill_maps_at_time(int(parts[1]), at_time=float(parts[0]))
        if kind == "slow":
            factor = float(parts[2]) if len(parts) > 2 else 0.1
            return SlowNodeFault(node_index=int(parts[1]) if len(parts) > 1 else 0,
                                 at_time=float(parts[0]), disk_factor=factor)
        if kind == "partition":
            indices = tuple(int(i) for i in parts[1].split(","))
            duration = float(parts[2]) if len(parts) > 2 else 30.0
            return PartitionFault(node_indices=indices, at_time=float(parts[0]),
                                  duration=duration)
        if kind == "am":
            repeat = int(parts[1]) if len(parts) > 1 else 1
            return AMFault(at_progress=float(parts[0]), repeat=repeat)
        if kind == "amtime":
            return AMFault(at_time=float(parts[0]))
        if kind == "rack":
            mode = parts[2] if len(parts) > 2 else "crash"
            return RackFault(rack_index=int(parts[1]) if len(parts) > 1 else 0,
                             at_time=float(parts[0]), mode=mode)
    except (ValueError, IndexError) as exc:
        raise argparse.ArgumentTypeError(f"bad fault spec {spec!r}: {exc}") from exc
    raise argparse.ArgumentTypeError(f"unknown fault kind in {spec!r}")


def _node_target(text: str):
    if text in ("reducer", "map-only"):
        return text
    return int(text)


def _parse_policies(text: str | None) -> tuple[str, ...] | None:
    """``--policies`` value -> roster tuple (``'all'`` = the registry),
    or None when the flag was not given (historical default rotation)."""
    if text is None:
        return None
    if text.strip() == "all":
        return _policy_choices()
    roster = tuple(p.strip() for p in text.split(",") if p.strip())
    if not roster:
        raise argparse.ArgumentTypeError("empty --policies roster")
    return roster


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated YARN MapReduce + the ALM fault-tolerance framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one simulated job")
    p_run.add_argument("workload", choices=sorted(BENCHMARKS))
    p_run.add_argument("--size-gb", type=float, default=None,
                       help="input size in GB (default: the paper's size)")
    p_run.add_argument("--reducers", type=int, default=None)
    p_run.add_argument("--policy", choices=_policy_choices(), default="yarn")
    p_run.add_argument("--fault", action="append", default=[], type=parse_fault,
                       metavar="SPEC", help="fault spec (repeatable); see module docs")
    p_run.add_argument("--nodes", type=int, default=21)
    p_run.add_argument("--racks", type=int, default=2)
    p_run.add_argument("--seed", type=int, default=2015)
    p_run.add_argument("--speculation", action="store_true")
    p_run.add_argument("--report", action="store_true",
                       help="print progress curve, gantt and failure timeline")
    p_run.add_argument("--export", metavar="PATH", default=None,
                       help="write the full trace as JSON")
    p_run.add_argument("--profile", metavar="SPEC", nargs="?", const="1",
                       default=None,
                       help="profile the run (sets REPRO_PROFILE): cProfile "
                            "summary plus per-subsystem event counts; pass a "
                            "path prefix to also dump raw pstats")

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", type=float, default=0.5,
                       help="input-size scale vs the paper (default 0.5)")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="run seeded trials across N worker processes "
                            "(sets REPRO_JOBS; default: serial)")
    p_exp.add_argument("--trial-cache", metavar="DIR", default=None,
                       help="memoize completed trials under DIR "
                            "(sets REPRO_TRIAL_CACHE)")
    p_exp.add_argument("--profile", metavar="SPEC", nargs="?", const="1",
                       default=None,
                       help="profile the experiment driver (sets REPRO_PROFILE; "
                            "reaches worker processes too)")
    p_exp.add_argument("--policies", metavar="LIST", default=None,
                       help="comma-separated policy roster, or 'all' for the "
                            "whole registry (table2 only: sweeps the roster "
                            "instead of the paper's yarn/sfm pair)")

    p_chaos = sub.add_parser(
        "chaos", help="run a seeded chaos campaign with invariant checking")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="campaign seed: same seed = identical campaign")
    p_chaos.add_argument("--trials", type=int, default=50)
    p_chaos.add_argument("--scale", type=float, default=None,
                         help="input-size scale per trial (default 1.0, or "
                              "0.5 under --smoke); part of the campaign id")
    p_chaos.add_argument("--am-faults", action="store_true",
                         help="include AM-crash and lossy-RPC archetypes "
                              "in the fault pool")
    p_chaos.add_argument("--policies", metavar="LIST", default=None,
                         help="comma-separated policy roster to rotate trials "
                              "across, or 'all' for every registered policy "
                              "(default: the five seed systems)")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="CI budget: smaller inputs, at most 30 trials")
    p_chaos.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="fan trials across N worker processes "
                              "(sets REPRO_JOBS; default: serial)")
    p_chaos.add_argument("--out", metavar="DIR", default="chaos-reports",
                         help="directory for reproducer JSON files")
    p_chaos.add_argument("--no-minimize", action="store_true",
                         help="skip greedy schedule minimization on violation")
    p_chaos.add_argument("--replay", metavar="FILE", default=None,
                         help="re-run a reproducer JSON instead of a campaign")
    p_chaos.add_argument("--store", metavar="FILE", default=None,
                         help="durable campaign store (sqlite): checkpoint "
                              "every trial, resume a killed campaign via "
                              "`repro campaign resume`")

    p_camp = sub.add_parser(
        "campaign",
        help="durable, resumable campaigns: submit / resume / status / export")
    camp_sub = p_camp.add_subparsers(dest="campaign_cmd", required=True)
    c_submit = camp_sub.add_parser(
        "submit", help="register a campaign and run it to completion")
    c_submit.add_argument("--store", metavar="FILE", required=True,
                          help="sqlite campaign store (created if missing)")
    c_submit.add_argument("--spec", metavar="FILE", default=None,
                          help="JSON campaign spec (any kind); without it a "
                               "chaos campaign is built from the flags below")
    c_submit.add_argument("--seed", type=int, default=7)
    c_submit.add_argument("--trials", type=int, default=50)
    c_submit.add_argument("--scale", type=float, default=1.0)
    c_submit.add_argument("--am-faults", action="store_true",
                          help="include AM-crash and lossy-RPC archetypes")
    c_submit.add_argument("--policies", metavar="LIST", default=None,
                          help="comma-separated policy roster, or 'all'")
    c_submit.add_argument("--strategy", default="fifo",
                          choices=("fifo", "priority", "dependency"))
    c_submit.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="fan trials across N worker processes")
    c_submit.add_argument("--out", metavar="DIR", default=None,
                          help="reproducer directory for chaos campaigns")
    c_submit.add_argument("--no-minimize", action="store_true")
    c_resume = camp_sub.add_parser(
        "resume", help="resume an interrupted campaign from its store")
    c_resume.add_argument("--store", metavar="FILE", required=True)
    c_resume.add_argument("--id", default=None, metavar="PREFIX",
                          help="campaign id prefix (default: the most "
                               "recently updated incomplete campaign)")
    c_resume.add_argument("--strategy", default="fifo",
                          choices=("fifo", "priority", "dependency"))
    c_resume.add_argument("--jobs", type=int, default=None, metavar="N")
    c_resume.add_argument("--out", metavar="DIR", default=None)
    c_resume.add_argument("--no-minimize", action="store_true")
    c_status = camp_sub.add_parser(
        "status", help="per-campaign progress and incremental aggregates")
    c_status.add_argument("--store", metavar="FILE", required=True)
    c_status.add_argument("--id", default=None, metavar="PREFIX")
    c_export = camp_sub.add_parser(
        "export", help="write one campaign (spec, trials, aggregates) as JSON")
    c_export.add_argument("--store", metavar="FILE", required=True)
    c_export.add_argument("--id", default=None, metavar="PREFIX",
                          help="campaign id prefix (default: sole campaign)")
    c_export.add_argument("--out", metavar="FILE", required=True)
    c_export.add_argument("--payloads", action="store_true",
                          help="include full per-trial payloads")

    p_verify = sub.add_parser(
        "verify",
        help="differential verification: scenario corpus x implementation "
             "matrix, golden digests, metamorphic relations")
    p_verify.add_argument("--quick", action="store_true",
                          help="quick-tagged scenarios on 2 matrix corners "
                               "plus golden check (tier-1 budget)")
    p_verify.add_argument("--matrix", action="store_true",
                          help="full corpus across all 4 kernel x scheduler "
                               "combinations plus golden check")
    p_verify.add_argument("--metamorphic", action="store_true",
                          help="metamorphic relations only")
    p_verify.add_argument("--refresh-golden", action="store_true",
                          help="re-run the corpus and rewrite "
                               "tests/golden/scenarios.json")
    p_verify.add_argument("--scenario", action="append", default=None,
                          metavar="NAME", help="restrict to named scenario(s)")
    p_verify.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="fan matrix runs across N worker processes "
                               "(sets REPRO_JOBS; default: serial)")
    p_verify.add_argument("--out", metavar="DIR", default="chaos-reports",
                          help="directory for metamorphic reproducer JSON "
                               "files")
    p_verify.add_argument("--store", metavar="FILE", default=None,
                          help="durable campaign store for the matrix runs: "
                               "a killed sweep resumes re-running only the "
                               "missing scenario x combo cells")

    sub.add_parser("list", help="show workloads, policies and experiments")
    return parser


def cmd_run(args) -> int:
    import os

    from repro.runner.profile import maybe_profile, profiling_enabled, subsystem_counts

    if args.profile is not None:
        os.environ["REPRO_PROFILE"] = args.profile
    factory = BENCHMARKS[args.workload]
    wl = factory() if args.size_gb is None else factory(args.size_gb)
    if args.reducers is not None:
        wl = wl.with_reducers(args.reducers)
    policy = make_policy(args.policy)
    rt = MapReduceRuntime(
        wl,
        conf=JobConf(),
        cluster_spec=ClusterSpec(num_nodes=args.nodes, num_racks=args.racks,
                                 seed=args.seed),
        policy=policy,
        job_name=f"{wl.name}-{args.policy}",
        speculation=args.speculation,
    )
    for fault in args.fault:
        fault.install(rt)
    with maybe_profile(f"run-{wl.name}-{args.policy}"):
        result = rt.run()
    status = "SUCCESS" if result.success else "FAILED"
    print(f"{result.job_name}: {status} in {result.elapsed:.1f} simulated seconds")
    for key, value in result.counters.items():
        print(f"  {key:28s} {value}")
    if profiling_enabled():
        print("\nper-subsystem trace events:")
        for subsystem, count in subsystem_counts(result.trace).items():
            print(f"  {subsystem:12s} {count}")
        print("flow scheduler:")
        for key, value in sorted(rt.cluster.flows.stats.items()):
            print(f"  {key:16s} {value}")
    if args.report:
        print()
        print(progress_curve(result.trace))
        print()
        print(task_gantt(result))
        print()
        print(failure_timeline(result.trace))
    if args.export:
        path = export_result_json(result, args.export)
        print(f"\ntrace written to {path}")
    return 0 if result.success else 1


def cmd_experiment(args) -> int:
    import os

    # The runner reads its parallelism/cache settings from the
    # environment so every driver picks them up without plumbing.
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))
    if args.trial_cache is not None:
        os.environ["REPRO_TRIAL_CACHE"] = args.trial_cache
    if args.profile is not None:
        os.environ["REPRO_PROFILE"] = args.profile

    from repro.runner.profile import maybe_profile

    with maybe_profile(f"experiment-{args.name}"):
        return _dispatch_experiment(args)


def _dispatch_experiment(args) -> int:
    import repro.experiments as ex

    scale = args.scale
    name = args.name
    if name == "fig01":
        rows = ex.fig01_recovery_time(scale=scale)
        print(format_table(["failure", "count", "job (s)", "recovery (s)"],
                           [(r.failure, r.count, r.job_time, r.recovery_time) for r in rows],
                           title="Fig. 1"))
    elif name == "fig02":
        rows = ex.fig02_delayed_execution(scale=scale)
        print(format_table(["workload", "failure", "progress", "job (s)", "deg %"],
                           [(r.workload, r.failure, r.progress, r.job_time,
                             r.degradation_pct) for r in rows], title="Fig. 2"))
    elif name in ("fig03", "fig10"):
        res = (ex.fig03_temporal_amplification(scale=scale) if name == "fig03"
               else ex.fig10_sfm_trace(scale=scale).sfm)
        print(f"{name}: crash={res.crash_time:.1f}s detect={res.detect_time:.1f}s "
              f"repeats={[round(t, 1) for t in res.repeat_failure_times]} "
              f"job={res.job_time:.1f}s")
    elif name == "fig04":
        res = ex.fig04_spatial_amplification(scale=scale)
        print(f"fig04: victim={res.victim} crash={res.crash_time:.1f}s "
              f"additional failures={res.additional_failures} job={res.job_time:.1f}s")
    elif name == "fig08":
        rows = ex.fig08_alg_task_failure(scale=scale)
        print(format_table(["workload", "system", "progress", "job (s)"],
                           [(r.workload, r.system, r.progress, r.job_time) for r in rows],
                           title="Fig. 8"))
    elif name == "fig09":
        rows = ex.fig09_sfm_node_failure(scale=scale)
        print(format_table(["workload", "system", "progress", "job (s)", "extra fails"],
                           [(r.workload, r.system, r.progress, r.job_time,
                             r.additional_reduce_failures) for r in rows], title="Fig. 9"))
    elif name == "fig11":
        rows = ex.fig11_alg_overhead(scale=scale)
        print(format_table(["GB", "system", "job (s)"],
                           [(r.input_gb, r.system, r.job_time) for r in rows],
                           title="Fig. 11"))
    elif name == "fig12":
        rows = ex.fig12_log_frequency(scale=scale)
        print(format_table(["interval (s)", "job (s)", "ticks"],
                           [(r.frequency, r.job_time, r.log_ticks) for r in rows],
                           title="Fig. 12"))
    elif name == "fig13":
        rows = ex.fig13_replication_levels(scale=scale)
        print(format_table(["GB", "level", "job (s)", "reduce phase (s)"],
                           [(r.input_gb, r.level, r.job_time, r.reduce_phase_time)
                            for r in rows], title="Fig. 13"))
    elif name == "fig14":
        rows = ex.fig14_concurrent_failures(scale=scale)
        print(format_table(["GB/reducer", "failures", "system", "job (s)", "recovery (s)"],
                           [(r.per_reducer_gb, r.concurrent_failures, r.system,
                             r.job_time, r.recovery_time) for r in rows], title="Fig. 14"))
    elif name == "fig15":
        rows = ex.fig15_sfm_plus_alg(scale=scale)
        print(format_table(["workload", "system", "job (s)", "recovery (s)"],
                           [(r.workload, r.system, r.job_time, r.recovery_time)
                            for r in rows], title="Fig. 15"))
    elif name == "table2":
        roster = _parse_policies(getattr(args, "policies", None))
        kwargs = {"systems": roster} if roster else {}
        rows = ex.table2_spatial_recovery(scale=scale, **kwargs)
        print(format_table(["type", "point", "extra fails", "time (s)"],
                           [(r.system, r.first_failure_point, r.additional_failures,
                             r.execution_time) for r in rows], title="Table II"))
    return 0


def cmd_chaos(args) -> int:
    import json
    import os

    from repro.faults.chaos import run_campaign, run_trial_spec

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))

    if args.replay is not None:
        repro = json.loads(open(args.replay).read())
        spec = repro.get("spec", repro)  # accept a bare spec too
        if repro.get("minimized_faults"):
            spec = dict(spec, faults=repro["minimized_faults"])
        payload = run_trial_spec(spec)
        status = "ok" if not payload["violations"] else "VIOLATION"
        print(f"replay of trial {spec['index']} "
              f"({spec['policy']}/{spec['workload']}): {status}")
        for v in payload["violations"]:
            print(f"  - {v}")
        return 1 if payload["violations"] else 0

    trials = min(args.trials, 30) if args.smoke else args.trials
    scale = args.scale if args.scale is not None else (0.5 if args.smoke else 1.0)
    try:
        summary = run_campaign(seed=args.seed, trials=trials, scale=scale,
                               out_dir=args.out, minimize=not args.no_minimize,
                               store=args.store, am_faults=args.am_faults,
                               policies=_parse_policies(args.policies))
    except KeyboardInterrupt:
        if args.store:
            print(f"\ninterrupted — completed trials are checkpointed; resume "
                  f"with: python -m repro campaign resume --store {args.store}")
        raise
    _print_chaos_summary(summary)
    return 1 if summary["violations"] else 0


def _print_chaos_summary(summary) -> None:
    resumed = f", {summary['skipped']} resumed from store" if summary.get("skipped") else ""
    print(f"chaos campaign seed={summary['seed']}: {summary['trials']} trials"
          f" ({summary['executed']} executed{resumed}), "
          f"{summary['jobs_failed']} job failures (legitimate), "
          f"{summary['violations']} invariant violations")
    print("  policies: " + ", ".join(
        f"{k}={v}" for k, v in sorted(summary["by_policy"].items())))
    print("  fault kinds: " + ", ".join(
        f"{k}={v}" for k, v in sorted(summary["by_kind"].items())))
    if summary["violations"]:
        print("  violating trials: "
              + ", ".join(str(i) for i in summary["violating_trials"]))


def cmd_campaign(args) -> int:
    import json
    import os

    from repro.campaign import CampaignStore

    if getattr(args, "jobs", None) is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))

    if args.campaign_cmd == "submit":
        if args.spec is not None:
            with open(args.spec) as fh:
                spec = json.load(fh)
        else:
            spec = {"kind": "chaos", "seed": args.seed, "trials": args.trials,
                    "scale": args.scale, "am_faults": args.am_faults}
            roster = _parse_policies(args.policies)
            if roster:
                spec["policies"] = list(roster)
        return _campaign_run_spec(spec, args)

    if args.campaign_cmd == "resume":
        with CampaignStore(args.store) as store:
            row = store.campaign(args.id) if args.id else store.latest_incomplete()
        if row is None:
            print(f"no incomplete campaign in {args.store}")
            return 1
        return _campaign_run_spec(row["spec"], args)

    if args.campaign_cmd == "status":
        return _campaign_status(args)
    return _campaign_export(args)


def _planned_trials(spec) -> int:
    if spec["kind"] == "chaos":
        return int(spec["trials"])
    if spec["kind"] == "verify-matrix":
        return len(spec["jobs"])
    return len(spec.get("seeds", ()))


def _campaign_run_spec(spec, args) -> int:
    from repro.campaign import (
        CampaignScheduler,
        CampaignStore,
        aggregate_payloads,
        build_plan,
    )
    from repro.faults.chaos import run_campaign

    try:
        if spec["kind"] == "chaos":
            summary = run_campaign(
                seed=spec["seed"], trials=spec["trials"],
                scale=spec.get("scale", 1.0),
                out_dir=getattr(args, "out", None),
                minimize=not getattr(args, "no_minimize", False),
                store=args.store, strategy=getattr(args, "strategy", "fifo"),
                am_faults=bool(spec.get("am_faults", False)),
                policies=spec.get("policies"))
            _print_chaos_summary(summary)
            print(f"  campaign id: {summary['campaign_id']}  (store: {args.store})")
            return 1 if summary["violations"] else 0
        with CampaignStore(args.store) as store:
            plan = build_plan(spec)
            stats = CampaignScheduler(
                store, strategy=getattr(args, "strategy", "fifo")).run(plan)
            agg = aggregate_payloads(spec["kind"], store.payloads(stats["campaign_id"]))
        print(f"campaign {stats['campaign_id'][:12]} ({spec['kind']}): "
              f"{stats['trials']} trials, {stats['executed']} executed, "
              f"{stats['skipped']} resumed from store, "
              f"{stats['wall_seconds']:.1f}s")
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(agg.items())
                               if not isinstance(v, (list, dict))))
        return 0
    except KeyboardInterrupt:
        print(f"\ninterrupted — completed trials are checkpointed; resume "
              f"with: python -m repro campaign resume --store {args.store}")
        return 130


def _campaign_status(args) -> int:
    from repro.campaign import CampaignStore, aggregate_payloads

    with CampaignStore(args.store) as store:
        if store.quarantined:
            print(f"warning: corrupt store quarantined to {store.quarantined}")
        rows = [store.campaign(args.id)] if args.id else store.campaigns()
        if not rows:
            print(f"no campaigns in {args.store}")
            return 0
        for row in rows:
            spec = row["spec"]
            counts = store.counts(row["campaign_id"])
            total = _planned_trials(spec)
            agg = aggregate_payloads(spec["kind"],
                                     store.payloads(row["campaign_id"]))
            line = (f"{row['campaign_id'][:12]}  {spec['kind']:13s} "
                    f"{counts['done']}/{total} trials  {row['status']}")
            if spec["kind"] == "chaos":
                line += (f"  violations={agg['violations']} "
                         f"jobs_failed={agg['jobs_failed']}")
            if row["last_error"]:
                line += f"  last_error={row['last_error']}"
            print(line)
    return 0


def _campaign_export(args) -> int:
    import json

    from repro.campaign import CampaignStore, aggregate_payloads
    from repro.runner import atomic_write_text

    with CampaignStore(args.store) as store:
        if args.id:
            row = store.campaign(args.id)
        else:
            rows = store.campaigns()
            if len(rows) != 1:
                print(f"{args.store} holds {len(rows)} campaigns — pass --id")
                return 1
            row = rows[0]
        cid = row["campaign_id"]
        doc = {
            "campaign": row,
            "summary": aggregate_payloads(row["spec"]["kind"], store.payloads(cid)),
            "counts": store.counts(cid),
            "trials": store.trial_rows(cid),
        }
        if args.payloads:
            doc["payloads"] = {seed: p for seed, p in store.payloads(cid)}
    atomic_write_text(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"campaign {cid[:12]} exported to {args.out}")
    return 0


def cmd_verify(args) -> int:
    import os

    from repro.verify import (
        COMBOS,
        QUICK_COMBOS,
        DivergenceError,
        check_golden,
        refresh_golden,
        run_all_relations,
        run_matrix,
    )

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(max(1, args.jobs))

    if args.refresh_golden:
        report = run_matrix(names=args.scenario, combos=COMBOS[:1])
        path = refresh_golden(report["digests"])
        print(f"golden digests for {report['scenarios']} scenarios written "
              f"to {path}")
        return 0

    # No layer flag selects everything; --quick trims the matrix budget.
    do_matrix = args.matrix or args.quick or not args.metamorphic
    do_metamorphic = args.metamorphic or not (args.matrix or args.quick)
    failures = 0

    if do_matrix:
        combos = QUICK_COMBOS if args.quick else COMBOS
        label = "quick" if args.quick else "full"
        print(f"differential matrix ({label}: "
              f"{len(combos)} kernel x scheduler combos):")
        try:
            report = run_matrix(names=args.scenario,
                                quick=args.quick, combos=combos,
                                store=args.store)
        except DivergenceError as exc:
            print(f"DIVERGENCE: {exc}")
            return 1
        print(f"  {report['runs']} runs over {report['scenarios']} scenarios: "
              "all digests identical across the matrix")
        golden_problems = check_golden(report["digests"])
        for problem in golden_problems:
            print(f"  golden: {problem}")
        if golden_problems:
            failures += 1
        else:
            print(f"  golden: {len(report['digests'])} scenario digests match "
                  "tests/golden/scenarios.json")

    if do_metamorphic:
        print("metamorphic relations:")
        results = run_all_relations(out_dir=args.out)
        failed = [r for r in results if not r.ok]
        failures += len(failed)
        print(f"  {len(results) - len(failed)}/{len(results)} relations hold")

    return 1 if failures else 0


def cmd_list(_args) -> int:
    from repro.policies import policy_specs

    print("workloads:  " + ", ".join(sorted(BENCHMARKS)))
    print("policies:")
    for spec in policy_specs():
        tag = " [seed]" if spec.seed else ""
        print(f"  {spec.name:10s} {spec.description}{tag}")
    print("experiments:" + " " + ", ".join(_EXPERIMENTS))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "verify":
        return cmd_verify(args)
    return cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
