"""repro — reproduction of *Cracking Down MapReduce Failure
Amplification through Analytics Logging and Migration* (IPPS 2015).

The package is a discrete-event simulation of a YARN MapReduce cluster
faithful to the failure-handling mechanisms the paper studies, plus the
paper's contribution — the ALM fault-tolerance framework (Analytics
LogGing + Speculative Fast Migration with Fast Collective Merging).

Layer map (bottom-up):

- :mod:`repro.sim` — event kernel and max-min fair bandwidth sharing.
- :mod:`repro.cluster` — nodes, racks, disks, NICs, failures.
- :mod:`repro.hdfs` — blocks, replication levels, pipelined writes.
- :mod:`repro.yarn` — ResourceManager, NodeManagers, liveness.
- :mod:`repro.mapreduce` — MRAppMaster, Map/ReduceTasks, shuffle with
  Hadoop's fetch-failure semantics, pluggable recovery policies.
- :mod:`repro.alm` — the paper's ALG + SFM/FCM framework.
- :mod:`repro.workloads` — Terasort / Wordcount / Secondarysort models.
- :mod:`repro.faults` — task/node fault injection.
- :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro.mapreduce import run_job
    from repro.workloads import wordcount
    from repro.alm import ALMPolicy
    from repro.faults import kill_node_at_progress

    result = run_job(
        wordcount(10.0),
        policy=ALMPolicy(),
        faults=[kill_node_at_progress(0.5, target="reducer")],
    )
    print(result.elapsed, result.counters)
"""

from repro.mapreduce import JobConf, JobResult, MapReduceRuntime, run_job
from repro.workloads import secondarysort, terasort, wordcount

__version__ = "0.1.0"

__all__ = [
    "JobConf",
    "JobResult",
    "MapReduceRuntime",
    "run_job",
    "secondarysort",
    "terasort",
    "wordcount",
    "__version__",
]
