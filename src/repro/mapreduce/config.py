"""Job configuration: Table I parameters plus framework internals."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.node import MB
from repro.sim.core import SimulationError

__all__ = ["JobConf"]


@dataclass(frozen=True)
class JobConf:
    """MapReduce job parameters.

    The first block mirrors Table I of the paper; the second block holds
    the Hadoop shuffle/fetch-failure machinery constants whose defaults
    are taken from Hadoop 2.2 (the paper's code base); the third holds
    task scheduling knobs.
    """

    # -- Table I ----------------------------------------------------------
    map_memory_mb: int = 1536          # mapreduce.map.java.opts
    reduce_memory_mb: int = 4096       # mapreduce.reduce.java.opts
    io_sort_factor: int = 100          # mapreduce.task.io.sort.factor
    output_replication: int = 2        # dfs.replication for job output

    # -- shuffle machinery ----------------------------------------------------
    #: Concurrent fetcher threads per ReduceTask (mapreduce.reduce.shuffle.parallelcopies).
    num_fetchers: int = 5
    #: Fraction of the reduce heap used as shuffle buffer.
    shuffle_buffer_fraction: float = 0.70
    #: A fetched segment larger than this fraction of the buffer goes
    #: straight to disk (mapreduce.reduce.shuffle.memory.limit.percent).
    shuffle_single_segment_fraction: float = 0.25
    #: In-memory merge is triggered above this buffer occupancy
    #: (mapreduce.reduce.shuffle.merge.percent).
    shuffle_merge_fraction: float = 0.66
    #: Connection attempt cost against an unreachable host (seconds).
    fetch_connect_timeout: float = 3.0
    #: Attempts against one host before declaring a fetch failure.
    fetch_retries_per_host: int = 4
    #: Base of the exponential retry backoff (seconds): base * 2^k.
    fetch_retry_base_delay: float = 3.0

    # -- fetch-failure accounting (the amplification engine) -----------------
    # Modelled on Hadoop's ShuffleSchedulerImpl.checkReducerHealth():
    # the reducer kills itself when cumulative fetch failures dominate
    # its progress, or when it has progressed far but then stalls.
    #: Reducer is "unhealthy" when failures/(failures+done) >= this.
    max_allowed_failed_fetch_fraction: float = 0.5
    #: Stall-based suicide requires done/total >= this.
    min_required_progress_fraction: float = 0.5
    #: ... and no shuffle progress for at least this long (a floor over
    #: Hadoop's 0.5 * max-map-runtime term).
    reducer_stall_seconds: float = 45.0
    #: Delay before a fetcher revisits a host it just failed against.
    host_failure_penalty: float = 10.0
    #: The AM re-executes a completed map after this many fetch-failure
    #: reports against it.
    map_refetch_reports: int = 3

    # -- scheduling --------------------------------------------------------
    #: Launch ReduceTasks after this fraction of maps completed
    #: (mapreduce.job.reduce.slowstart.completedmaps).
    slowstart_completed_maps: float = 0.05
    #: Attempts per task before the job fails.
    max_attempts: int = 4
    #: The AM fails an attempt that has reported nothing for this long
    #: (mapreduce.task.timeout). This is the only recovery path for an
    #: attempt that dies inside a network partition shorter than the
    #: RM's liveness timeout: the node is never declared lost, so no
    #: node-lost rescheduling ever fires.
    task_timeout: float = 600.0
    #: Container request priorities (lower wins). Hadoop order:
    #: fast-fail/recovery maps > reduces > normal maps.
    map_priority: float = 20.0
    reduce_priority: float = 10.0
    recovery_map_priority: float = 2.0
    recovery_reduce_priority: float = 3.0
    #: Fixed per-task container/JVM startup cost (seconds).
    task_startup_seconds: float = 1.0

    # -- AM survivability (yarn.app.mapreduce.am.*) -----------------------
    #: AM incarnations before the RM gives the job up
    #: (mapreduce.am.max-attempts; YARN default 2).
    am_max_attempts: int = 2
    #: How a relaunched AM rebuilds state: ``"log"`` replays the
    #: job-history event log (completed maps whose MOFs survive are not
    #: re-executed); ``"rerun-all"`` starts from scratch — the ablation
    #: mirroring the paper's ALG-vs-scratch comparison one layer up.
    am_recovery: str = "log"
    #: Whether running attempts survive an AM crash as orphans to be
    #: re-adopted by the next incarnation
    #: (yarn.resourcemanager.work-preserving-recovery analogue).
    keep_containers_across_am_restart: bool = False
    #: RM relaunch latency after an AM crash (seconds).
    am_restart_delay: float = 5.0

    # -- cost-model details -----------------------------------------------------
    #: Map-side sort buffer (mapreduce.task.io.sort.mb); inputs larger
    #: than this incur an extra spill-merge read+write pass.
    io_sort_mb: float = 100.0 * MB

    def __post_init__(self) -> None:
        if self.map_memory_mb < 1 or self.reduce_memory_mb < 1:
            raise SimulationError("task memory must be positive")
        if self.io_sort_factor < 2:
            raise SimulationError("io_sort_factor must be >= 2")
        if self.num_fetchers < 1:
            raise SimulationError("need at least one fetcher")
        for frac in (self.shuffle_buffer_fraction, self.shuffle_single_segment_fraction,
                     self.shuffle_merge_fraction, self.slowstart_completed_maps,
                     self.max_allowed_failed_fetch_fraction,
                     self.min_required_progress_fraction):
            if not 0 < frac <= 1:
                raise SimulationError(f"fraction {frac} out of (0, 1]")
        if self.max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        if self.task_timeout <= 0:
            raise SimulationError("task_timeout must be > 0")
        if self.fetch_retries_per_host < 1:
            raise SimulationError("fetch_retries_per_host must be >= 1")
        if self.am_max_attempts < 1:
            raise SimulationError("am_max_attempts must be >= 1")
        if self.am_recovery not in ("log", "rerun-all"):
            raise SimulationError("am_recovery must be 'log' or 'rerun-all'")
        if self.am_restart_delay < 0:
            raise SimulationError("am_restart_delay must be >= 0")

    @property
    def shuffle_buffer_bytes(self) -> float:
        return self.reduce_memory_mb * MB * self.shuffle_buffer_fraction

    @property
    def shuffle_merge_trigger_bytes(self) -> float:
        return self.shuffle_buffer_bytes * self.shuffle_merge_fraction

    @property
    def shuffle_single_segment_max(self) -> float:
        return self.shuffle_buffer_bytes * self.shuffle_single_segment_fraction
