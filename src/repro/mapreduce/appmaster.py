"""The MRAppMaster: task scheduling, bookkeeping and failure accounting."""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster import Cluster
from repro.cluster.node import Node
from repro.hdfs.hdfs import Hdfs
from repro.mapreduce.config import JobConf
from repro.mapreduce.history import JobHistoryLog
from repro.mapreduce.maptask import MapAttempt
from repro.mapreduce.mof import MOFRegistry
from repro.mapreduce.recovery import RecoveryPolicy
from repro.mapreduce.tasks import AttemptState, Task, TaskState, TaskType
from repro.metrics.trace import Trace
from repro.sim.columns import attempt_progress
from repro.sim.core import Event, Simulator
from repro.workloads import Workload
from repro.yarn.rm import Container, ResourceManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.reducetask import ReduceAttempt

__all__ = ["MRAppMaster"]


class MRAppMaster:
    """Per-job coordinator (YARN's MRAppMaster).

    Owns the task tables and the MOF registry, requests containers from
    the RM, launches attempts, counts fetch-failure reports and defers
    every recovery decision to the attached
    :class:`~repro.mapreduce.recovery.RecoveryPolicy`.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        rm: ResourceManager,
        hdfs: Hdfs,
        workload: Workload,
        conf: JobConf,
        policy: RecoveryPolicy,
        trace: Trace,
        input_path: str,
        job_name: str = "job",
        history: JobHistoryLog | None = None,
        am_attempt: int = 0,
        partition_weights=None,
        attempt_columns=None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.rm = rm
        self.hdfs = hdfs
        self.workload = workload
        self.conf = conf
        self.policy = policy
        self.trace = trace
        self.job_name = job_name
        self.input_path = input_path
        #: Job-history event log (runtime-owned, survives this AM).
        self.history = history
        #: Incarnation number: 0 for the first launch, +1 per restart.
        self.am_attempt = am_attempt
        #: Runtime-owned :class:`~repro.sim.columns.AttemptColumns`
        #: mirror (columnar data plane only, shared across AM restarts
        #: so adopted attempts keep their slots); ``None`` on the
        #: scalar plane.
        self.attempt_columns = attempt_columns

        # Partition weights are job-level state: a restarted AM inherits
        # them (drawing again would shift the RNG stream and disagree
        # with MOFs partitioned under the original weights).
        self.partition_weights = (partition_weights if partition_weights is not None
                                  else workload.partition_weights(cluster.rng))
        blocks = hdfs.blocks(input_path)
        self.map_tasks = [Task(i, TaskType.MAP, block=b) for i, b in enumerate(blocks)]
        self.reduce_tasks = [
            Task(i, TaskType.REDUCE, partition_index=i) for i in range(workload.num_reducers)
        ]
        self.num_maps = len(self.map_tasks)
        self.num_reduces = len(self.reduce_tasks)

        self.registry = MOFRegistry()
        self.active_reducers: list["ReduceAttempt"] = []
        self.fetch_failure_reports: dict[int, int] = {}
        #: task_id -> commit record of the winning reduce attempt
        #: (byte accounting the invariant checkers audit post-run).
        self.reduce_commits: dict[int, dict] = {}
        self.completed_maps = 0
        self.committed_reduces = 0
        self.max_map_runtime = 10.0
        self._reducers_launched = False
        self._finished = False
        #: True once this incarnation was killed by an AMFault; a
        #: crashed AM neither schedules, reports, nor finishes.
        self._crashed = False
        #: (attempt, result) completions that landed while crashed —
        #: replayed by the next incarnation (keep_containers) or
        #: released at teardown.
        self._orphan_reports: list[tuple] = []
        self._req_ids = itertools.count()
        #: Triggers with a result dict when the job ends.
        self.done: Event = sim.event()
        self.start_time = sim.now

        rm.node_lost_listeners.append(self._on_node_lost)
        rm.node_rejoined_listeners.append(self._on_node_rejoined)
        policy.attach(self)

    @property
    def dead(self) -> bool:
        """This incarnation is over: finished normally or crashed."""
        return self._finished or self._crashed

    # -- job start ----------------------------------------------------------
    def start(self) -> None:
        self.start_time = self.sim.now
        if self.am_attempt == 0:
            self.trace.log("job_start", job=self.job_name, maps=self.num_maps,
                           reduces=self.num_reduces)
        for task in self.map_tasks:
            # On the first launch every map is pending; after a restart,
            # recovered and adopted tasks are skipped.
            if task.is_finished or task.running_attempts() or task.outstanding_requests:
                continue
            self.schedule_task(task, priority=self.conf.map_priority)
        if (self.conf.slowstart_completed_maps <= 0
                or self.completed_maps >= self._reduce_launch_threshold()):
            self._launch_reducers()
        if self.num_reduces and self.committed_reduces >= self.num_reduces \
                and not self._finished:
            # Everything already committed before the crash.
            self._finish(success=True)

    # -- scheduling ----------------------------------------------------------
    def schedule_task(
        self,
        task: Task,
        priority: float,
        preferred: list[Node] | None = None,
        exclude: list[Node] | None = None,
        attempt_kwargs: dict | None = None,
    ) -> None:
        """Request a container and launch an attempt when granted."""
        if task.is_finished or self.dead:
            return
        if preferred is None and task.task_type is TaskType.MAP and task.block is not None:
            preferred = task.block.live_replicas()
        if preferred is None and task.task_type is TaskType.REDUCE:
            # Spread reducers round-robin: co-located reducers halve
            # each other's disk/NIC share and straggle the whole phase.
            healthy = self.rm.healthy_nodes()
            if healthy:
                preferred = [healthy[task.task_id % len(healthy)]]
        preferred, exclude = self.policy.steer_placement(task, preferred, exclude)
        mem = (self.conf.map_memory_mb if task.task_type is TaskType.MAP
               else self.conf.reduce_memory_mb)
        task.outstanding_requests += 1
        grant = self._request_container(mem, priority=priority,
                                        preferred=preferred, exclude=exclude)

        def on_grant(event: Event) -> None:
            task.outstanding_requests -= 1
            container: Container = event.value
            self._launch(task, container, attempt_kwargs or {})

        grant._add_callback(on_grant)

    def _request_container(self, memory_mb: int, priority: float,
                           preferred: list[Node] | None = None,
                           exclude: list[Node] | None = None) -> Event:
        """Allocate path to the RM, through the RPC channel.

        On a reliable channel this is exactly the old synchronous call.
        On a fallible one the allocate request itself can be lost, so a
        retry loop re-sends it with exponential backoff and
        deterministic jitter under a stable ``request_id`` — the RM's
        idempotent grant handling guarantees a duplicate send can never
        double-allocate.
        """
        rm = self.rm
        if not rm.rpc.fallible:
            return rm.request_container(memory_mb, priority=priority,
                                        preferred_nodes=preferred, exclude_nodes=exclude)
        grant = self.sim.event()
        rid = f"am{self.am_attempt}-r{next(self._req_ids)}"
        self.sim.process(
            self._allocate_loop(grant, rid, memory_mb, priority, preferred, exclude),
            name=f"alloc:{rid}")
        return grant

    def _allocate_loop(self, grant: Event, rid: str, memory_mb: int,
                       priority: float, preferred, exclude):
        rm = self.rm
        policy = rm.retry_policy
        attempt = 0
        while not grant.triggered and not self.dead:
            outcome = rm.rpc.send(f"alloc|{rid}")
            if not outcome.dropped:
                if outcome.delay > 0.0:
                    yield self.sim.timeout(outcome.delay)
                    if grant.triggered or self.dead:
                        return
                rm.request_container(memory_mb, priority=priority,
                                     preferred_nodes=preferred, exclude_nodes=exclude,
                                     request_id=rid, grant=grant)
                if grant.triggered:
                    return
            # Wait for the grant or the backoff interval, whichever
            # comes first, then re-send. The interval plateaus at the
            # policy cap so a busy cluster isn't hammered.
            capped = min(attempt, max(policy.max_retries - 1, 0))
            yield self.sim.any_of(
                [grant, self.sim.timeout(policy.interval(capped, rid))])
            attempt += 1

    def _launch(self, task: Task, container: Container, attempt_kwargs: dict) -> None:
        if task.is_finished or self.dead or not container.alive:
            self.rm.release_container(container)
            return
        if task.running_attempts() and not attempt_kwargs.get("speculative", False):
            # A previous request for this task was already satisfied.
            self.rm.release_container(container)
            return
        if self._reject_clumped_reduce(task, container, attempt_kwargs):
            return
        attempt_kwargs = dict(attempt_kwargs)
        attempt_kwargs.pop("speculative", None)
        if task.task_type is TaskType.MAP:
            attempt = MapAttempt(self, task, container)
        else:
            attempt = self.policy.make_reduce_attempt(task, container, **attempt_kwargs)
        attempt.start()
        self.trace.log("attempt_start", task=task.name, attempt=attempt.attempt_id,
                       node=container.node.name, type=task.task_type.value)
        if task.task_type is TaskType.REDUCE:
            self.policy.on_reduce_attempt_started(attempt)

    def _reject_clumped_reduce(self, task: Task, container: Container,
                               attempt_kwargs: dict) -> bool:
        """AM-side container rejection (as real AMs do for locality):
        don't stack a first-launch reducer onto a node that already
        runs one while empty nodes exist — co-located reducers halve
        each other's disk/NIC share and straggle the phase."""
        if task.task_type is not TaskType.REDUCE or attempt_kwargs:
            return False
        if task.attempts or getattr(task, "_rebalanced", 0) >= 2:
            return False  # only first launches, bounded retries
        busy_nodes = {
            a.node for t in self.reduce_tasks for a in t.running_attempts()
        }
        if container.node not in busy_nodes:
            return False
        healthy = set(self.rm.healthy_nodes())
        empty = healthy - busy_nodes
        if not empty:
            return False  # nowhere better to go
        task._rebalanced = getattr(task, "_rebalanced", 0) + 1
        task.outstanding_requests += 1
        self.rm.release_container(container)
        # Preference only — a hard exclusion of every currently-busy
        # node can become permanently unsatisfiable if the remaining
        # nodes die later (observed as a multi-job deadlock).
        grant = self._request_container(
            self.conf.reduce_memory_mb, priority=self.conf.reduce_priority,
            preferred=sorted(empty, key=lambda n: n.node_id),
        )

        def on_grant(event: Event) -> None:
            task.outstanding_requests -= 1
            self._launch(task, event.value, {})

        grant._add_callback(on_grant)
        return True

    # -- attempt outcomes --------------------------------------------------
    def _attempt_succeeded(self, attempt, result) -> None:
        if self._crashed:
            # No live AM to receive the report: buffer it (container
            # still held) for the next incarnation to replay, or for
            # teardown to release.
            self._orphan_reports.append((attempt, result))
            return
        self.rm.release_container(attempt.container)
        task = attempt.task
        self.trace.log("attempt_success", task=task.name, attempt=attempt.attempt_id,
                       node=attempt.node.name, elapsed=attempt.elapsed)
        self.policy.on_attempt_outcome(attempt, ok=True)
        if self._finished or task.state is TaskState.SUCCEEDED:
            return  # speculative duplicate or late completion
        task.state = TaskState.SUCCEEDED
        for other in task.running_attempts():
            if other is not attempt:
                other.kill("speculative-loser", discard=True)
        if task.task_type is TaskType.MAP:
            self._map_succeeded(task, attempt, result)
        else:
            self._reduce_succeeded(task, attempt, result)

    def _map_succeeded(self, task: Task, attempt, mof) -> None:
        self.registry.register(mof)
        self.fetch_failure_reports.pop(task.task_id, None)
        if not task.counted:
            task.counted = True  # first success of this logical map
            self.completed_maps += 1
        self.max_map_runtime = max(self.max_map_runtime, attempt.elapsed)
        if self.history is not None:
            self.history.record_map(self.sim.now, task.task_id, attempt.attempt_id,
                                    mof, attempt.elapsed)
        self.policy.on_map_completed(task, mof)
        for reducer in list(self.active_reducers):
            reducer.notify_mof(mof)
        if not self._reducers_launched and self.completed_maps >= self._reduce_launch_threshold():
            self._launch_reducers()

    def _reduce_succeeded(self, task: Task, attempt, result) -> None:
        self.committed_reduces += 1
        result = result if isinstance(result, dict) else {}
        self.reduce_commits[task.task_id] = {
            "attempt": attempt.attempt_id,
            "input_bytes": float(result.get("input_bytes", 0.0)),
            "output_bytes": float(result.get("output_bytes", 0.0)),
            "resume_fraction": float(getattr(attempt, "reduce_resume_fraction", 0.0)),
            "mode": result.get("mode", "regular"),
        }
        self.trace.log("reduce_commit", task=task.name, attempt=attempt.attempt_id)
        if self.history is not None:
            self.history.record_reduce(self.sim.now, task.task_id,
                                       self.reduce_commits[task.task_id])
        if self.committed_reduces >= self.num_reduces:
            self._finish(success=True)

    def _attempt_failed(self, attempt, reason: str) -> None:
        if self._crashed:
            # Orphan failure during AM downtime: release the container;
            # the next incarnation reconciles the task (it has no
            # running attempt, so it is simply rescheduled).
            self.rm.release_container(attempt.container)
            return
        self.rm.release_container(attempt.container)
        task = attempt.task
        task.failed_attempts += 1
        self.trace.log("attempt_failed", task=task.name, attempt=attempt.attempt_id,
                       node=attempt.node.name, reason=reason, type=task.task_type.value)
        self.policy.on_attempt_outcome(attempt, ok=False)
        if self._finished or task.is_finished:
            return
        if task.failed_attempts >= self.conf.max_attempts:
            task.state = TaskState.FAILED
            self.trace.log("task_failed", task=task.name, reason=reason)
            self._finish(success=False)
            return
        self.policy.on_task_failed(task, attempt, reason)

    # -- reducers -----------------------------------------------------------
    def _reduce_launch_threshold(self) -> int:
        return max(1, math.ceil(self.conf.slowstart_completed_maps * self.num_maps))

    def _launch_reducers(self) -> None:
        self._reducers_launched = True
        for task in self.reduce_tasks:
            # After an AM restart, recovered (finished) and adopted
            # (running) reducers must not be scheduled again; on the
            # first launch every reducer is pending and none is skipped.
            if task.is_finished or task.running_attempts() or task.outstanding_requests:
                continue
            self.schedule_task(task, priority=self.conf.reduce_priority)

    def register_reducer(self, attempt: "ReduceAttempt") -> None:
        self.active_reducers.append(attempt)
        for map_id in self.registry.known_map_ids():
            mof = self.registry.get(map_id)
            if mof is not None:
                attempt.notify_mof(mof)

    def unregister_reducer(self, attempt: "ReduceAttempt") -> None:
        if attempt in self.active_reducers:
            self.active_reducers.remove(attempt)

    # -- fetch-failure accounting ------------------------------------------------
    def report_fetch_failure(self, reducer_attempt, map_ids: list[int], host: Node) -> None:
        if self.dead:
            return  # no AM to report to (orphan reducer during downtime)
        for map_id in map_ids:
            count = self.fetch_failure_reports.get(map_id, 0) + 1
            self.fetch_failure_reports[map_id] = count
            self.trace.log("fetch_failure_report", map_id=map_id, host=host.name,
                           reducer=reducer_attempt.attempt_id, count=count)
            task = self.map_tasks[map_id]
            self.policy.on_fetch_failure_report(task, count)

    def rerun_map(self, task: Task, priority: float | None = None) -> None:
        """Re-execute a *completed* map whose MOF is gone."""
        if self.dead:
            return  # no re-runs against a finished or crashed job
        if task.state is not TaskState.SUCCEEDED:
            return  # already re-running or never finished
        self.registry.invalidate(task.task_id)
        self.fetch_failure_reports.pop(task.task_id, None)
        for reducer in list(self.active_reducers):
            reducer.drop_mof(task.task_id)
        task.state = TaskState.RUNNING
        self.trace.log("map_rerun", task=task.name)
        self.schedule_task(task, priority=priority if priority is not None
                           else self.conf.recovery_map_priority)

    # -- task timeout -------------------------------------------------------
    def on_attempt_vanished(self, attempt) -> None:
        """An attempt died (or completed) into the void on an unreachable
        node. If the RM later declares the node lost, the node-lost path
        reschedules the task; but a partition that heals *before* the
        liveness timeout leaves the RM none the wiser, and only this —
        Hadoop's ``mapreduce.task.timeout`` — gets the task re-run."""
        if self.dead:
            # Teardown/crash races land here: an attempt that vanishes
            # *while* the AM is finishing (or after it crashed) must not
            # arm a timeout that would later reschedule work against a
            # dead job.
            return
        self.sim.process(self._vanished_watch(attempt),
                         name=f"task-timeout:{attempt.attempt_id}")

    def _vanished_watch(self, attempt):
        task = attempt.task
        n_attempts = len(task.attempts)
        yield self.sim.timeout(self.conf.task_timeout)
        if (self.dead or task.is_finished
                or attempt.state is not AttemptState.VANISHED
                or len(task.attempts) != n_attempts
                or task.outstanding_requests > 0):
            return  # something else already rescheduled (or finished) it
        self._attempt_failed(attempt, "task-timeout")

    # -- node loss ----------------------------------------------------------
    def tasks_running_on(self, node: Node) -> list[Task]:
        """Tasks whose latest attempt was running on ``node`` when it died."""
        out = []
        for task in self.map_tasks + self.reduce_tasks:
            for a in task.attempts:
                if a.node is node and a.state in (AttemptState.RUNNING, AttemptState.KILLED,
                                                  AttemptState.VANISHED):
                    if not task.is_finished:
                        out.append(task)
                        break
        return out

    def completed_maps_on(self, node: Node) -> list[Task]:
        return [self.map_tasks[m.map_id] for m in self.registry.on_node(node)
                if self.map_tasks[m.map_id].state is TaskState.SUCCEEDED]

    def _on_node_lost(self, node: Node) -> None:
        if self.dead:
            return
        self.trace.log("node_lost", node=node.name)
        # Adjudicate the dying attempts *now*: the RM listener runs before
        # the ContainerKilled exceptions reach the attempt processes, and
        # the policy must see those attempts as dead when it reschedules.
        for task in self.map_tasks + self.reduce_tasks:
            for a in task.attempts:
                if a.node is node and a.state is AttemptState.RUNNING:
                    a.state = AttemptState.KILLED
                    a.end_time = self.sim.now
                    self.trace.log("attempt_killed_node_lost", task=task.name,
                                   attempt=a.attempt_id, type=task.task_type.value)
        self.policy.on_node_lost(node)

    def _on_node_rejoined(self, node: Node) -> None:
        if self.dead:
            return
        self.trace.log("node_rejoined", node=node.name)
        self.policy.on_node_rejoined(node)

    # -- AM failure & restart -------------------------------------------------
    def crash(self, keep_containers: bool) -> None:
        """Kill this AM incarnation (the AMFault hook).

        The job-level objects (history log, HDFS state, the RM) all
        survive; only this coordinator dies. With ``keep_containers``
        the running attempts keep executing as orphans for the next
        incarnation to adopt; otherwise everything is torn down, as when
        YARN work-preserving AM restart is off.
        """
        if self.dead:
            return
        self._crashed = True
        for listeners, fn in ((self.rm.node_lost_listeners, self._on_node_lost),
                              (self.rm.node_rejoined_listeners, self._on_node_rejoined)):
            try:
                listeners.remove(fn)
            except ValueError:  # pragma: no cover - defensive
                pass
        if not keep_containers:
            self.teardown_orphans("am-crashed")

    def teardown_orphans(self, reason: str) -> None:
        """Kill surviving attempts and release buffered containers."""
        for task in self.map_tasks + self.reduce_tasks:
            for attempt in task.running_attempts():
                attempt.kill(reason, discard=True)
        for attempt, _result in self._orphan_reports:
            self.rm.release_container(attempt.container)
        self._orphan_reports.clear()

    def drain_orphan_reports(self) -> list[tuple]:
        reports, self._orphan_reports = self._orphan_reports, []
        return reports

    def recover(self, old_am: "MRAppMaster", keep_containers: bool) -> None:
        """Rebuild job state after a restart.

        With ``am_recovery == "log"`` the job-history log is replayed:
        completed maps whose MOFs are still on disk are marked done
        without re-execution (their registry entries are restored), and
        committed reduces keep their commits. ``rerun-all`` skips the
        replay entirely — the ablation baseline. Independently,
        ``keep_containers`` adopts orphaned running attempts and replays
        completions that landed during the downtime; otherwise the old
        incarnation's survivors are torn down.
        """
        if self.conf.am_recovery == "log" and self.history is not None:
            for map_id, rec in sorted(self.history.map_records().items()):
                task = self.map_tasks[map_id]
                if task.is_finished or not rec.mof.on_disk():
                    continue
                task.state = TaskState.SUCCEEDED
                task.counted = True
                self.completed_maps += 1
                self.registry.register(rec.mof)
                self.max_map_runtime = max(self.max_map_runtime, rec.runtime)
                self.trace.log("map_recovered", task=task.name,
                               node=rec.mof.node.name)
            for task_id, rec in sorted(self.history.reduce_records().items()):
                task = self.reduce_tasks[task_id]
                if task.is_finished:
                    continue
                task.state = TaskState.SUCCEEDED
                task.counted = True
                self.committed_reduces += 1
                self.reduce_commits[task_id] = dict(rec.commit)
                self.trace.log("reduce_recovered", task=task.name)
        if not keep_containers:
            old_am.teardown_orphans("am-restart-teardown")
            return
        for old_task in old_am.map_tasks + old_am.reduce_tasks:
            pool = (self.map_tasks if old_task.task_type is TaskType.MAP
                    else self.reduce_tasks)
            new_task = pool[old_task.task_id]
            for attempt in old_task.running_attempts():
                if new_task.is_finished:
                    attempt.kill("superseded-after-am-restart", discard=True)
                    continue
                attempt.am = self
                attempt.task = new_task
                new_task.attempts.append(attempt)
                new_task.state = TaskState.RUNNING
                # Adoption keeps the column slot; re-own it so the
                # vectorized scans include it in this incarnation.
                attempt._col_set(owner=self.am_attempt)
                self.trace.log("attempt_adopted", task=new_task.name,
                               attempt=attempt.attempt_id,
                               type=new_task.task_type.value)
                if (old_task.task_type is TaskType.REDUCE
                        and getattr(attempt, "_registered", False)):
                    # Re-home a shuffle-stage reducer: registering with
                    # this AM re-notifies every known MOF (idempotent on
                    # the reducer side).
                    self.register_reducer(attempt)
        # Completions that landed while no AM was alive: re-point and
        # replay them through the normal success path (which releases
        # the still-held containers and writes the usual records).
        for attempt, result in old_am.drain_orphan_reports():
            pool = (self.map_tasks if attempt.task.task_type is TaskType.MAP
                    else self.reduce_tasks)
            new_task = pool[attempt.task.task_id]
            attempt.am = self
            attempt.task = new_task
            new_task.attempts.append(attempt)
            self._attempt_succeeded(attempt, result)

    # -- completion -----------------------------------------------------------
    def _finish(self, success: bool) -> None:
        if self.dead:
            return
        self._finished = True
        self.trace.log("job_end", job=self.job_name, success=success)
        self.policy.on_job_finished()
        # Real AMs tear down every container at unregistration. Without
        # this, late map re-runs (MOF regeneration races) outlive the
        # job holding containers — the no-orphans invariant's top find.
        for task in self.map_tasks + self.reduce_tasks:
            for attempt in task.running_attempts():
                attempt.kill("job finished", discard=True)
        self.done.succeed({
            "success": success,
            "start_time": self.start_time,
            "end_time": self.sim.now,
        })

    # -- live metrics (used by samplers and fault triggers) -----------------
    def _running_attempt_slots(self, task_type: int | None = None) -> "np.ndarray":
        """Column slots of this incarnation's running attempts
        (columnar plane only; caller checks ``attempt_columns``)."""
        store = self.attempt_columns
        n = store.size
        mask = (store.used[:n] & store.col("running")[:n]
                & (store.col("owner")[:n] == self.am_attempt))
        if task_type is not None:
            mask &= store.col("task_type")[:n] == task_type
        return np.flatnonzero(mask)

    def _attempt_progress(self, slots: "np.ndarray") -> "np.ndarray":
        """Vectorized ``attempt.progress`` for column ``slots``."""
        sched = self.cluster.flows
        return attempt_progress(self.attempt_columns, slots,
                                getattr(sched, "columns", None),
                                self.sim.now, sched._last_update)

    def reduce_phase_progress(self) -> float:
        """Mean progress over all reduce tasks (completed count as 1)."""
        if not self.reduce_tasks:
            return 1.0
        if self.attempt_columns is not None:
            store = self.attempt_columns
            slots = self._running_attempt_slots(task_type=1)
            best = np.full(self.num_reduces, -math.inf)
            if len(slots):
                np.maximum.at(best, store.col("task_id")[slots],
                              self._attempt_progress(slots))
            total = 0.0
            for task in self.reduce_tasks:
                if task.state is TaskState.SUCCEEDED:
                    total += 1.0
                else:
                    b = best[task.task_id]
                    if b != -math.inf:
                        total += float(b)
            return total / self.num_reduces
        total = 0.0
        for task in self.reduce_tasks:
            if task.state is TaskState.SUCCEEDED:
                total += 1.0
            else:
                running = task.running_attempts()
                if running:
                    total += max(a.progress for a in running)
        return total / self.num_reduces

    def map_phase_progress(self) -> float:
        return self.completed_maps / max(self.num_maps, 1)

    def failed_reduce_attempts(self) -> int:
        return self.trace.count("attempt_failed", type="reduce")

    def log_task_progress(self) -> None:
        """Emit one ``task_progress`` record per running attempt.

        Both planes produce identical rows in identical order: the
        scalar walk visits maps then reduces in task-id order, attempts
        in list order (which is allocation order — adoption preserves
        relative order and new attempts append); the columnar path
        sorts its one gathered block by (type, task, allocation seq)
        and converts cells to python scalars before logging so the
        hashed records are byte-identical.
        """
        trace = self.trace
        store = self.attempt_columns
        if store is not None:
            slots = self._running_attempt_slots()
            if not len(slots):
                return
            order = np.lexsort((store.col("seq")[slots],
                                store.col("task_id")[slots],
                                store.col("task_type")[slots]))
            slots = slots[order]
            progress = self._attempt_progress(slots).tolist()
            tts = store.col("task_type")[slots].tolist()
            tids = store.col("task_id")[slots].tolist()
            idxs = store.col("attempt_index")[slots].tolist()
            for tt, tid, idx, prog in zip(tts, tids, idxs, progress):
                trace.log("task_progress", tt=tt, task=tid, attempt=idx,
                          progress=prog)
            return
        for tasks, tt in ((self.map_tasks, 0), (self.reduce_tasks, 1)):
            for task in tasks:
                for a in task.attempts:
                    if a.state is AttemptState.RUNNING:
                        trace.log("task_progress", tt=tt, task=task.task_id,
                                  attempt=a.attempt_index, progress=a.progress)

    def map_locality_counts(self) -> dict[str, int]:
        """Hadoop-style locality breakdown of successful map reads."""
        counts = {"data-local": 0, "rack-local": 0, "off-rack": 0}
        for task in self.map_tasks:
            for a in task.attempts:
                locality = getattr(a, "locality", None)
                if locality is not None and a.state.value == "succeeded":
                    counts[locality] += 1
        return counts
