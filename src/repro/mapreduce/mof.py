"""Map Output Files (MOFs) and the AppMaster's registry of them.

A MOF is the sorted, partitioned output a MapTask leaves on its node's
local disk; each ReduceTask later fetches exactly one partition from
every MOF. The registry is the AM's (possibly *stale*) view: stock YARN
does not invalidate entries when a node dies — reducers discover the
loss through fetch failures, which is the root of the paper's failure
amplification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node

__all__ = ["MapOutput", "MOFRegistry"]


@dataclass
class MapOutput:
    """One map's output file: location and per-reducer partition sizes."""

    map_id: int
    attempt_id: str
    node: Node
    partition_sizes: np.ndarray

    @property
    def total_size(self) -> float:
        return float(self.partition_sizes.sum())

    @property
    def path(self) -> str:
        return f"mof/{self.map_id}/{self.attempt_id}"

    def partition(self, reducer_index: int) -> float:
        return float(self.partition_sizes[reducer_index])

    def on_disk(self) -> bool:
        """Whether the bytes are physically still there."""
        return self.node.has_file(self.path)


class MOFRegistry:
    """The AM's map-output location table."""

    def __init__(self) -> None:
        self._by_map: dict[int, MapOutput] = {}

    def register(self, mof: MapOutput) -> None:
        self._by_map[mof.map_id] = mof

    def get(self, map_id: int) -> MapOutput | None:
        return self._by_map.get(map_id)

    def invalidate(self, map_id: int) -> None:
        self._by_map.pop(map_id, None)

    def known_map_ids(self) -> list[int]:
        return list(self._by_map)

    def on_node(self, node: Node) -> list[MapOutput]:
        return [m for m in self._by_map.values() if m.node is node]

    def __len__(self) -> int:
        return len(self._by_map)

    def __contains__(self, map_id: int) -> bool:
        return map_id in self._by_map
