"""MapTask attempt: read split -> map function -> sort/spill -> MOF."""

from __future__ import annotations

from repro.cluster.node import MB
from repro.mapreduce.mof import MapOutput
from repro.mapreduce.tasks import Task, TaskAttempt, TaskFailed
from repro.sim.flows import FlowCancelled
from repro.yarn.rm import Container

__all__ = ["MapAttempt"]

#: Weights of the three stages in the attempt's progress report.
_READ_W, _CPU_W, _WRITE_W = 0.35, 0.35, 0.30


class MapAttempt(TaskAttempt):
    """One execution of a MapTask.

    Cost model: read the 128 MB split (locality-aware, with replica
    failover), burn map CPU proportional to input bytes, then write the
    MOF to the local disk — with one extra read+write merge pass when
    the output exceeds the map-side sort buffer (``io.sort.mb``),
    matching Hadoop's multi-spill merge.
    """

    def __init__(self, am, task: Task, container: Container) -> None:
        super().__init__(am, task, container)
        self._stage = "init"
        self._stage_frac = 0.0
        self._read_flow = None
        self._write_flow = None
        #: Where the split was read from: data-local / rack-local / off-rack.
        self.locality: str | None = None

    @property
    def progress(self) -> float:
        if self._stage == "init":
            return 0.0
        if self._stage == "read":
            frac = self._read_flow.progress if self._read_flow is not None else 0.0
            return _READ_W * frac
        if self._stage == "cpu":
            return _READ_W + _CPU_W * self._stage_frac
        if self._stage == "write":
            frac = self._write_flow.progress if self._write_flow is not None else 0.0
            return _READ_W + _CPU_W + _WRITE_W * frac
        return 1.0

    def run(self):
        wl = self.am.workload
        conf = self.am.conf
        block = self.task.block
        assert block is not None, "map task needs an input split"

        yield from self._step(self.sim.timeout(conf.task_startup_seconds))

        # 1. Read the input split, preferring local then rack-local
        # replicas, failing over if a source dies mid-read.
        self._stage = "read"
        self._col_set(prog_base=0.0, prog_span=_READ_W)
        candidates = self.am.hdfs._ordered_replicas(self.node, block)
        if not candidates:
            raise TaskFailed("input-block-lost")
        # Map attempts are strictly sequential (read, compute, write);
        # each step is a single flow admission, so they ride on the
        # scheduler's same-instant coalescing with no explicit batching.
        read_ok = False
        for src in candidates:
            try:
                if src is self.node:
                    fl = self.cluster.disk_read(self.node, block.size, name=f"split:{self.attempt_id}")
                else:
                    fl = self.cluster.net_transfer(src, self.node, block.size,
                                                   name=f"split:{self.attempt_id}")
            except Exception:
                continue
            self._read_flow = self._flow(fl)
            self._col_flow(fl)
            try:
                yield from self._step(fl.done)
                read_ok = True
                if src is self.node:
                    self.locality = "data-local"
                elif src.rack is self.node.rack:
                    self.locality = "rack-local"
                else:
                    self.locality = "off-rack"
                break
            except FlowCancelled:
                continue
        if not read_ok:
            raise TaskFailed("input-block-lost")

        # 2. Map function CPU.
        self._stage = "cpu"
        self._col_set(prog_base=_READ_W + _CPU_W * self._stage_frac, prog_span=0.0)
        self._col_flow(None)
        cpu_s = wl.map_cpu_per_mb * (block.size / MB)
        yield from self._step(self.cluster.compute(self.node, cpu_s))
        self._stage_frac = 1.0

        # 3. Sort/spill the MOF to local disk. Output larger than the
        # sort buffer costs an extra merge pass (read + write).
        self._stage = "write"
        self._col_set(prog_base=_READ_W + _CPU_W, prog_span=_WRITE_W)
        out_size = block.size * wl.map_selectivity
        write_bytes = out_size
        if out_size > conf.io_sort_mb:
            write_bytes += 2.0 * out_size  # spill-merge: re-read + re-write
        if write_bytes > 0:
            self._write_flow = self._flow(
                self.cluster.disk_write(self.node, write_bytes, name=f"mof:{self.attempt_id}")
            )
            self._col_flow(self._write_flow)
            yield from self._step(self._write_flow.done)
        self._stage_frac = 1.0
        self._stage = "done"
        self._col_set(prog_base=1.0, prog_span=0.0)
        self._col_flow(None)

        weights = self.am.partition_weights
        mof = MapOutput(
            map_id=self.task.task_id,
            attempt_id=self.attempt_id,
            node=self.node,
            partition_sizes=out_size * weights,
        )
        if self.node.alive:
            self.node.write_file(mof.path, out_size, kind="mof")
        return mof
