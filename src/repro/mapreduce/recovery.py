"""Pluggable failure-recovery policies.

The AM delegates every recovery decision to a policy object so that the
paper's contribution (the ALM policy in :mod:`repro.alm`) and the
baseline (stock YARN task re-execution, here) are interchangeable and
directly comparable — the benchmarks run the same job twice with
different policies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import Node
from repro.mapreduce.tasks import Task, TaskType

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.appmaster import MRAppMaster
    from repro.mapreduce.reducetask import ReduceAttempt
    from repro.yarn.rm import Container

__all__ = ["RecoveryPolicy", "YarnRecoveryPolicy"]


class RecoveryPolicy:
    """Interface the MRAppMaster consults on every failure event."""

    name = "abstract"

    def __init__(self) -> None:
        self.am: "MRAppMaster | None" = None

    def attach(self, am: "MRAppMaster") -> None:
        self.am = am

    # -- failure hooks ---------------------------------------------------------
    def on_task_failed(self, task: Task, attempt, reason: str) -> None:
        """An attempt reported failure from a reachable node."""
        raise NotImplementedError

    def on_node_lost(self, node: Node) -> None:
        """The RM declared ``node`` lost (liveness expiry)."""
        raise NotImplementedError

    def on_fetch_failure_report(self, map_task: Task, report_count: int) -> None:
        """A reducer reported it cannot fetch ``map_task``'s output."""
        raise NotImplementedError

    def on_node_rejoined(self, node: Node) -> None:
        """A lost node restarted/healed and re-registered with the RM.
        Default: nothing — rejoined nodes are simply schedulable again.
        """

    def on_fetch_giveup(self, attempt: "ReduceAttempt", host: Node, map_ids: list[int]) -> str:
        """A fetch round against ``host`` was abandoned. Return
        ``"report"`` to count/report the failure (stock YARN) or
        ``"wait"`` to have the reducer wait for MOF regeneration (SFM).
        """
        return "report"

    # -- speculation / placement extension points -------------------------------
    def make_speculator(self, am: "MRAppMaster", config=None):
        """Build the job's speculator (straggler-detector policies swap
        in their own subclass here). Default: the stock LATE scanner."""
        from repro.mapreduce.speculation import Speculator

        return Speculator(am, config)

    def steer_placement(
        self, task: Task, preferred: "list[Node] | None",
        exclude: "list[Node] | None",
    ) -> "tuple[list[Node] | None, list[Node] | None]":
        """Adjust the container request's placement hints before the AM
        asks the RM (failure-aware schedulers veto risky nodes here).
        Default: pass both lists through unchanged."""
        return preferred, exclude

    def on_attempt_outcome(self, attempt, ok: bool) -> None:
        """Every attempt outcome the AM observes (success and failure),
        for policies that keep per-node outcome history. Default: no-op."""

    # -- attempt construction -------------------------------------------------
    def make_reduce_attempt(self, task: Task, container: "Container", **kwargs):
        """Build the reduce attempt (ALM injects logging/recovery here)."""
        from repro.mapreduce.reducetask import ReduceAttempt

        return ReduceAttempt(self.am, task, container, **kwargs)

    def on_reduce_attempt_started(self, attempt: "ReduceAttempt") -> None:
        """Called right after a reduce attempt process starts."""

    def reduce_output_level(self):
        """Replica-placement level for reduce output streams, or None
        for the HDFS default (ALG overrides this: §III-B writes the
        result file 'with local and rack replicas')."""
        return None

    def on_map_completed(self, task: Task, mof) -> None:
        """A map registered its MOF (ISS-style baselines replicate
        intermediate data from here)."""

    def on_job_finished(self) -> None:
        """Called once when the job completes (either way)."""


class YarnRecoveryPolicy(RecoveryPolicy):
    """Stock YARN failover: re-launch failed tasks on any healthy node.

    Faithfully *keeps the bugs the paper identifies*: when a node is
    lost, only its RUNNING attempts are rescheduled — completed maps'
    MOFs stay registered, so reducers discover the loss one fetch
    failure at a time; a map is re-executed only after
    ``map_refetch_reports`` fetch-failure reports.
    """

    name = "yarn"

    def on_task_failed(self, task: Task, attempt, reason: str) -> None:
        am = self.am
        if task.task_type is TaskType.MAP:
            # Hadoop retries failed maps at PRIORITY_FAST_FAIL_MAP,
            # ahead of the normal map backlog.
            am.schedule_task(task, priority=am.conf.recovery_map_priority)
        else:
            am.schedule_task(task, priority=am.conf.reduce_priority)

    def on_node_lost(self, node: Node) -> None:
        am = self.am
        # Re-run tasks whose *running* attempt died with the node. The
        # container-kill already ended the attempt processes.
        for task in am.tasks_running_on(node):
            if (not task.is_finished and not task.running_attempts()
                    and task.outstanding_requests == 0):
                prio = (am.conf.map_priority if task.task_type is TaskType.MAP
                        else am.conf.reduce_priority)
                am.schedule_task(task, priority=prio)
        # NOTE: completed maps on the dead node are deliberately NOT
        # re-executed here — that is the stock-YARN behaviour whose
        # consequences (failure amplification) the paper measures.

    def on_fetch_failure_report(self, map_task: Task, report_count: int) -> None:
        if report_count >= self.am.conf.map_refetch_reports:
            self.am.rerun_map(map_task)
