"""Multi-tenant simulation: several MapReduce jobs on one YARN cluster.

Real YARN is shared infrastructure — the paper's motivation cites
production traces (Kavulya et al.) where failures delay *workloads*,
not single jobs. :class:`SharedCluster` wires one simulator, cluster,
HDFS and ResourceManager, and lets you submit any number of jobs (each
with its own AM, recovery policy and faults) that compete for
containers; a failure injected into one job can perturb its neighbours
through the shared nodes, disks and network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster, ClusterSpec
from repro.hdfs.hdfs import Hdfs, HdfsConfig
from repro.mapreduce.appmaster import MRAppMaster
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import JobResult
from repro.mapreduce.recovery import RecoveryPolicy, YarnRecoveryPolicy
from repro.metrics.trace import ProgressSampler, Trace
from repro.sim.core import SimulationError, Simulator
from repro.workloads import Workload
from repro.yarn.rm import ResourceManager, YarnConfig

__all__ = ["JobHandle", "SharedCluster"]


@dataclass
class JobHandle:
    """One submitted job plus the view fault injectors need.

    Exposes the same attribute surface as
    :class:`~repro.mapreduce.job.MapReduceRuntime` (``sim``, ``cluster``,
    ``workers``, ``am``, ``trace``, ``policy``), so every injector in
    :mod:`repro.faults` can be installed on a handle unchanged.
    """

    job_name: str
    workload: Workload
    sim: Simulator
    cluster: Cluster
    workers: list
    hdfs: Hdfs
    am: MRAppMaster
    trace: Trace
    policy: RecoveryPolicy
    submit_delay: float = 0.0
    result: JobResult | None = field(default=None, init=False)

    def install(self, fault) -> "JobHandle":
        fault.install(self)
        return self


class SharedCluster:
    """One cluster, many jobs."""

    def __init__(
        self,
        cluster_spec: ClusterSpec | None = None,
        yarn_config: YarnConfig | None = None,
        hdfs_config: HdfsConfig | None = None,
        sample_interval: float = 2.0,
    ) -> None:
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, cluster_spec or ClusterSpec())
        if len(self.cluster.nodes) < 2:
            raise SimulationError("need at least 2 nodes")
        self.master = self.cluster.nodes[0]
        self.workers = self.cluster.nodes[1:]
        self.hdfs = Hdfs(self.sim, self.cluster, hdfs_config or HdfsConfig())
        self.hdfs.datanodes = list(self.workers)
        self.rm = ResourceManager(self.sim, self.cluster,
                                  yarn_config or YarnConfig(),
                                  worker_nodes=self.workers)
        self.cluster.rejoin_listeners.append(self.rm.register_node)
        self.sample_interval = sample_interval
        self.jobs: list[JobHandle] = []
        self._ran = False

    def submit(
        self,
        workload: Workload,
        policy: RecoveryPolicy | None = None,
        conf: JobConf | None = None,
        job_name: str | None = None,
        delay: float = 0.0,
        faults: tuple = (),
    ) -> JobHandle:
        """Register a job; it starts ``delay`` seconds into the run."""
        if self._ran:
            raise SimulationError("cluster already ran; build a new one")
        name = job_name or f"job{len(self.jobs)}-{workload.name}"
        input_path = f"input/{name}"
        self.hdfs.ingest(input_path, workload.input_size)
        trace = Trace(self.sim)
        pol = policy or YarnRecoveryPolicy()
        am = MRAppMaster(
            self.sim, self.cluster, self.rm, self.hdfs, workload,
            conf or JobConf(), pol, trace, input_path=input_path, job_name=name,
        )
        handle = JobHandle(
            job_name=name, workload=workload, sim=self.sim,
            cluster=self.cluster, workers=self.workers, hdfs=self.hdfs,
            am=am, trace=trace, policy=pol, submit_delay=delay,
        )
        sampler = ProgressSampler(self.sim, trace, interval=self.sample_interval)
        sampler.add_probe("reduce_progress", am.reduce_phase_progress)
        for fault in faults:
            handle.install(fault)

        def starter(sim=self.sim):
            if delay > 0:
                yield sim.timeout(delay)
            sampler.start()
            am.start()

        self.sim.process(starter(), name=f"submit:{name}")
        self.jobs.append(handle)
        return handle

    def run_all(self) -> list[JobResult]:
        """Run the simulation until every submitted job ends."""
        if not self.jobs:
            raise SimulationError("no jobs submitted")
        self._ran = True
        all_done = self.sim.all_of([h.am.done for h in self.jobs])
        outcome = self.sim.run(until=all_done)
        if outcome is None:
            raise SimulationError("jobs did not complete")
        results = []
        for handle, oc in zip(self.jobs, outcome):
            counters = {
                "completed_maps": handle.am.completed_maps,
                "committed_reduces": handle.am.committed_reduces,
                "failed_map_attempts": handle.trace.count("attempt_failed", type="map"),
                "failed_reduce_attempts": handle.trace.count("attempt_failed", type="reduce"),
                "map_reruns": handle.trace.count("map_rerun"),
                "nodes_lost": handle.trace.count("node_lost"),
            }
            handle.result = JobResult(
                job_name=handle.job_name,
                workload=handle.workload.name,
                policy=handle.policy.name,
                success=oc["success"],
                start_time=oc["start_time"],
                end_time=oc["end_time"],
                trace=handle.trace,
                counters=counters,
            )
            results.append(handle.result)
        return results
