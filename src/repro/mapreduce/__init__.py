"""The MapReduce execution framework (Hadoop YARN MRv2 semantics).

This package implements the machinery the paper studies and patches:

- :mod:`~repro.mapreduce.config` — JobConf with Table I parameters and
  the shuffle/fetch-failure knobs.
- :mod:`~repro.mapreduce.mof` — Map Output Files and their registry.
- :mod:`~repro.mapreduce.maptask` / :mod:`~repro.mapreduce.reducetask`
  — task attempt processes (split read -> map -> sort/spill; shuffle ->
  merge -> reduce with Hadoop's fetch retry/backoff and
  fetch-failure-driven task suicide).
- :mod:`~repro.mapreduce.appmaster` — the MRAppMaster: container
  scheduling, attempt bookkeeping, fetch-failure accounting, and a
  pluggable :class:`~repro.mapreduce.recovery.RecoveryPolicy` (stock
  YARN task re-execution here; the paper's ALM policy in
  :mod:`repro.alm`).
- :mod:`~repro.mapreduce.job` — one-call job runner wiring the whole
  stack together.
"""

from repro.mapreduce.config import JobConf
from repro.mapreduce.job import JobResult, MapReduceRuntime, run_job
from repro.mapreduce.mof import MapOutput, MOFRegistry
from repro.mapreduce.multijob import JobHandle, SharedCluster
from repro.mapreduce.recovery import RecoveryPolicy, YarnRecoveryPolicy
from repro.mapreduce.speculation import SpeculationConfig, Speculator
from repro.mapreduce.tasks import Task, TaskAttempt, TaskFailed, TaskState, TaskType

__all__ = [
    "JobConf",
    "JobHandle",
    "JobResult",
    "MapOutput",
    "MOFRegistry",
    "MapReduceRuntime",
    "RecoveryPolicy",
    "SharedCluster",
    "SpeculationConfig",
    "Speculator",
    "Task",
    "TaskAttempt",
    "TaskFailed",
    "TaskState",
    "TaskType",
    "YarnRecoveryPolicy",
    "run_job",
]
