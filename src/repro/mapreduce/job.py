"""One-call job runner: wires sim, cluster, HDFS, YARN and the AM.

:class:`MapReduceRuntime` is the object the experiment drivers and
fault injectors hold: it exposes every layer before the clock starts so
faults and probes can be attached, then :meth:`run` drives the
simulation to job completion and returns a :class:`JobResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster import Cluster, ClusterSpec
from repro.hdfs.hdfs import Hdfs, HdfsConfig
from repro.mapreduce.appmaster import MRAppMaster
from repro.mapreduce.config import JobConf
from repro.mapreduce.history import JobHistoryLog
from repro.mapreduce.recovery import RecoveryPolicy, YarnRecoveryPolicy
from repro.metrics.trace import ProgressSampler, Trace
from repro.sim.columns import AttemptColumns, columnar_enabled
from repro.sim.core import SimulationError, Simulator
from repro.workloads import Workload
from repro.yarn.rm import ResourceManager, YarnConfig

__all__ = ["JobResult", "MapReduceRuntime", "StallError", "run_job"]


class StallError(SimulationError):
    """The stall watchdog declared the simulation wedged: neither the
    event loop nor job progress moved for a full stall window."""


@dataclass
class JobResult:
    """Outcome and measurements of one simulated job."""

    job_name: str
    workload: str
    policy: str
    success: bool
    start_time: float
    end_time: float
    trace: Trace
    counters: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "ok" if self.success else "FAILED"
        return f"<JobResult {self.job_name} {status} {self.elapsed:.1f}s>"


class MapReduceRuntime:
    """A fully wired simulated cluster ready to run one job."""

    def __init__(
        self,
        workload: Workload,
        conf: JobConf | None = None,
        cluster_spec: ClusterSpec | None = None,
        yarn_config: YarnConfig | None = None,
        hdfs_config: HdfsConfig | None = None,
        policy: RecoveryPolicy | None = None,
        job_name: str = "job",
        sample_interval: float = 1.0,
        speculation: bool | "SpeculationConfig" = False,
        trace_columnar: bool = False,
    ) -> None:
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, cluster_spec or ClusterSpec())
        if len(self.cluster.nodes) < 2:
            raise SimulationError("need at least 2 nodes (RM/NN + 1 worker)")
        #: Node 0 is dedicated to the RM and NameNode (paper §V-A).
        self.master = self.cluster.nodes[0]
        self.workers = self.cluster.nodes[1:]
        self.hdfs = Hdfs(self.sim, self.cluster, hdfs_config or HdfsConfig())
        self.hdfs.datanodes = list(self.workers)
        self.rm = ResourceManager(self.sim, self.cluster, yarn_config or YarnConfig(),
                                  worker_nodes=self.workers)
        # Healed/restarted nodes re-register with the RM (fresh NM).
        self.cluster.rejoin_listeners.append(self.rm.register_node)
        self.conf = conf or JobConf()
        self.workload = workload
        self.policy = policy or YarnRecoveryPolicy()
        self.trace = Trace(self.sim)
        self.job_name = job_name
        #: Opt-in registration of the high-volume trace kinds
        #: (``task_progress`` per running attempt per sampler tick,
        #: ``flow_done`` per completed flow) — the big scenario configs
        #: turn this on. Registration must precede any logging, and is
        #: independent of the data plane: records are hashed through the
        #: same ``_export_record`` coercion on both storage paths, so
        #: digests cannot drift.
        self.trace_columnar = trace_columnar
        if trace_columnar:
            self.trace.columnar("task_progress", capacity=1024,
                                tt="i1", task="i8", attempt="i4", progress="f8")
            self.trace.columnar("flow_done", capacity=1024, fid="i8", size="f8")
            self.cluster.flows.on_complete = self._log_flow_done
        #: Shared per-attempt column mirror (columnar plane only); one
        #: store per job, handed to every AM incarnation so adopted
        #: attempts keep their slots across restarts.
        self.attempt_columns = AttemptColumns() if columnar_enabled() else None

        self._input_path = input_path = f"input/{job_name}"
        self.hdfs.ingest(input_path, workload.input_size)
        #: Job-history event log — outlives any single AM incarnation.
        self.history = JobHistoryLog()
        self.am = MRAppMaster(
            self.sim, self.cluster, self.rm, self.hdfs, workload, self.conf,
            self.policy, self.trace, input_path=input_path, job_name=job_name,
            history=self.history, attempt_columns=self.attempt_columns,
        )
        #: Every AM this job has had, oldest first; ``self.am`` is the
        #: live one (re-bound by :meth:`_relaunch_am`).
        self.am_incarnations: list[MRAppMaster] = [self.am]
        #: Triggers once for the whole job, across AM restarts.
        self.job_done = self.sim.event()
        self._chain_am(self.am)
        self.speculator = None
        if speculation:
            from repro.mapreduce.speculation import SpeculationConfig

            spec_cfg = speculation if isinstance(speculation, SpeculationConfig) else None
            self.speculator = self.policy.make_speculator(self.am, spec_cfg)
        self.sampler = ProgressSampler(self.sim, self.trace, interval=sample_interval)
        # Probes go through ``self.am`` late-bound so they track the
        # live incarnation across AM restarts. On the columnar plane the
        # three gauges come from one block (a single column scan feeds
        # all of them); the series names and values are identical to the
        # reference plane's three probes, and the digest sorts series by
        # name, so the storage path cannot affect the digest.
        if self.attempt_columns is not None:
            self.sampler.add_probe_block(self._progress_block)
        else:
            self.sampler.add_probe("reduce_progress",
                                   lambda: self.am.reduce_phase_progress())
            self.sampler.add_probe("map_progress",
                                   lambda: self.am.map_phase_progress())
            self.sampler.add_probe("failed_reduce_attempts",
                                   lambda: float(self.am.failed_reduce_attempts()))
        if trace_columnar:
            self.sampler.add_probe_block(self._task_progress_block)

    def _progress_block(self):
        am = self.am
        return (
            ("reduce_progress", am.reduce_phase_progress()),
            ("map_progress", am.map_phase_progress()),
            ("failed_reduce_attempts", float(am.failed_reduce_attempts())),
        )

    def _task_progress_block(self):
        self.am.log_task_progress()
        return ()

    def _log_flow_done(self, flow) -> None:
        self.trace.log("flow_done", fid=flow.fid, size=flow.size)

    # -- AM failure & restart ------------------------------------------------
    def _chain_am(self, am: MRAppMaster) -> None:
        def forward(event) -> None:
            if not self.job_done.triggered:
                value = dict(event.value)
                value["start_time"] = self.am_incarnations[0].start_time
                self.job_done.succeed(value)

        am.done._add_callback(forward)

    def kill_am(self) -> bool:
        """Crash the live AM (the :class:`~repro.faults.inject.AMFault`
        hook). The RM relaunches it after ``conf.am_restart_delay``, up
        to ``conf.am_max_attempts`` incarnations. Returns ``False``
        when there is no live AM to kill."""
        am = self.am
        if am.dead or self.job_done.triggered:
            return False
        keep = self.conf.keep_containers_across_am_restart
        self.trace.log("am_crashed", am_attempt=am.am_attempt, keep_containers=keep)
        am.crash(keep_containers=keep)
        self.sim.process(self._relaunch_am(am), name=f"am-relaunch-{am.am_attempt + 1}")
        return True

    def _relaunch_am(self, old: MRAppMaster):
        yield self.sim.timeout(self.conf.am_restart_delay)
        if self.job_done.triggered:
            return
        attempt_no = old.am_attempt + 1
        if attempt_no >= self.conf.am_max_attempts:
            self.trace.log("am_attempts_exhausted", attempts=attempt_no)
            old.teardown_orphans("am-attempts-exhausted")
            self.job_done.succeed({
                "success": False,
                "start_time": self.am_incarnations[0].start_time,
                "end_time": self.sim.now,
            })
            return
        new_am = MRAppMaster(
            self.sim, self.cluster, self.rm, self.hdfs, self.workload, self.conf,
            self.policy, self.trace, input_path=self._input_path,
            job_name=self.job_name, history=self.history, am_attempt=attempt_no,
            partition_weights=old.partition_weights,
            attempt_columns=self.attempt_columns,
        )
        self.trace.log("am_restarted", am_attempt=attempt_no,
                       recovery=self.conf.am_recovery)
        self.am = new_am
        self.am_incarnations.append(new_am)
        if self.speculator is not None:
            self.speculator.am = new_am
        # Chain before recovery: replaying an orphaned commit can finish
        # the job synchronously inside recover().
        self._chain_am(new_am)
        new_am.recover(old, keep_containers=self.conf.keep_containers_across_am_restart)
        new_am.start()

    def run(self, timeout: float = 100_000.0,
            stall_timeout: float | None = 2_000.0) -> JobResult:
        """Run the job to completion and summarise.

        A watchdog guards the two ways a buggy schedule can hang the
        simulation: ``timeout`` is a hard ceiling on simulated time, and
        ``stall_timeout`` fails the run if *nothing observable* (trace
        events, task counters, phase progress, flow bytes) changes for
        that long — the event loop may still be ticking heartbeats, but
        the job is wedged. A stalled run returns a failed
        :class:`JobResult` with ``counters["stalled"]`` set instead of
        simulating forever. ``stall_timeout=None`` disables the
        freeze check (the hard ceiling still applies).
        """
        self.sampler.start()
        if self.speculator is not None:
            self.speculator.start()
        self.am.start()
        self._stall_reason: str | None = None
        self.sim.process(self._watchdog(timeout, stall_timeout), name="stall-watchdog")
        try:
            outcome = self.sim.run(until=self.job_done)
        except StallError:
            outcome = {
                "success": False,
                "start_time": self.am_incarnations[0].start_time,
                "end_time": self.sim.now,
            }
        self.sampler.stop()
        if outcome is None:
            raise SimulationError("job did not complete (ran out of events)")
        counters = {
            "completed_maps": self.am.completed_maps,
            "committed_reduces": self.am.committed_reduces,
            "failed_map_attempts": self.trace.count("attempt_failed", type="map"),
            "failed_reduce_attempts": self.trace.count("attempt_failed", type="reduce"),
            "map_reruns": self.trace.count("map_rerun"),
            "am_restarts": self.trace.count("am_restarted"),
            "nodes_lost": self.trace.count("node_lost"),
            "fetch_failure_reports": len(self.trace.of_kind("fetch_failure_report")),
            "map_locality": self.am.map_locality_counts(),
        }
        if self._stall_reason is not None:
            counters["stalled"] = True
            counters["stall_reason"] = self._stall_reason
        from repro.runner.profile import profiling_enabled, record_flow_stats

        if profiling_enabled():
            record_flow_stats(self.job_name, self.cluster.flows.stats)
        return JobResult(
            job_name=self.job_name,
            workload=self.workload.name,
            policy=self.policy.name,
            success=outcome["success"],
            start_time=outcome["start_time"],
            end_time=outcome["end_time"],
            trace=self.trace,
            counters=counters,
        )

    # -- stall watchdog -----------------------------------------------------
    def _activity_snapshot(self) -> tuple:
        """Everything that moves when the job is making progress. Flow
        byte counts make long single transfers register as activity even
        though they schedule no events while in flight."""
        flows = self.cluster.flows
        return (
            self.trace.total_events(),
            self.am.completed_maps,
            self.am.committed_reduces,
            round(self.am.map_phase_progress(), 9),
            round(self.am.reduce_phase_progress(), 9),
            flows.active_count,
            round(flows.total_transferred(), 3),
        )

    def _watchdog(self, timeout: float | None, stall_timeout: float | None):
        check = max(1.0, min((stall_timeout or 2_000.0) / 4.0, 50.0))
        last = self._activity_snapshot()
        last_change = self.sim.now
        while not self.job_done.triggered:
            yield self.sim.timeout(check)
            if self.job_done.triggered:
                return
            if timeout is not None and self.sim.now >= timeout:
                self._declare_stall(f"exceeded hard timeout of {timeout:g}s")
            snap = self._activity_snapshot()
            if snap != last:
                last = snap
                last_change = self.sim.now
            elif (stall_timeout is not None
                  and self.sim.now - last_change >= stall_timeout):
                self._declare_stall(
                    f"no observable progress for {self.sim.now - last_change:g}s")

    def _declare_stall(self, reason: str) -> None:
        self._stall_reason = reason
        self.trace.log("stall_detected", reason=reason)
        raise StallError(f"{self.job_name}: {reason}")


def run_job(
    workload: Workload,
    policy: RecoveryPolicy | None = None,
    faults=None,
    **runtime_kwargs: Any,
) -> JobResult:
    """Convenience wrapper: build a runtime, install faults, run.

    ``faults`` is an iterable of objects with an ``install(runtime)``
    method (see :mod:`repro.faults`).
    """
    rt = MapReduceRuntime(workload, policy=policy, **runtime_kwargs)
    for fault in faults or ():
        fault.install(rt)
    return rt.run()
