"""ReduceTask attempt: shuffle -> merge -> reduce, with Hadoop's
fetch-retry, host-penalty and reducer-health (suicide) semantics.

This module is where the paper's pathologies live:

- Fetchers batch all pending map outputs per host (as Hadoop's
  fetchers do per connection). A host that stops responding costs
  ``fetch_retries_per_host`` connect timeouts with exponential backoff
  before the round is abandoned.
- An abandoned round is reported to the AM (fetch-failure report) and
  the host is revisited after a penalty — unless the recovery policy
  says to *wait* (SFM's wait-don't-fail directive).
- After each failure the reducer runs Hadoop's ``checkReducerHealth``:
  it kills itself when cumulative failures dominate its progress or
  when it has progressed far and then stalls. This is exactly the
  mechanism that amplifies a single node loss into additional
  ReduceTask failures (Figs. 3 & 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cluster.node import MB, Node
from repro.mapreduce.mof import MapOutput
from repro.mapreduce.tasks import Task, TaskAttempt
from repro.sim.core import Interrupt, SimulationError
from repro.sim.flows import FlowCancelled
from repro.sim.resources import Store
from repro.yarn.rm import Container

__all__ = ["DiskSegment", "ReduceAttempt", "ReduceRecoveryState"]

_seg_ids = itertools.count(1)


@dataclass
class DiskSegment:
    """A sorted run on the reducer's local disk (spill or merge output)."""

    path: str
    size: float
    node: Node

    def exists(self) -> bool:
        return self.node.has_file(self.path)


@dataclass
class ReduceRecoveryState:
    """State restored into a recovering ReduceTask from ALG logs.

    ``disk_segments`` are reusable only when the new attempt lands on
    the node that still has the files (transient task failure); a
    migrated attempt can only use ``reduce_resume_fraction``, which ALG
    stores on HDFS (paper §III-B).
    """

    fetched_map_ids: set[int] = field(default_factory=set)
    disk_segments: list[DiskSegment] = field(default_factory=list)
    mem_flushed_bytes: float = 0.0
    reduce_resume_fraction: float = 0.0
    #: Whether the resumed stream is already deserialised (reduce-stage
    #: logs record MPQ offsets, so the skipped prefix costs nothing).
    skip_deserialization: bool = True


class ReduceAttempt(TaskAttempt):
    """One execution of a ReduceTask."""

    def __init__(self, am, task: Task, container: Container,
                 recovery: ReduceRecoveryState | None = None) -> None:
        super().__init__(am, task, container)
        self.partition = task.partition_index
        assert self.partition is not None
        self.num_maps = am.num_maps
        conf = am.conf

        # -- shuffle state ---------------------------------------------------
        self.fetched: set[int] = set()
        self.host_pending: dict[int, dict[int, MapOutput]] = {}
        self._host_queue: Store = Store(self.sim)
        self._hosts_queued: set[int] = set()
        self.mem_segments: list[float] = []
        self.mem_bytes = 0.0
        self.disk_segments: list[DiskSegment] = []
        #: Bytes currently being flushed from memory to disk.
        self._flushing_bytes = 0.0
        #: Map ids currently being fetched by some fetcher.
        self._inflight: set[int] = set()
        self.shuffled_bytes = 0.0
        self.total_failures = 0
        self.unique_failed: set[int] = set()
        self.last_shuffle_progress = self.sim.now
        self.shuffle_done = self.sim.event()
        self._merge_kick: Store = Store(self.sim)

        # -- stage tracking ----------------------------------------------------
        self.stage = "init"
        self._merge_frac = 0.0
        self._reduce_flow = None
        self._reduce_cpu_started: float | None = None
        self._reduce_cpu_seconds = 0.0
        self.reduce_resume_fraction = 0.0
        self.recovery = recovery
        # Spill knobs as instance attributes so in-memory-shuffle
        # variants (M3R) can lift them without forking the fetch/merge
        # machinery.
        self._buffer = conf.shuffle_buffer_bytes
        self._single_segment_max = conf.shuffle_single_segment_max
        self._merge_trigger = conf.shuffle_merge_trigger_bytes
        self._registered = False

    # -- progress ----------------------------------------------------------
    @property
    def progress(self) -> float:
        if self.stage in ("init",):
            return 0.0
        if self.stage == "shuffle":
            return (len(self.fetched) / max(self.num_maps, 1)) / 3.0
        if self.stage == "merge":
            return 1.0 / 3.0 + self._merge_frac / 3.0
        if self.stage == "reduce":
            return 2.0 / 3.0 + self.reduce_progress_fraction / 3.0
        return 1.0

    @property
    def reduce_progress_fraction(self) -> float:
        """Fraction of the reduce stage completed (includes resumed work)."""
        resume = self.reduce_resume_fraction
        if self.stage != "reduce":
            return resume
        # The stage streams read/compute/write concurrently; the slowest
        # component is the honest progress signal.
        parts = []
        if self._reduce_flow is not None and self._reduce_flow.size > 0:
            parts.append(self._reduce_flow.progress)
        if self._reduce_cpu_started is not None and self._reduce_cpu_seconds > 0:
            parts.append(min(1.0, (self.sim.now - self._reduce_cpu_started) / self._reduce_cpu_seconds))
        live = min(parts) if parts else 0.0
        return resume + (1.0 - resume) * live

    @property
    def total_input_bytes(self) -> float:
        return self.mem_bytes + self._flushing_bytes + sum(s.size for s in self.disk_segments)

    # -- columnar progress mirror -------------------------------------------
    # Each write stores the exact float expression the scalar ``progress``
    # property would evaluate at this point, so the vectorized sampler and
    # speculator scans reproduce it bit-for-bit (DESIGN.md §13).
    def _col_shuffle(self) -> None:
        self._col_set(
            prog_base=(len(self.fetched) / max(self.num_maps, 1)) / 3.0,
            prog_span=0.0)

    def _col_merge(self) -> None:
        self._col_set(prog_base=1.0 / 3.0 + self._merge_frac / 3.0,
                      prog_span=0.0)

    # -- AM-facing API ----------------------------------------------------------
    def notify_mof(self, mof: MapOutput) -> None:
        """The AM announces a completed map's output location."""
        if mof.map_id in self.fetched:
            return
        self.unique_failed.discard(mof.map_id)
        pending = self.host_pending.setdefault(mof.node.node_id, {})
        pending[mof.map_id] = mof
        self._enqueue_host(mof.node.node_id)

    def drop_mof(self, map_id: int) -> None:
        """The AM invalidated a MOF (its node is known-lost under SFM)."""
        for pending in self.host_pending.values():
            pending.pop(map_id, None)

    def _enqueue_host(self, node_id: int) -> None:
        if node_id not in self._hosts_queued:
            self._hosts_queued.add(node_id)
            self._host_queue.put(node_id)

    def _requeue_moved(self, node_id: int, batch: dict[int, MapOutput]) -> None:
        # While these ids were in-flight against ``node_id``, a
        # regenerated MOF may have been announced at a new host; that
        # host's queue entry was consumed with an empty batch (the ids
        # were still in-flight), so nothing would ever fetch from it
        # again. Re-queue any other host still holding one of them.
        moved = {mid for mid in batch if mid not in self.fetched}
        if not moved:
            return
        for other, pending in self.host_pending.items():
            if other != node_id and moved & pending.keys():
                self._enqueue_host(other)

    # -- main attempt body --------------------------------------------------
    def run(self):
        conf = self.am.conf
        wl = self.am.workload
        yield from self._step(self.sim.timeout(conf.task_startup_seconds))

        if self.recovery is not None:
            self._apply_recovery(self.recovery)

        self.stage = "shuffle"
        self._col_shuffle()
        self.am.register_reducer(self)
        self._registered = True
        try:
            self._check_shuffle_complete()
            if not self.shuffle_done.triggered:
                for i in range(conf.num_fetchers):
                    self._spawn(self._fetcher(i), name=f"{self.attempt_id}.fetch{i}")
                self._spawn(self._merger(), name=f"{self.attempt_id}.merger")
                self._spawn(self._health_loop(), name=f"{self.attempt_id}.health")
            yield from self._step(self.shuffle_done)
        finally:
            if self._registered:
                self.am.unregister_reducer(self)
                self._registered = False

        # Wait out any in-flight memory flush so segment accounting is
        # complete before merge planning.
        while self._flushing_bytes > 1.0:
            yield from self._step(self.sim.timeout(0.5))

        # Final merge: bring on-disk runs down to io.sort.factor.
        self.stage = "merge"
        self._col_merge()
        yield from self._final_merge()
        self._merge_frac = 1.0
        self._col_merge()

        # Reduce: stream the MPQ through the reduce function into HDFS.
        self.stage = "reduce"
        yield from self._reduce_stage(wl, conf)
        self.stage = "done"
        self._col_set(prog_base=1.0, prog_span=0.0, reduce_live=False)
        self._col_flow(None)
        return {
            "output_bytes": self.total_input_bytes * wl.reduce_selectivity,
            "input_bytes": self.total_input_bytes,
        }

    # -- recovery restore -----------------------------------------------------
    def _apply_recovery(self, rec: ReduceRecoveryState) -> None:
        """Adopt logged progress. Disk segments are only reusable if
        this attempt runs where the files still are."""
        reusable = [s for s in rec.disk_segments if s.node is self.node and s.exists()]
        if len(reusable) == len(rec.disk_segments) and rec.disk_segments:
            self.disk_segments = list(reusable)
            self.fetched = set(rec.fetched_map_ids)
            self.shuffled_bytes = sum(s.size for s in reusable) + rec.mem_flushed_bytes
        self.reduce_resume_fraction = rec.reduce_resume_fraction
        if rec.reduce_resume_fraction > 0 and not rec.fetched_map_ids <= self.fetched:
            # Reduce-stage logs live on HDFS and imply shuffle finished;
            # a migrated attempt must still re-shuffle the bytes unless
            # its segments survived locally (handled above).
            pass

    # -- fetchers --------------------------------------------------------
    def _fetcher(self, idx: int):
        try:
            while True:
                node_id = yield self._host_queue.get()
                self._hosts_queued.discard(node_id)
                pending = self.host_pending.get(node_id, {})
                batch = {mid: mof for mid, mof in pending.items()
                         if mid not in self.fetched and mid not in self._inflight}
                if not batch:
                    continue
                host = self.cluster.node(node_id)
                size = sum(mof.partition(self.partition) for mof in batch.values())
                self._inflight.update(batch)
                try:
                    outcome = yield from self._fetch_round(host, size)
                finally:
                    self._inflight.difference_update(batch)
                if outcome is not None:
                    self._account_success(node_id, batch, size, to_disk=outcome)
                else:
                    yield from self._fetch_round_failed(host, node_id, batch)
                self._requeue_moved(node_id, batch)
        except (Interrupt, SimulationError):
            # Interrupted by attempt cleanup, or our own node died:
            # fetchers die silently with the attempt.
            return

    def _fetch_round(self, host: Node, size: float):
        """Try to pull ``size`` bytes from ``host`` with retries/backoff.
        Returns the to-disk decision on success, None on failure."""
        conf = self.am.conf
        to_disk = (
            size > self._single_segment_max
            or self.mem_bytes + size > self._buffer
        )
        for k in range(conf.fetch_retries_per_host):
            if k > 0:
                yield self.sim.timeout(conf.fetch_retry_base_delay * (2 ** (k - 1)))
            if not host.reachable:
                yield self.sim.timeout(conf.fetch_connect_timeout)
                continue
            try:
                fl = self._flow(self.cluster.net_transfer(
                    host, self.node, size,
                    name=f"shuffle:{self.attempt_id}<-{host.name}",
                    write_dst_disk=to_disk,
                ))
                yield fl.done
                return to_disk
            except FlowCancelled:
                continue
        return None

    def _account_success(self, node_id: int, batch: dict[int, MapOutput], size: float,
                         to_disk: bool) -> None:
        conf = self.am.conf
        pending = self.host_pending.get(node_id, {})
        for mid in batch:
            pending.pop(mid, None)
            self.fetched.add(mid)
            self.unique_failed.discard(mid)
        self.shuffled_bytes += size
        self.last_shuffle_progress = self.sim.now
        if to_disk:
            self._new_disk_segment(size)
        else:
            self.mem_segments.append(size)
            self.mem_bytes += size
            if self.mem_bytes > self._merge_trigger:
                self._merge_kick.put(True)
        if pending:
            self._enqueue_host(node_id)
        self._col_shuffle()
        self._check_shuffle_complete()

    def _fetch_round_failed(self, host: Node, node_id: int, batch: dict[int, MapOutput]):
        """A whole round against ``host`` failed; consult the policy."""
        conf = self.am.conf
        action = self.am.policy.on_fetch_giveup(self, host, list(batch))
        if action == "wait":
            # SFM: the AM knows the node is dead and is regenerating the
            # MOFs; drop them from pending quietly — notify_mof will
            # re-add them at their new home. No failure accounting.
            pending = self.host_pending.get(node_id, {})
            for mid in batch:
                pending.pop(mid, None)
            return
        self.total_failures += len(batch)
        self.unique_failed.update(batch)
        self.am.report_fetch_failure(self, list(batch), host)
        self._check_health()
        # Penalise the host, then retry it (Hadoop's host penalty).
        yield self.sim.timeout(conf.host_failure_penalty)
        if any(mid not in self.fetched for mid in self.host_pending.get(node_id, {})):
            self._enqueue_host(node_id)

    def _check_shuffle_complete(self) -> None:
        if len(self.fetched) >= self.num_maps and not self.shuffle_done.triggered:
            self.shuffle_done.succeed()

    # -- reducer health (Hadoop checkReducerHealth) -------------------------
    def _health_loop(self):
        try:
            while not self.shuffle_done.triggered:
                yield self.sim.timeout(5.0)
                if self.unique_failed:
                    self._check_health()
        except Interrupt:
            return

    def _check_health(self) -> None:
        conf = self.am.conf
        done = len(self.fetched)
        failures = self.total_failures
        if failures == 0:
            return
        healthy = failures / (failures + max(done, 1)) < conf.max_allowed_failed_fetch_fraction
        progressed = done / max(self.num_maps, 1) >= conf.min_required_progress_fraction
        stall_window = max(conf.reducer_stall_seconds, 0.5 * self.am.max_map_runtime)
        stalled = (self.sim.now - self.last_shuffle_progress) > stall_window
        if (not healthy) or (progressed and stalled and self.unique_failed):
            self.kill("shuffle-fetch-failures")

    # -- merging ------------------------------------------------------------
    def _new_disk_segment(self, size: float) -> DiskSegment:
        seg = DiskSegment(f"spill/{self.attempt_id}/{next(_seg_ids)}", size, self.node)
        if self.node.alive:
            self.node.write_file(seg.path, size, kind="spill")
        self.disk_segments.append(seg)
        return seg

    def _merger(self):
        """Background in-memory merger (spills to disk above the
        trigger threshold, like Hadoop's InMemoryMerger)."""
        try:
            while True:
                yield self._merge_kick.get()
                while self.mem_bytes > self._merge_trigger:
                    yield from self.flush_memory()
        except (Interrupt, FlowCancelled, SimulationError):
            return

    def flush_memory(self):
        """Merge all current in-memory segments into one on-disk run.

        Also invoked by ALG's logging tick (via a temporary merger
        thread in the paper's design) to make shuffle progress durable.
        """
        size = self.mem_bytes
        if size <= 0:
            return None
        wl = self.am.workload
        self.mem_segments.clear()
        self.mem_bytes = 0.0
        self._flushing_bytes += size
        try:
            yield self.cluster.compute(self.node, wl.merge_cpu_per_mb * size / MB)
            fl = self._flow(self.cluster.disk_write(self.node, size, name=f"spill:{self.attempt_id}"))
            yield fl.done
        finally:
            self._flushing_bytes -= size
            if self._flushing_bytes < 1.0:  # float residue from +=/-=
                self._flushing_bytes = 0.0
        seg = self._new_disk_segment(size)
        return seg

    def _final_merge(self):
        """Multi-pass on-disk merge down to io.sort.factor runs."""
        conf = self.am.conf
        wl = self.am.workload
        total_passes = 0
        while len(self.disk_segments) > conf.io_sort_factor:
            self.disk_segments.sort(key=lambda s: s.size)
            group = self.disk_segments[: conf.io_sort_factor]
            self.disk_segments = self.disk_segments[conf.io_sort_factor:]
            bytes_merged = sum(s.size for s in group)
            # Read every run and write the merged run: 2x through the disk.
            fl = self._flow(self.cluster.disk_read(self.node, bytes_merged, name=f"merge-r:{self.attempt_id}"))
            yield from self._step(fl.done)
            yield from self._step(self.cluster.compute(self.node, wl.merge_cpu_per_mb * bytes_merged / MB))
            fl = self._flow(self.cluster.disk_write(self.node, bytes_merged, name=f"merge-w:{self.attempt_id}"))
            yield from self._step(fl.done)
            for s in group:
                self.node.delete_file(s.path)
            self._new_disk_segment(bytes_merged)
            total_passes += 1
            self._merge_frac = min(1.0, 0.5 * total_passes)
            self._col_merge()

    # -- reduce stage -----------------------------------------------------------
    def _reduce_stage(self, wl, conf):
        resume = self.reduce_resume_fraction
        total_in = self.total_input_bytes
        disk_in = sum(s.size for s in self.disk_segments)
        work_frac = 1.0 - resume
        read_bytes = disk_in * work_frac
        cpu_s = wl.reduce_cpu_per_mb * (total_in * work_frac) / MB
        if self.recovery is not None and self.recovery.skip_deserialization and resume > 0:
            # The MPQ offsets in the log point past the already-consumed
            # prefix, so no bytes of it are re-deserialised; nothing
            # extra to charge. (Without logs a restarted attempt would
            # re-run the whole stage, which is the baseline path where
            # resume == 0.)
            pass
        out_bytes = total_in * wl.reduce_selectivity * work_frac

        # The input read, reduce CPU and output pipeline all start at
        # this instant; the flow scheduler coalesces the same-timestamp
        # admissions into a single deferred rate recompute, so there is
        # no need to batch() these sequential starts explicitly.
        waits = []
        if read_bytes > 0:
            self._reduce_flow = self._flow(self.cluster.disk_read(
                self.node, read_bytes, name=f"reduce-in:{self.attempt_id}"))
            waits.append(self._reduce_flow.done)
        self._reduce_cpu_seconds = cpu_s
        self._reduce_cpu_started = self.sim.now
        self._col_set(prog_base=0.0, prog_span=0.0, reduce_live=True,
                      resume=resume, cpu_start=self._reduce_cpu_started,
                      cpu_secs=cpu_s)
        self._col_flow(self._reduce_flow)
        if cpu_s > 0:
            waits.append(self.cluster.compute(self.node, cpu_s))
        if out_bytes > 0:
            out_path = f"out/{self.am.job_name}/{self.attempt_id}"
            level = self.am.policy.reduce_output_level()
            if level is None:
                writer = self.am.hdfs.write(
                    self.node, out_path, out_bytes,
                    replication=conf.output_replication, overwrite=True,
                )
            elif level.value == "node":
                # ALG node-level: stream locally only. Durability is
                # restored by replicating whole blocks at commit
                # (paper §V-D) — lazily, off the task's critical path,
                # so no synchronous charge here.
                writer = self.am.hdfs.write(
                    self.node, out_path, out_bytes,
                    replication=1, level=level, overwrite=True,
                )
            else:
                # Rack level: local + rack replica. Cluster level: a
                # third, off-rack replica rides the core switch — the
                # expensive configuration Fig. 13 quantifies.
                repl = 2 if level.value == "rack" else max(3, conf.output_replication)
                writer = self.am.hdfs.write(
                    self.node, out_path, out_bytes,
                    replication=repl, level=level, overwrite=True,
                )
            # Register the write as a child so a killed attempt tears the
            # pipeline down instead of leaving an orphaned HDFS write.
            self._children.append(writer)
            waits.append(writer)
        if waits:
            yield from self._step(self.sim.all_of(waits))
