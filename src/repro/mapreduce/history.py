"""Job-history event log: what an AM restart recovers from.

Real YARN MRAppMasters append JobHistoryEvents (TASK_FINISHED,
JOB_INITED, ...) to an HDFS file; a relaunched AM replays it so
completed work is not re-executed. This module is the simulator's
analogue — the job-level counterpart of the task-level
:class:`~repro.alm.alg.AnalyticsLogStore` — owned by the
:class:`~repro.mapreduce.job.MapReduceRuntime` so it survives any
single :class:`~repro.mapreduce.appmaster.MRAppMaster` incarnation.

The log is append-only and written unconditionally (it touches neither
the trace nor any RNG, so writing it is digest-neutral); whether a
restarted AM *reads* it is the ``JobConf.am_recovery`` ablation
(``log`` vs ``rerun-all``, mirroring the paper's ALG-vs-scratch
comparison one layer up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.mof import MapOutput

__all__ = ["JobHistoryLog", "MapFinishedRecord", "ReduceCommittedRecord"]


@dataclass(frozen=True)
class MapFinishedRecord:
    """A map completed; its output lives at ``mof`` (if still on disk)."""

    time: float
    map_id: int
    attempt_id: str
    mof: "MapOutput"
    runtime: float


@dataclass(frozen=True)
class ReduceCommittedRecord:
    """A reduce committed with the given byte-accounting record."""

    time: float
    task_id: int
    commit: dict[str, Any]


class JobHistoryLog:
    """Append-only per-job event log, replayable by a restarted AM."""

    def __init__(self) -> None:
        self.records: list[MapFinishedRecord | ReduceCommittedRecord] = []

    def record_map(self, time: float, map_id: int, attempt_id: str,
                   mof: "MapOutput", runtime: float) -> None:
        self.records.append(MapFinishedRecord(time, map_id, attempt_id, mof, runtime))

    def record_reduce(self, time: float, task_id: int, commit: dict[str, Any]) -> None:
        self.records.append(ReduceCommittedRecord(time, task_id, dict(commit)))

    def map_records(self) -> dict[int, MapFinishedRecord]:
        """Latest map-finished record per map id (re-runs supersede)."""
        out: dict[int, MapFinishedRecord] = {}
        for rec in self.records:
            if isinstance(rec, MapFinishedRecord):
                out[rec.map_id] = rec
        return out

    def reduce_records(self) -> dict[int, ReduceCommittedRecord]:
        """Latest reduce-committed record per task id."""
        out: dict[int, ReduceCommittedRecord] = {}
        for rec in self.records:
            if isinstance(rec, ReduceCommittedRecord):
                out[rec.task_id] = rec
        return out

    def __len__(self) -> int:
        return len(self.records)
