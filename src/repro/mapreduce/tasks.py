"""Task and task-attempt plumbing shared by Map- and ReduceTasks.

Failure-visibility semantics matter here and are modelled after YARN:

- An attempt whose *node is reachable* reports failures to the AM
  immediately (e.g. an injected out-of-memory kill).
- An attempt on a *dead or unreachable* node simply **vanishes** — the
  AM only learns about it when the RM's liveness monitor declares the
  node lost (or, for completed maps' MOFs, when reducers report fetch
  failures). This gap is the first leg of the paper's amplification
  timeline (Fig. 3).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Generator

from repro.hdfs.hdfs import Block, HdfsError
from repro.sim.core import Event, Interrupt, Process, SimulationError
from repro.sim.flows import Flow, FlowCancelled
from repro.yarn.rm import Container, ContainerKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.appmaster import MRAppMaster

__all__ = ["AttemptState", "Task", "TaskAttempt", "TaskFailed", "TaskState", "TaskType"]


class TaskType(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class AttemptState(enum.Enum):
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    KILLED = "killed"      # killed deliberately (node lost, speculation loser)
    VANISHED = "vanished"  # died silently on an unreachable node


class TaskFailed(Exception):
    """An attempt ended unsuccessfully; ``reason`` is a short slug."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class Task:
    """A logical Map- or ReduceTask with its attempt history."""

    def __init__(self, task_id: int, task_type: TaskType,
                 block: Block | None = None, partition_index: int | None = None) -> None:
        self.task_id = task_id
        self.task_type = task_type
        #: Input split (maps only).
        self.block = block
        #: Which MOF partition this reducer owns (reduces only).
        self.partition_index = partition_index
        self.state = TaskState.PENDING
        self.attempts: list["TaskAttempt"] = []
        self.failed_attempts = 0
        #: Pending container grants for this task (may be >1 under SFM).
        self.outstanding_requests = 0
        #: Whether this map has ever been counted as completed (re-runs
        #: of a lost MOF must not inflate the completed-map counter).
        self.counted = False

    @property
    def name(self) -> str:
        return f"{self.task_type.value}-{self.task_id}"

    def running_attempts(self) -> list["TaskAttempt"]:
        return [a for a in self.attempts if a.state is AttemptState.RUNNING]

    @property
    def is_finished(self) -> bool:
        return self.state in (TaskState.SUCCEEDED, TaskState.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value}>"


#: AttemptState -> small-int ordinal for the ``state`` attempt column.
_STATE_ORD = {
    AttemptState.RUNNING: 0,
    AttemptState.SUCCEEDED: 1,
    AttemptState.FAILED: 2,
    AttemptState.KILLED: 3,
    AttemptState.VANISHED: 4,
}


class TaskAttempt:
    """One execution attempt, bound to a container on a node.

    Subclasses implement :meth:`run` as a generator; the base class
    handles guarded waiting (racing every step against the container's
    kill event), cleanup of in-flight flows and child processes, and
    outcome classification.

    When the columnar data plane is on, every attempt dual-writes its
    progress-relevant state into the AM's shared
    :class:`~repro.sim.columns.AttemptColumns` (the python attributes
    stay the source of truth — the columns are a read mirror for the
    vectorized sampler/speculator scans). The ``state`` attribute is a
    property so *every* mutation site — including external adjudication
    like the node-lost kill path — keeps the mirror exact.
    """

    def __init__(self, am: "MRAppMaster", task: Task, container: Container) -> None:
        self._acols = None
        self._aslot = -1
        self.am = am
        self.sim = am.sim
        self.cluster = am.cluster
        self.task = task
        self.container = container
        self.node = container.node
        self.attempt_index = len(task.attempts)
        self.attempt_id = f"{task.name}.{self.attempt_index}"
        self.state = AttemptState.RUNNING
        self.start_time = self.sim.now
        self.end_time: float | None = None
        #: Set True before interrupting when the failure must not count
        #: (e.g. killing the loser of a speculative race).
        self.discard = False
        self.process: Process | None = None
        self._flows: list[Flow] = []
        self._children: list[Process] = []
        task.attempts.append(self)
        task.state = TaskState.RUNNING
        store = getattr(am, "attempt_columns", None)
        if store is not None:
            self._aslot = store.alloc_attempt(
                task_type=0 if task.task_type is TaskType.MAP else 1,
                task_id=task.task_id,
                attempt_index=self.attempt_index,
                owner=am.am_attempt,
                running=True,
                state=_STATE_ORD[AttemptState.RUNNING],
                start_time=self.start_time,
                flow_slot=-1,
                flow_fid=-1,
            )
            self._acols = store

    # -- columnar mirror -----------------------------------------------------
    @property
    def state(self) -> AttemptState:
        return self._state

    @state.setter
    def state(self, value: AttemptState) -> None:
        self._state = value
        store = self._acols
        if store is not None and self._aslot >= 0:
            store.set(self._aslot, "state", _STATE_ORD[value])
            store.set(self._aslot, "running", value is AttemptState.RUNNING)

    def _col_set(self, **fields: Any) -> None:
        """Write progress-decomposition cells (no-op on the scalar plane)."""
        store = self._acols
        if store is not None:
            slot = self._aslot
            for name, value in fields.items():
                store.set(slot, name, value)

    def _col_flow(self, flow: Flow | None) -> None:
        """Point the progress mirror at the attempt's current flow.

        ``flow_fid`` of ``-1`` means no flow; a valid fid means the
        flow's column cell (validated slot+fid) carries its progress;
        ``-2`` means the flow has no column cell (scalar flow scheduler
        or instant-complete) and must be read via ``flow_refs``.
        """
        store = self._acols
        if store is None:
            return
        slot = self._aslot
        store.flow_refs[slot] = flow
        if flow is None:
            store.set(slot, "flow_slot", -1)
            store.set(slot, "flow_fid", -1)
        elif flow._cols is not None:
            store.set(slot, "flow_slot", flow._slot)
            store.set(slot, "flow_fid", flow.fid)
        else:
            store.set(slot, "flow_slot", -1)
            store.set(slot, "flow_fid", flow.fid if flow.fid >= 0 else -2)

    def _col_finish(self) -> None:
        """Release the mirror slot once the attempt is adjudicated."""
        store = self._acols
        if store is not None and self._aslot >= 0:
            store.free(self._aslot)
            self._acols = None
            self._aslot = -1

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.process = self.sim.process(self._outer(), name=self.attempt_id)

    def kill(self, reason: str, discard: bool = False) -> None:
        """Interrupt the attempt (fault injection, speculation, SFM)."""
        if discard:
            self.discard = True
        if self.process is not None and self.process.is_alive:
            self.process.interrupt(reason)

    def run(self) -> Generator[Event, Any, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def progress(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def elapsed(self) -> float:
        return (self.end_time if self.end_time is not None else self.sim.now) - self.start_time

    # -- guarded waiting -------------------------------------------------------
    def _step(self, event: Event) -> Generator[Event, Any, Any]:
        """``yield from self._step(ev)``: wait for ``ev`` or die with the
        container. Flow cancellations and container kills surface as
        exceptions out of the ``yield``."""
        value = yield self.sim.any_of([event, self.container.killed])
        return value

    def _flow(self, flow: Flow) -> Flow:
        self._flows.append(flow)
        return flow

    def _spawn(self, gen, name: str) -> Process:
        p = self.sim.process(gen, name=name)
        self._children.append(p)
        return p

    # -- outcome handling -----------------------------------------------------
    def _outer(self) -> Generator[Event, Any, None]:
        try:
            result = yield from self.run()
        except BaseException as exc:
            self._cleanup()
            self.end_time = self.sim.now
            if self.state is AttemptState.RUNNING:
                self._classify_failure(exc)
                if self.state is AttemptState.VANISHED:
                    self.am.on_attempt_vanished(self)
            elif not isinstance(exc, (Interrupt, TaskFailed, FlowCancelled,
                                      SimulationError, HdfsError, ContainerKilled)):
                raise exc
            self._release_if_unreported()
            self._col_finish()
            return
        self._cleanup()
        self.end_time = self.sim.now
        if self.state is not AttemptState.RUNNING:
            self._release_if_unreported()
            self._col_finish()
            return  # already adjudicated (e.g. marked KILLED at node loss)
        if not self.node.reachable:
            # Completed into the void: nobody heard about it.
            self.state = AttemptState.VANISHED
            self.am.on_attempt_vanished(self)
            self._release_if_unreported()
            self._col_finish()
            return
        self.state = AttemptState.SUCCEEDED
        self.am._attempt_succeeded(self, result)
        self._col_finish()

    def _classify_failure(self, exc: BaseException) -> None:
        if isinstance(exc, ContainerKilled):
            # The RM already told the AM the node is gone; the node-lost
            # path reschedules us, so don't double-report.
            self.state = AttemptState.KILLED
            return
        if not isinstance(exc, (Interrupt, TaskFailed, FlowCancelled, SimulationError, HdfsError)):
            raise exc  # genuine bug: crash the simulation loudly
        if self.discard:
            self.state = AttemptState.KILLED
            return
        if not self.node.reachable:
            self.state = AttemptState.VANISHED
            return
        self.state = AttemptState.FAILED
        if isinstance(exc, Interrupt):
            reason = str(exc.cause) if exc.cause is not None else "killed"
        elif isinstance(exc, TaskFailed):
            reason = exc.reason
        else:
            reason = type(exc).__name__
        self.am._attempt_failed(self, reason)

    def _release_if_unreported(self) -> None:
        """KILLED and VANISHED attempts never reach
        ``_attempt_succeeded``/``_attempt_failed`` — the normal
        container-release sites — so without this their containers
        leak NM memory forever (caught by the containers-released
        invariant). Release is idempotent, so the paths where the RM
        already killed the container (node lost) are unaffected."""
        if self.state in (AttemptState.KILLED, AttemptState.VANISHED):
            self.am.rm.release_container(self.container)

    def _cleanup(self) -> None:
        for child in self._children:
            if child.is_alive:
                child.interrupt("attempt ended")
        self._children.clear()
        # One batched cancel for everything the attempt still has in
        # flight (shuffle fetches, merge writes): a single progress
        # advance and one deferred rate recompute.
        self.cluster.flows.cancel_many(
            [fl for fl in self._flows if fl.active], f"{self.attempt_id} ended")
        self._flows.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Attempt {self.attempt_id} on {self.node.name} {self.state.value}>"
