"""Stock speculative execution (LATE-style), as in Hadoop/[24].

The paper's Algorithm 1 *speculatively* launches recovery ReduceTasks;
this module provides the ordinary speculation machinery those ideas
extend: watch running attempts, estimate completion from progress rate,
and duplicate the slowest task when it is projected to finish late.

Disabled by default (the paper's evaluation runs with stock settings
and injects failures rather than stragglers); enable via
``SpeculationConfig`` / ``Speculator.start`` or the ``speculation``
flag on :func:`repro.mapreduce.job.run_job`-built runtimes. The
straggler injector in :mod:`repro.faults.stragglers` pairs with this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mapreduce.tasks import Task, TaskState, TaskType
from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.appmaster import MRAppMaster

__all__ = ["SpeculationConfig", "Speculator"]


@dataclass(frozen=True)
class SpeculationConfig:
    """LATE-style speculation knobs."""

    #: Scan period.
    interval: float = 5.0
    #: A task is speculatable when its estimated finish time exceeds the
    #: mean estimate of its peers by this factor.
    slowness_threshold: float = 1.35
    #: Never speculate before the attempt has run this long.
    min_runtime: float = 10.0
    #: Cap on concurrently running speculative duplicates per job.
    max_speculative: int = 4
    #: Progress floor used when estimating a stalled attempt's rate.
    min_progress: float = 0.02

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.slowness_threshold <= 1.0:
            raise SimulationError("bad speculation parameters")
        if self.max_speculative < 1:
            raise SimulationError("max_speculative must be >= 1")


class Speculator:
    """Background scanner duplicating projected stragglers."""

    def __init__(self, am: "MRAppMaster", config: SpeculationConfig | None = None) -> None:
        self.am = am
        self.config = config or SpeculationConfig()
        #: Task ids already speculated (one duplicate per task).
        self.speculated: set[tuple[TaskType, int]] = set()
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.am.sim.process(self._loop(), name="speculator")

    def stop(self) -> None:
        self._running = False

    @property
    def launched(self) -> int:
        return len(self.speculated)

    # -- internals --------------------------------------------------------
    def _loop(self):
        while self._running and not self.am._finished:
            yield self.am.sim.timeout(self.config.interval)
            self._scan(self.am.map_tasks, TaskType.MAP)
            self._scan(self.am.reduce_tasks, TaskType.REDUCE)

    def _scan(self, tasks: list[Task], task_type: TaskType) -> None:
        cfg = self.config
        now = self.am.sim.now
        if getattr(self.am, "attempt_columns", None) is not None:
            estimates = self._estimates_columnar(tasks, task_type, now)
        else:
            estimates = self._estimates_scalar(tasks, now)
        completed = [
            t.attempts[-1].elapsed for t in tasks
            if t.state is TaskState.SUCCEEDED and t.attempts
        ]
        picked = self._cutoff(estimates, completed)
        if picked is None:
            return
        cutoff, mean_est = picked
        active_dups = sum(
            1 for t in tasks
            if (task_type, t.task_id) in self.speculated and len(t.running_attempts()) > 1
        )
        for est, task in sorted(estimates, key=lambda e: e[0], reverse=True):
            if active_dups >= cfg.max_speculative:
                break
            key = (task_type, task.task_id)
            if key in self.speculated:
                continue
            if est > cutoff:
                self.speculated.add(key)
                active_dups += 1
                self.am.trace.log("speculation", task=task.name,
                                  estimate=est, mean=mean_est)
                prio = (self.am.conf.map_priority if task_type is TaskType.MAP
                        else self.am.conf.reduce_priority)
                exclude = [task.running_attempts()[0].node]
                self.am.schedule_task(task, priority=prio, exclude=exclude,
                                      attempt_kwargs={"speculative": True})

    def _cutoff(self, estimates: list[tuple[float, Task]],
                completed: list[float]) -> tuple[float, float] | None:
        """The speculation threshold for this scan: ``(cutoff,
        benchmark)``, or None when the sample is too small to judge.

        The benchmark prefers completed peers' durations when available
        (so the last stragglers aren't compared only against each
        other), else the running estimates. Statistical straggler
        detectors override this (the scan loop and trace records are
        shared); ``benchmark`` is what the ``speculation`` trace event
        reports as ``mean``.
        """
        cfg = self.config
        if len(completed) >= 3:
            mean_est = sum(completed) / len(completed)
        elif len(estimates) >= 2:
            mean_est = sum(e for e, _ in estimates) / len(estimates)
        else:
            return None
        return cfg.slowness_threshold * mean_est, mean_est

    # -- completion-estimate scans ------------------------------------------
    def _estimates_scalar(self, tasks: list[Task], now: float) -> list[tuple[float, Task]]:
        cfg = self.config
        estimates: list[tuple[float, Task]] = []
        for task in tasks:
            if task.state is not TaskState.RUNNING:
                continue
            attempts = task.running_attempts()
            if len(attempts) != 1:
                continue  # already duplicated (or being rescheduled)
            a = attempts[0]
            runtime = now - a.start_time
            if runtime < cfg.min_runtime:
                continue
            # A stalled attempt (no progress at all) is the worst
            # straggler; clamp the rate rather than excluding it.
            rate = max(a.progress, cfg.min_progress) / runtime
            estimates.append((runtime + (1.0 - a.progress) / rate, task))
        return estimates

    def _estimates_columnar(self, tasks: list[Task], task_type: TaskType,
                            now: float) -> list[tuple[float, Task]]:
        """One vectorized pass over the attempt columns.

        Bit-identical to :meth:`_estimates_scalar`: the gauge kernel
        reproduces ``attempt.progress`` exactly, ``np.maximum`` agrees
        with ``max`` on non-NaN floats, and rows are emitted in task-id
        order — the same order the scalar walk appends in (a candidate
        task has exactly one running attempt, so there are no
        within-task ordering questions).
        """
        import numpy as np

        cfg = self.config
        am = self.am
        store = am.attempt_columns
        slots = am._running_attempt_slots(
            task_type=0 if task_type is TaskType.MAP else 1)
        if not len(slots):
            return []
        tids = store.col("task_id")[slots]
        counts = np.bincount(tids, minlength=len(tasks))
        runtime = now - store.col("start_time")[slots]
        keep = (counts[tids] == 1) & (runtime >= cfg.min_runtime)
        idx = np.flatnonzero(keep)
        if not len(idx):
            return []
        idx = idx[np.argsort(tids[idx], kind="stable")]
        prog = am._attempt_progress(slots[idx])
        rt = runtime[idx]
        rate = np.maximum(prog, cfg.min_progress) / rt
        est = rt + (1.0 - prog) / rate
        out: list[tuple[float, Task]] = []
        for tid, e in zip(tids[idx].tolist(), est.tolist()):
            task = tasks[tid]
            if task.state is TaskState.RUNNING:
                out.append((e, task))
        return out
