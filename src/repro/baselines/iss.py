"""ISS baseline — Ko et al., "Making cloud intermediate data
fault-tolerant" (SoCC'10), as characterised in the paper's §VI.

Every completed map's output file is asynchronously replicated to a
remote node. When a node is lost, the AM flips the registry entries of
its MOFs to the surviving replicas and re-notifies reducers — no map
re-execution needed. The paper's critique, which this implementation
lets you measure directly:

1. replicating *all* intermediate data costs network/disk bandwidth on
   every job, failure or not (compare failure-free job times);
2. ReduceTask failures still recover by full re-execution, so the
   performance collapse from reduce-side failures remains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import Node
from repro.mapreduce.mof import MapOutput
from repro.mapreduce.recovery import YarnRecoveryPolicy
from repro.mapreduce.tasks import Task
from repro.sim.core import SimulationError
from repro.sim.flows import FlowCancelled

__all__ = ["ISSConfig", "ISSPolicy"]


@dataclass(frozen=True)
class ISSConfig:
    """ISS replication knobs."""

    #: Replicas per MOF beyond the original (ISS used HDFS-style copies).
    replicas: int = 1
    #: Prefer a rack-remote replica (ISS places across failure domains).
    off_rack: bool = True

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise SimulationError("ISS needs at least one replica")


class ISSPolicy(YarnRecoveryPolicy):
    """Stock YARN recovery + intermediate-data replication."""

    name = "iss"

    def __init__(self, config: ISSConfig | None = None) -> None:
        super().__init__()
        self.config = config or ISSConfig()
        #: map_id -> replica MOFs (location + same partition sizes).
        self.replica_mofs: dict[int, list[MapOutput]] = {}
        #: Total intermediate bytes replicated (overhead accounting).
        self.replicated_bytes = 0.0
        self._switched: set[int] = set()

    # -- replication on map completion ----------------------------------------
    def on_map_completed(self, task: Task, mof: MapOutput) -> None:
        # One copier process per target; they all admit their flow at
        # this same instant, so the scheduler coalesces the fan-out into
        # a single rate recompute without explicit batching here.
        am = self.am
        targets = self._pick_targets(mof.node)
        for target in targets:
            am.sim.process(self._replicate(mof, target),
                           name=f"iss-repl:{mof.map_id}->{target.name}")

    def _pick_targets(self, source: Node) -> list[Node]:
        am = self.am
        pool = [n for n in am.hdfs.datanodes if n.reachable and n is not source]
        if self.config.off_rack:
            off = [n for n in pool if n.rack is not source.rack]
            pool = off or pool
        if not pool:
            return []
        rng = am.cluster.rng
        count = min(self.config.replicas, len(pool))
        idx = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in np.atleast_1d(idx)]

    def _replicate(self, mof: MapOutput, target: Node):
        am = self.am
        try:
            fl = am.cluster.net_transfer(
                mof.node, target, mof.total_size,
                name=f"iss:{mof.map_id}", read_src_disk=True, write_dst_disk=True)
            yield fl.done
        except (FlowCancelled, SimulationError):
            return  # source or target died mid-copy; replica not made
        replica = MapOutput(
            map_id=mof.map_id,
            attempt_id=f"{mof.attempt_id}.iss",
            node=target,
            partition_sizes=mof.partition_sizes,
        )
        if target.alive:
            target.write_file(replica.path, replica.total_size, kind="mof")
        self.replica_mofs.setdefault(mof.map_id, []).append(replica)
        self.replicated_bytes += mof.total_size
        am.trace.log("iss_replicated", map_id=mof.map_id, target=target.name)

    # -- recovery: flip to replicas instead of re-running maps ----------------
    def on_node_lost(self, node: Node) -> None:
        self._switch_node_mofs(node)
        super().on_node_lost(node)

    def on_fetch_failure_report(self, map_task: Task, report_count: int) -> None:
        mof = self.am.registry.get(map_task.task_id)
        if mof is not None and not mof.node.reachable:
            if self._switch_map(map_task.task_id):
                return  # replica took over; no re-execution needed
        super().on_fetch_failure_report(map_task, report_count)

    def _switch_node_mofs(self, node: Node) -> None:
        for mof in list(self.am.registry.on_node(node)):
            self._switch_map(mof.map_id)

    def _switch_map(self, map_id: int) -> bool:
        """Point the registry at a live replica; returns success."""
        if map_id in self._switched:
            return True
        for replica in self.replica_mofs.get(map_id, []):
            if replica.node.reachable and replica.on_disk():
                self.am.registry.register(replica)
                self._switched.add(map_id)
                self.am.trace.log("iss_switch", map_id=map_id,
                                  target=replica.node.name)
                for reducer in list(self.am.active_reducers):
                    reducer.notify_mof(replica)
                return True
        return False
