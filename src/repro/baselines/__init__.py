"""Related-work baselines the paper compares against (§VI).

- :mod:`~repro.baselines.iss` — Ko et al.'s Intermediate Storage
  System: replicate map output off-node so node failures don't require
  MapTask re-execution, at the cost of replication overhead on every
  job — and, as the paper argues, still no answer to slow ReduceTask
  recovery.
"""

from repro.baselines.iss import ISSConfig, ISSPolicy

__all__ = ["ISSConfig", "ISSPolicy"]
