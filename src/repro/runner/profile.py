"""Opt-in profiling for simulation runs (``REPRO_PROFILE``).

Profiling is wired through the environment, like the runner's other
knobs, so it reaches trials running inside worker processes without
any argument plumbing:

- ``REPRO_PROFILE=1``: wrap the run in :mod:`cProfile` and print the
  top functions by cumulative time to stderr.
- ``REPRO_PROFILE=/path/prefix``: additionally dump raw pstats to
  ``/path/prefix-<tag>.pstats`` for ``snakeviz``/``pstats`` analysis.

:func:`subsystem_counts` complements the function-level view with the
simulation's own accounting: per-kind event counts from
:meth:`~repro.metrics.trace.Trace.summary`, grouped by subsystem, plus
the flow scheduler's recompute counters — the numbers that say *which*
layer of the model the time went into.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.trace import Trace

__all__ = ["maybe_profile", "profiling_enabled", "subsystem_counts"]

#: Trace-event kind prefix -> subsystem label for the profile report.
_SUBSYSTEMS = {
    "flow": "flows",
    "hdfs": "hdfs",
    "attempt": "mapreduce",
    "map": "mapreduce",
    "reduce": "mapreduce",
    "task": "mapreduce",
    "job": "mapreduce",
    "shuffle": "mapreduce",
    "fetch": "mapreduce",
    "speculative": "mapreduce",
    "alg": "alm",
    "sfm": "alm",
    "fcm": "alm",
    "iss": "baselines",
    "node": "cluster",
    "fault": "cluster",
    "container": "yarn",
    "rm": "yarn",
    "am": "yarn",
}


def profiling_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")


@contextmanager
def maybe_profile(tag: str) -> Iterator[None]:
    """Profile the enclosed block when ``REPRO_PROFILE`` is set;
    otherwise a zero-cost no-op."""
    raw = os.environ.get("REPRO_PROFILE", "")
    if raw in ("", "0"):
        yield
        return
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        if raw != "1":
            prof.dump_stats(f"{raw}-{tag}.pstats")
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"--- profile [{tag}] ---", file=sys.stderr)
        print(buf.getvalue(), file=sys.stderr)


def subsystem_counts(trace: "Trace") -> dict[str, int]:
    """Trace-event counts grouped by subsystem (kind prefix)."""
    out: dict[str, int] = {}
    for kind, count in trace.summary()["kinds"].items():
        prefix = kind.split("_", 1)[0].split(".", 1)[0]
        label = _SUBSYSTEMS.get(prefix, "other")
        out[label] = out.get(label, 0) + count
    return dict(sorted(out.items()))
