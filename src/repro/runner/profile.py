"""Opt-in profiling for simulation runs (``REPRO_PROFILE``).

Profiling is wired through the environment, like the runner's other
knobs, so it reaches trials running inside worker processes without
any argument plumbing:

- ``REPRO_PROFILE=1``: wrap the run in :mod:`cProfile` and print the
  top functions by cumulative time to stderr.
- ``REPRO_PROFILE=/path/prefix``: additionally dump raw pstats to
  ``/path/prefix-<tag>.pstats`` for ``snakeviz``/``pstats`` analysis.

:func:`subsystem_counts` complements the function-level view with the
simulation's own accounting: per-kind event counts from
:meth:`~repro.metrics.trace.Trace.summary`, grouped by subsystem, plus
the flow scheduler's recompute counters — the numbers that say *which*
layer of the model the time went into.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.trace import Trace

__all__ = ["flow_stats", "maybe_profile", "periodic_times",
           "profiling_enabled", "record_flow_stats", "reset_periodic_times",
           "subsystem_counts", "wrap_periodic"]

#: Trace-event kind prefix -> subsystem label for the profile report.
_SUBSYSTEMS = {
    "flow": "flows",
    "hdfs": "hdfs",
    "attempt": "mapreduce",
    "map": "mapreduce",
    "reduce": "mapreduce",
    "task": "mapreduce",
    "job": "mapreduce",
    "shuffle": "mapreduce",
    "fetch": "mapreduce",
    "speculative": "mapreduce",
    "alg": "alm",
    "sfm": "alm",
    "fcm": "alm",
    "iss": "baselines",
    "node": "cluster",
    "fault": "cluster",
    "container": "yarn",
    "rm": "yarn",
    "am": "yarn",
}


def profiling_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")


#: name -> [calls, total seconds] for periodic callbacks, accumulated
#: by the wrappers :meth:`~repro.sim.core.Simulator.periodic` installs
#: when profiling is enabled. Name-keyed, so the 10k per-NM heartbeats
#: of the scalar plane aggregate per node while the batched daemons
#: report as single rows — the view that says which *daemon* is the
#: next hot loop, which cProfile's per-function rows cannot.
_PERIODIC_TIMES: dict[str, list] = {}


def wrap_periodic(fn, name: str | None):
    """Wrap a periodic callback so its wall time accrues under
    ``name``. The wrapper passes the return value through unchanged
    (periodics stop on ``False``) and adds two clock reads per tick."""
    import time

    bucket = _PERIODIC_TIMES.setdefault(name or "<unnamed>", [0, 0.0])
    perf_counter = time.perf_counter

    def timed():
        t0 = perf_counter()
        try:
            return fn()
        finally:
            bucket[0] += 1
            bucket[1] += perf_counter() - t0

    return timed


#: tag -> flow-scheduler counter snapshot (``FlowScheduler.stats``),
#: recorded at the end of profiled runs. Where :data:`_PERIODIC_TIMES`
#: says which daemon the wall time went into, these say how much
#: *refill* work the flow scheduler did: fill rounds executed, flows
#: whose rate was recomputed, and (columnar scheduler) how many
#: whole-column vector operations those refills cost.
_FLOW_STATS: dict[str, dict] = {}


def record_flow_stats(tag: str, stats: dict) -> None:
    """Snapshot a flow scheduler's counters under ``tag`` for the
    profile report (keys accumulate across same-tag runs)."""
    bucket = _FLOW_STATS.setdefault(tag, {})
    for key, value in stats.items():
        bucket[key] = bucket.get(key, 0) + value


def flow_stats() -> dict[str, dict]:
    return {tag: dict(stats) for tag, stats in _FLOW_STATS.items()}


def periodic_times(top: int | None = None) -> list[tuple[str, int, float]]:
    """``(name, calls, total_seconds)`` rows, most expensive first."""
    rows = sorted(((name, calls, secs) for name, (calls, secs) in _PERIODIC_TIMES.items()),
                  key=lambda row: -row[2])
    return rows[:top] if top else rows


def reset_periodic_times() -> None:
    _PERIODIC_TIMES.clear()
    _FLOW_STATS.clear()


@contextmanager
def maybe_profile(tag: str) -> Iterator[None]:
    """Profile the enclosed block when ``REPRO_PROFILE`` is set;
    otherwise a zero-cost no-op."""
    raw = os.environ.get("REPRO_PROFILE", "")
    if raw in ("", "0"):
        yield
        return
    reset_periodic_times()
    prof = cProfile.Profile()
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        if raw != "1":
            prof.dump_stats(f"{raw}-{tag}.pstats")
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"--- profile [{tag}] ---", file=sys.stderr)
        print(buf.getvalue(), file=sys.stderr)
        rows = periodic_times(top=10)
        if rows:
            print(f"--- periodic callbacks [{tag}] (top {len(rows)} by total time) ---",
                  file=sys.stderr)
            for name, calls, secs in rows:
                print(f"  {secs * 1e3:10.2f} ms {calls:>10} calls  {name}", file=sys.stderr)
        if _FLOW_STATS:
            print(f"--- flow scheduler counters [{tag}] ---", file=sys.stderr)
            for name, stats in sorted(_FLOW_STATS.items()):
                refill = ", ".join(
                    f"{key}={stats[key]}"
                    for key in ("filling_rounds", "recomputed_flows",
                                "column_ops", "recomputes", "timer_reuses")
                    if key in stats)
                print(f"  {name}: {refill}", file=sys.stderr)


def subsystem_counts(trace: "Trace") -> dict[str, int]:
    """Trace-event counts grouped by subsystem (kind prefix)."""
    out: dict[str, int] = {}
    for kind, count in trace.summary()["kinds"].items():
        prefix = kind.split("_", 1)[0].split(".", 1)[0]
        label = _SUBSYSTEMS.get(prefix, "other")
        out[label] = out.get(label, 0) + count
    return dict(sorted(out.items()))
