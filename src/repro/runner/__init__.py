"""Trial execution layer: parallel seeded fan-out, memoization and
determinism verification for every experiment driver."""

from repro.runner.runner import (
    DeterminismError,
    TrialError,
    TrialResult,
    TrialRunner,
    atomic_write_text,
    jobs_from_env,
    shutdown_pools,
    spec_digest,
    trace_digest,
)

__all__ = [
    "DeterminismError",
    "TrialError",
    "TrialResult",
    "TrialRunner",
    "atomic_write_text",
    "jobs_from_env",
    "shutdown_pools",
    "spec_digest",
    "trace_digest",
]
