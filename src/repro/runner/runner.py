"""Parallel seeded-trial execution with disk memoization.

Every experiment in this repo averages (or sweeps) seeded trials that
are completely independent of one another, so the runner is the one
place that knows how to execute them fast and honestly:

- ``REPRO_JOBS > 1`` fans trials out across worker processes with
  :class:`concurrent.futures.ProcessPoolExecutor`; ``REPRO_JOBS=1``
  (the default) runs them in-process, serially, in seed order — the
  deterministic reference path. Fan-out is *chunked*: each worker task
  is one contiguous block of seeds, so ``(fn, kwargs)`` is pickled once
  per chunk (not once per seed) and results return one message per
  chunk. On a single-core host the serial path is auto-selected even
  when ``REPRO_JOBS > 1`` (process fan-out is strictly overhead there);
  set ``REPRO_FORCE_PARALLEL=1`` to exercise the pool anyway.
- A trial is a **module-level** callable ``fn(seed, **kwargs)``
  returning a JSON-serialisable dict. Specs that cannot be pickled
  (lambda fault factories, closures) silently fall back to the serial
  path so existing callers keep working.
- Completed trials are memoized on disk keyed by
  ``(experiment, config hash, seed)`` when a cache directory is
  configured (``REPRO_TRIAL_CACHE``); specs containing unnameable
  callables are never cached.
- ``REPRO_VERIFY=1`` re-runs the first trial in-process and compares
  payloads: the same seed must produce the identical result (for job
  trials, the identical trace digest) no matter where it ran.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.trace import Trace

__all__ = [
    "DeterminismError",
    "TrialError",
    "TrialResult",
    "TrialRunner",
    "atomic_write_text",
    "jobs_from_env",
    "shutdown_pools",
    "spec_digest",
    "trace_digest",
]


def atomic_write_text(path: str | Path, text: str) -> None:
    """Crash-durable file write: write to a temp file in the same
    directory, then :func:`os.replace` it into place. A kill mid-write
    leaves at worst a stray temp file — readers never observe a torn
    half-written file at ``path``. Used for every artifact the repo
    relies on surviving a crash: trial-cache entries, chaos/metamorphic
    reproducers, golden digests, campaign exports."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


class DeterminismError(RuntimeError):
    """A seed produced different results on re-execution."""


class TrialError(RuntimeError):
    """A trial raised; the message names the experiment and seed.

    Raised with a plain string argument so it round-trips through the
    worker-process pickle boundary intact."""


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count: the ``REPRO_JOBS`` environment variable,
    clamped to >= 1. ``1`` means serial in-process execution."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", str(default))))
    except ValueError:
        return max(1, default)


def trace_digest(trace: "Trace") -> str:
    """Stable content hash of a trace: every event (time, kind, data)
    plus every sampled series point, canonically JSON-encoded. Two runs
    of the same seed must produce the same digest — this is the
    determinism contract the runner verifies.

    :class:`repro.metrics.trace.Trace` maintains this hash incrementally
    as events are recorded (``trace.digest()``), so the common case is a
    clone-and-finalise, not a whole-trace ``json.dumps``. The encode-it-
    all fallback below defines the digest for any other trace-shaped
    object and is pinned byte-identical to the streaming path by test.
    """
    digest = getattr(trace, "digest", None)
    if digest is not None:
        return digest()
    from repro.metrics.export import trace_records

    payload = {
        "events": trace_records(trace),
        "series": {name: points for name, points in trace.series.items()},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _stable_name(value: Any) -> str | None:
    """A process-independent string for one spec value, or ``None`` when
    the value has no stable identity (lambdas, closures, default reprs
    that embed memory addresses)."""
    if callable(value):
        name = f"{getattr(value, '__module__', '')}.{getattr(value, '__qualname__', '')}"
        if "<lambda>" in name or "<locals>" in name or name == ".":
            return None
        return name
    text = repr(value)
    if " at 0x" in text:
        return None
    return text


#: Environment knobs that select a different implementation (or trace
#: fidelity) for the *same* trial spec. They are part of the cache key:
#: digests are pinned identical across kernels and schedulers, but the
#: whole point of a verify run is to prove that — a cached
#: default-kernel payload served to a reference-kernel run would turn
#: the equivalence check into a tautology (and a count-only trace is
#: genuinely a different payload).
_MODE_ENV_VARS = ("REPRO_KERNEL", "REPRO_SCHEDULER", "REPRO_TRACE_COUNT_ONLY")


def _env_mode() -> str:
    return "\x00".join(f"{k}={os.environ.get(k, '')}" for k in _MODE_ENV_VARS)


def spec_digest(experiment: str, fn: Callable, kwargs: dict[str, Any]) -> str | None:
    """Cache key for a trial spec, or ``None`` if any part of the spec
    is unnameable — such specs are executed but never memoized. The key
    also folds in the implementation-mode environment
    (``REPRO_KERNEL``/``REPRO_SCHEDULER``/``REPRO_TRACE_COUNT_ONLY``)
    so runs under different implementations never share cache entries."""
    parts = [experiment, _stable_name(fn) or "", _env_mode()]
    if not parts[1]:
        return None
    for key in sorted(kwargs):
        name = _stable_name(kwargs[key])
        if name is None:
            return None
        parts.append(f"{key}={name}")
    blob = "\x00".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _cache_dir_from_env() -> Path | None:
    raw = os.environ.get("REPRO_TRIAL_CACHE", "")
    if not raw or raw == "0":
        return None
    if raw == "1":
        return Path.home() / ".cache" / "repro" / "trials"
    return Path(raw)


def _invoke_trial(fn: Callable, seed: int, kwargs: dict[str, Any]) -> tuple[dict, float]:
    """Top-level trial entry point (must stay module-level: it is the
    function shipped to worker processes)."""
    t0 = time.perf_counter()
    payload = fn(seed, **kwargs)
    if not isinstance(payload, dict):
        payload = {"value": payload}
    return payload, time.perf_counter() - t0


def _invoke_chunk(experiment: str, fn: Callable, seeds: list[int],
                  kwargs: dict[str, Any]) -> list[tuple[int, dict, float]]:
    """Run one contiguous seed block in a worker process.

    ``(fn, kwargs)`` crosses the pickle boundary once for the whole
    block, and the block's results come back as one message. A raising
    trial surfaces as :class:`TrialError` naming its seed — the bare
    worker traceback otherwise says nothing about *which* of the block's
    seeds died."""
    out = []
    for seed in seeds:
        try:
            payload, wall = _invoke_trial(fn, seed, kwargs)
        except Exception as exc:
            raise TrialError(
                f"{experiment}: trial for seed {seed} raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        out.append((seed, payload, wall))
    return out


# -- persistent worker pools -------------------------------------------------
#
# Experiment drivers call ``TrialRunner.run`` once per figure point, so
# a pool-per-call design pays worker spawn + interpreter warm-up on
# every sweep step. Pools are instead cached per worker count for the
# lifetime of the driver process and torn down once at exit.
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Tear down every cached worker pool (idempotent; also runs at
    interpreter exit). Call between benchmark phases when a clean slate
    matters more than warm workers."""
    for workers in list(_POOLS):
        _discard_pool(workers)


atexit.register(shutdown_pools)


def _spec_picklable(fn: Callable, kwargs: dict[str, Any]) -> bool:
    try:
        pickle.dumps((fn, kwargs))
        return True
    except Exception:
        return False


def _parallel_viable() -> bool:
    """Whether process fan-out can possibly win on this host.

    With one CPU the pool only adds pickling and scheduling on top of
    the same serial compute (measured 0.58× on a 1-core runner), so the
    runner quietly takes the serial path there. ``REPRO_FORCE_PARALLEL``
    overrides — for tests that must exercise the pool machinery
    regardless of host shape."""
    if os.environ.get("REPRO_FORCE_PARALLEL", "") not in ("", "0"):
        return True
    return (os.cpu_count() or 1) > 1


@dataclass
class TrialResult:
    """Outcome of one seeded trial: a picklable, JSON-serialisable
    payload plus execution metadata."""

    experiment: str
    seed: int
    payload: dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    wall_seconds: float = 0.0


class TrialRunner:
    """Fans seeded trials out across processes, memoizes them on disk
    and optionally verifies seed-determinism.

    Parameters default from the environment so experiment drivers can
    construct a runner unconditionally: ``REPRO_JOBS`` (parallelism,
    default 1), ``REPRO_TRIAL_CACHE`` (cache directory; ``1`` means
    ``~/.cache/repro/trials``, unset/``0`` disables), ``REPRO_VERIFY``
    (re-run the first seed and compare payloads).
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | Path | None = None,
        verify: bool | None = None,
    ) -> None:
        self.jobs = jobs_from_env() if jobs is None else max(1, int(jobs))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else _cache_dir_from_env()
        if verify is None:
            verify = os.environ.get("REPRO_VERIFY", "") not in ("", "0")
        self.verify = verify

    # -- public API ---------------------------------------------------------
    def run(
        self,
        experiment: str,
        fn: Callable[..., dict[str, Any]],
        seeds: Sequence[int],
        kwargs: dict[str, Any] | None = None,
        on_result: Callable[[TrialResult], None] | None = None,
    ) -> list[TrialResult]:
        """Run ``fn(seed, **kwargs)`` for every seed; results come back
        in seed-argument order regardless of completion order.

        ``on_result`` is invoked once per trial *as each result becomes
        available* (cache hits immediately, fresh results in completion
        order) — the hook durable stores build on: results observed
        through it survive a ``KeyboardInterrupt`` mid-fan-out, which
        flushes every already-completed trial before re-raising."""
        kwargs = dict(kwargs or {})
        cache_key = spec_digest(experiment, fn, kwargs) if self.cache_dir else None

        results: dict[int, TrialResult] = {}

        def emit(result: TrialResult) -> None:
            if not result.cached:
                self._cache_store(cache_key, result.seed, result.payload)
            results[result.seed] = result
            if on_result is not None:
                on_result(result)

        todo: list[int] = []
        for seed in seeds:
            payload = self._cache_load(cache_key, seed)
            if payload is not None:
                emit(TrialResult(experiment, seed, payload, cached=True))
            else:
                todo.append(seed)

        if todo:
            if (self.jobs > 1 and len(todo) > 1 and _parallel_viable()
                    and _spec_picklable(fn, kwargs)):
                self._run_parallel(experiment, fn, todo, kwargs, emit, results)
            else:
                for s in todo:
                    emit(self._run_one(experiment, fn, s, kwargs))

        ordered = [results[s] for s in seeds]
        self._check_invariant_payloads(experiment, ordered)
        if self.verify and ordered:
            self._verify_first(experiment, fn, kwargs, ordered[0])
        return ordered

    @staticmethod
    def _check_invariant_payloads(experiment: str, results: list["TrialResult"]) -> None:
        """Trials run under ``REPRO_INVARIANTS=1`` carry their post-run
        invariant violations in the payload (see
        :func:`repro.experiments.common.run_benchmark_trial`); surface
        any as a hard failure so a quietly-corrupted experiment cannot
        average its way into a figure. (The chaos campaign collects its
        findings under a different key — it must observe violations,
        not die on the first one.)"""
        failing = [
            (r.seed, v) for r in results
            for v in (r.payload.get("invariant_violations") or ())
        ]
        if failing:
            from repro.invariants import InvariantViolation

            raise InvariantViolation(
                [f"{experiment} seed {seed}: {v}" for seed, v in failing])

    # -- execution ----------------------------------------------------------
    def _run_one(self, experiment: str, fn: Callable, seed: int,
                 kwargs: dict[str, Any]) -> TrialResult:
        payload, wall = _invoke_trial(fn, seed, kwargs)
        return TrialResult(experiment, seed, payload, wall_seconds=wall)

    def _run_parallel(self, experiment: str, fn: Callable, seeds: list[int],
                      kwargs: dict[str, Any], emit: Callable[[TrialResult], None],
                      done: dict[int, TrialResult]) -> None:
        workers = min(self.jobs, len(seeds))
        try:
            self._submit_all(experiment, fn, seeds, kwargs, workers, emit)
        except BrokenProcessPool:
            # A worker died (OOM kill, crash): drop the poisoned pool
            # and retry once on a fresh one before giving up. Seeds whose
            # chunks already completed were emitted and are not re-run.
            _discard_pool(workers)
            remaining = [s for s in seeds if s not in done]
            if remaining:
                self._submit_all(experiment, fn, remaining, kwargs, workers, emit)

    def _submit_all(self, experiment: str, fn: Callable, seeds: list[int],
                    kwargs: dict[str, Any], workers: int,
                    emit: Callable[[TrialResult], None]) -> None:
        pool = _get_pool(workers)
        chunk_size = -(-len(seeds) // workers)  # ceil division
        futures = {}
        for start in range(0, len(seeds), chunk_size):
            block = seeds[start:start + chunk_size]
            futures[pool.submit(_invoke_chunk, experiment, fn, block, kwargs)] = block
        consumed: set = set()

        def consume(future) -> None:
            if future in consumed:
                return
            consumed.add(future)
            try:
                rows = future.result()
            except BrokenProcessPool:
                raise
            except TrialError:
                raise
            except Exception as exc:
                # Pool-layer failure (unpicklable result, worker teardown):
                # still name the seeds so the block is identifiable.
                block = futures[future]
                raise TrialError(
                    f"{experiment}: seed block {block[0]}..{block[-1]} failed "
                    f"with {type(exc).__name__}: {exc}"
                ) from exc
            for seed, payload, wall in rows:
                emit(TrialResult(experiment, seed, payload, wall_seconds=wall))

        try:
            for future in as_completed(futures):
                consume(future)
        except KeyboardInterrupt:
            # Ctrl-C mid-fan-out: flush every chunk that already finished
            # (so a durable store loses nothing), cancel what never
            # started, and tear the pool down — otherwise the cached
            # persistent pool keeps its worker children running until
            # interpreter exit.
            for future in futures:
                if future.done() and not future.cancelled():
                    try:
                        consume(future)
                    except Exception:
                        pass  # best-effort flush; the interrupt wins
            _discard_pool(workers)  # shutdown + cancel pending futures
            raise

    def _verify_first(self, experiment: str, fn: Callable,
                      kwargs: dict[str, Any], reference: TrialResult) -> None:
        rerun = self._run_one(experiment, fn, reference.seed, kwargs)
        if rerun.payload != reference.payload:
            raise DeterminismError(
                f"{experiment}: seed {reference.seed} is not deterministic — "
                f"payloads differ between executions "
                f"({_payload_digest(reference.payload)} vs {_payload_digest(rerun.payload)})"
            )

    # -- memoization --------------------------------------------------------
    def _cache_path(self, cache_key: str, seed: int) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / cache_key[:2] / f"{cache_key}-s{seed}.json"

    def _cache_load(self, cache_key: str | None, seed: int) -> dict[str, Any] | None:
        if cache_key is None or self.cache_dir is None:
            return None
        path = self._cache_path(cache_key, seed)
        try:
            return json.loads(path.read_text())["payload"]
        except (OSError, ValueError, KeyError):
            return None

    def _cache_store(self, cache_key: str | None, seed: int,
                     payload: dict[str, Any]) -> None:
        if cache_key is None or self.cache_dir is None:
            return
        path = self._cache_path(cache_key, seed)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic: a kill mid-write must not leave a torn JSON file
            # that _cache_load silently discards — that would defeat
            # resume for the trial that *did* complete.
            atomic_write_text(path, json.dumps({"seed": seed, "payload": payload}))
        except (OSError, TypeError, ValueError):
            # Unserialisable payloads / read-only dirs: skip the cache,
            # never fail the trial.
            pass


def _payload_digest(payload: dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
