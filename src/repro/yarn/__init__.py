"""YARN resource-management layer.

Implements the pieces of YARN the paper's mechanisms live in: a
:class:`~repro.yarn.rm.ResourceManager` that grants memory-sized
containers against per-node capacity, :class:`~repro.yarn.rm.NodeManager`
bookkeeping with heartbeats, and the liveness monitor whose expiry
timeout (~70 s in the paper's traces) is the first leg of the temporal
failure-amplification timeline (Fig. 3).
"""

from repro.yarn.rm import (
    Container,
    ContainerKilled,
    NodeManager,
    ResourceManager,
    YarnConfig,
)

__all__ = [
    "Container",
    "ContainerKilled",
    "NodeManager",
    "ResourceManager",
    "YarnConfig",
]
