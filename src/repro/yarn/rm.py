"""ResourceManager, NodeManagers, containers and node liveness.

Node-manager hot state (``last_heartbeat``, ``lost``, capacity
accounting) has two representations, selected by ``REPRO_DATA_PLANE``
(see :mod:`repro.sim.columns`):

- **columnar** (default): state lives in an RM-owned
  :class:`~repro.sim.columns.ColumnStore`, one slot per NM.
  Heartbeats are stamped by a *single* batched pure periodic
  (``rm-heartbeats``) masking over all batch-member slots, and the
  liveness check is one ``np.flatnonzero`` over the heartbeat column —
  O(1) heap entries instead of O(nodes) per-NM periodics.
- **reference**: the per-object scalar representation (one pure
  periodic per NM), kept as the equivalence oracle.

The two are byte-identical: stamps land before the liveness check at
shared instants in both (the stamp daemon is created first, exactly
where the per-NM periodics were), overdue nodes are declared lost in
registration order in both (slot order tracks ``node_managers``
insertion order because re-registration reuses the freed slot), and
re-registered NMs keep *individual* scalar periodics in both modes —
their ticks are phase-shifted off the RM grid by their registration
instant, which a grid-aligned batched stamp could not reproduce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import Cluster
from repro.cluster.node import Node
from repro.sim.backoff import BackoffPolicy
from repro.sim.columns import ColumnStore, columnar_enabled
from repro.sim.core import Event, SimulationError, Simulator
from repro.sim.rpc import RpcChannel

__all__ = ["ColumnarNodeManager", "Container", "ContainerKilled", "NodeManager",
           "ResourceManager", "YarnConfig"]


@dataclass(frozen=True)
class YarnConfig:
    """Table I parameters plus the control-plane timings.

    ``nm_liveness_timeout`` is how long the RM waits after the last NM
    heartbeat before declaring the node lost. Stock YARN defaults to
    600 s; the paper's Fig. 3 timeline shows ~70 s, so that is our
    default.
    """

    min_allocation_mb: int = 1024
    max_allocation_mb: int = 6144
    nm_heartbeat_interval: float = 1.0
    nm_liveness_timeout: float = 70.0
    allocation_latency: float = 1.0
    #: Fraction of node memory usable for containers (OS/daemon headroom).
    nm_memory_fraction: float = 0.92
    #: Max nodes simultaneously reserved for starving big requests.
    #: 0 disables reservations (the default: with wave-boundary grants
    #: the big reduce containers don't starve, and reservations idle
    #: capacity the maps could use).
    max_reserved_nodes: int = 0
    # -- fallible RPC (repro.sim.rpc) -----------------------------------
    #: Per-message loss probability on the control-plane channel. The
    #: default 0.0 keeps the channel reliable and strictly pass-through
    #: (no RNG draws, no extra events — digests unchanged).
    rpc_drop_prob: float = 0.0
    #: Per-message delay probability (delivered, but late).
    rpc_delay_prob: float = 0.0
    #: Max extra latency of a delayed message, seconds.
    rpc_max_delay: float = 2.0
    #: Channel seed: message fates are hashed from (seed, lane, seq).
    rpc_seed: int = 0
    #: Retransmit backoff for lost allocate/grant messages.
    rpc_retry_base: float = 0.5
    rpc_retry_max_interval: float = 8.0
    rpc_retry_limit: int = 12

    def __post_init__(self) -> None:
        if self.min_allocation_mb < 1 or self.max_allocation_mb < self.min_allocation_mb:
            raise SimulationError("invalid allocation bounds")
        if self.nm_heartbeat_interval <= 0 or self.nm_liveness_timeout <= 0:
            raise SimulationError("heartbeat timings must be positive")
        if not (0.0 <= self.rpc_drop_prob < 1.0) or not (0.0 <= self.rpc_delay_prob < 1.0):
            raise SimulationError("rpc probabilities must be in [0, 1)")
        if self.rpc_retry_base <= 0 or self.rpc_retry_limit < 0:
            raise SimulationError("rpc retry parameters must be positive")


class ContainerKilled(Exception):
    """Raised into waiters when a container dies (node loss or preempt)."""

    def __init__(self, container: "Container", reason: str) -> None:
        super().__init__(f"{container} killed: {reason}")
        self.container = container
        self.reason = reason


class Container:
    """A granted chunk of memory on one node.

    ``killed`` triggers (fails) if the node is lost or the container is
    preempted; task processes race their work against it.
    """

    _ids = itertools.count(1)

    def __init__(self, node: Node, memory_mb: int, sim: Simulator) -> None:
        self.container_id = next(Container._ids)
        self.node = node
        self.memory_mb = memory_mb
        self.killed: Event = sim.event()
        self.released = False

    @property
    def alive(self) -> bool:
        return not self.released and not self.killed.triggered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Container {self.container_id} {self.memory_mb}MB on {self.node.name}>"


class NodeManager:
    """Per-node agent: capacity bookkeeping and heartbeats."""

    def __init__(self, node: Node, config: YarnConfig, sim: Simulator) -> None:
        self.node = node
        self.sim = sim
        self.config = config
        self.capacity_mb = int(node.spec.memory_mb * config.nm_memory_fraction)
        self.used_mb = 0
        self.containers: list[Container] = []
        self.last_heartbeat = sim.now
        self.lost = False

    @property
    def available_mb(self) -> int:
        return self.capacity_mb - self.used_mb

    def allocate(self, memory_mb: int) -> Container:
        if self.lost or not self.node.alive:
            raise SimulationError(f"allocate on lost {self.node.name}")
        if memory_mb > self.available_mb:
            raise SimulationError(f"{self.node.name} lacks {memory_mb}MB")
        c = Container(self.node, memory_mb, self.sim)
        self.used_mb += memory_mb
        self.containers.append(c)
        return c

    def release(self, container: Container) -> None:
        if container.released:
            return
        container.released = True
        if container in self.containers:
            self.containers.remove(container)
            self.used_mb -= container.memory_mb

    def kill_all(self, reason: str) -> list[Container]:
        victims = list(self.containers)
        for c in victims:
            self.containers.remove(c)
            self.used_mb -= c.memory_mb
            c.released = True
            if not c.killed.triggered:
                c.killed.defuse()
                c.killed.fail(ContainerKilled(c, reason))
        return victims


#: Column schema for RM-owned node-manager state. ``in_batch`` marks
#: slots stamped by the shared ``rm-heartbeats`` tick (init-time NMs
#: only; re-registered NMs keep individual periodics, see module doc).
_RM_SCHEMA = {
    "node_id": "i8",
    "last_heartbeat": "f8",
    "lost": "?",
    "in_batch": "?",
    "capacity_mb": "i8",
    "used_mb": "i8",
}


class ColumnarNodeManager(NodeManager):
    """A :class:`NodeManager` whose hot fields live in RM columns.

    Same public surface — ``last_heartbeat``/``lost``/``capacity_mb``/
    ``used_mb`` are properties over one :class:`ColumnStore` slot, so
    every inherited method (``allocate``, ``release``, ``kill_all``)
    and every external reader works unchanged. Scalar reads return
    plain python values (``.item()``); vectorized passes go straight
    to the columns.
    """

    def __init__(self, node: Node, config: YarnConfig, sim: Simulator,
                 columns: ColumnStore, slot: int | None = None) -> None:
        self.node = node
        self.sim = sim
        self.config = config
        self.containers = []
        self._cols = columns
        if slot is None:
            slot = columns.alloc(
                node_id=node.node_id,
                last_heartbeat=sim.now,
                capacity_mb=int(node.spec.memory_mb * config.nm_memory_fraction),
            )
        self.slot = slot

    @property
    def last_heartbeat(self) -> float:
        return self._cols.col("last_heartbeat")[self.slot].item()

    @last_heartbeat.setter
    def last_heartbeat(self, value: float) -> None:
        self._cols.col("last_heartbeat")[self.slot] = value

    @property
    def lost(self) -> bool:
        return self._cols.col("lost")[self.slot].item()

    @lost.setter
    def lost(self, value: bool) -> None:
        self._cols.col("lost")[self.slot] = value

    @property
    def capacity_mb(self) -> int:
        return self._cols.col("capacity_mb")[self.slot].item()

    @capacity_mb.setter
    def capacity_mb(self, value: int) -> None:
        self._cols.col("capacity_mb")[self.slot] = value

    @property
    def used_mb(self) -> int:
        return self._cols.col("used_mb")[self.slot].item()

    @used_mb.setter
    def used_mb(self, value: int) -> None:
        self._cols.col("used_mb")[self.slot] = value


@dataclass(order=True)
class _PendingRequest:
    priority: float
    seq: int
    memory_mb: int = field(compare=False)
    preferred: tuple[Node, ...] = field(compare=False)
    grant: Event = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    excluded: set[int] = field(compare=False, default_factory=set)


class ResourceManager:
    """Grants containers and watches NM liveness.

    Scheduling is event-driven (requests are matched as soon as
    capacity exists) with a fixed ``allocation_latency`` charged per
    grant to stand in for the AM->RM->NM round trips of real YARN.
    """

    def __init__(self, sim: Simulator, cluster: Cluster, config: YarnConfig | None = None,
                 worker_nodes: list[Node] | None = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config or YarnConfig()
        workers = worker_nodes if worker_nodes is not None else cluster.nodes
        # The columnar plane indexes the cluster's liveness arrays by
        # node_id, so it requires workers dense in this cluster; a
        # foreign node list falls back to the scalar plane.
        self._columnar = columnar_enabled() and all(
            0 <= n.node_id < len(cluster.nodes) and cluster.nodes[n.node_id] is n
            for n in workers)
        self.columns: ColumnStore | None = None
        #: slot -> NodeManager (columnar plane only).
        self._nm_by_slot: dict[int, NodeManager] = {}
        if self._columnar:
            self.columns = ColumnStore(_RM_SCHEMA, capacity=max(len(workers), 1))
            # Bulk slot claim (one vectorized column fill instead of a
            # per-NM alloc loop); in_batch marks every init-time NM as
            # a member of the shared rm-heartbeats stamp.
            frac = self.config.nm_memory_fraction
            slots = self.columns.alloc_many(
                len(workers),
                node_id=np.fromiter((n.node_id for n in workers), dtype="i8",
                                    count=len(workers)),
                last_heartbeat=sim.now,
                in_batch=True,
                capacity_mb=np.fromiter(
                    (int(n.spec.memory_mb * frac) for n in workers), dtype="i8",
                    count=len(workers)),
            )
            self.node_managers: dict[int, NodeManager] = {
                n.node_id: ColumnarNodeManager(n, self.config, sim, self.columns,
                                               slot=int(slot))
                for n, slot in zip(workers, slots)
            }
        else:
            self.node_managers = {
                n.node_id: NodeManager(n, self.config, sim) for n in workers
            }
        cfg = self.config
        #: Control-plane channel; reliable (strict pass-through) unless
        #: the config sets loss/delay probabilities.
        self.rpc = RpcChannel(cfg.rpc_drop_prob, cfg.rpc_delay_prob,
                              cfg.rpc_max_delay, cfg.rpc_seed)
        #: Retransmit schedule shared by the AM allocate loop and the
        #: RM grant-redelivery loop.
        self.retry_policy = BackoffPolicy(
            base=cfg.rpc_retry_base, max_interval=cfg.rpc_retry_max_interval,
            max_retries=cfg.rpc_retry_limit)
        #: request_id -> live request. A retransmitted allocate with a
        #: known id returns the *same* grant event without enqueueing a
        #: second request — the structural fix for the double-allocate
        #: (grant-leak) bug class.
        self._requests_by_id: dict[str, _PendingRequest] = {}
        self._pending: list[_PendingRequest] = []
        #: node_id -> request that reserved it (big-container starvation
        #: guard, like YARN's reserved containers): while a reservation
        #: holds, lower-priority requests cannot backfill that node.
        self._reservations: dict[int, _PendingRequest] = {}
        self._seq = itertools.count()
        # RPC lane names must be run-deterministic: Container ids come
        # from a class-level counter that keeps climbing across runs in
        # one process, so message fates hashed on them would depend on
        # process history. These per-RM sequences restart at zero.
        self._grant_seq = itertools.count()
        self._release_seq = itertools.count()
        #: Listeners invoked as fn(node) when the RM declares a node lost.
        self.node_lost_listeners: list = []
        #: Listeners invoked as fn(node) when a lost node re-registers.
        self.node_rejoined_listeners: list = []
        self._lost_nodes: set[int] = set()
        #: node_id -> how many times the RM has declared it lost over
        #: the RM's lifetime. Unlike any per-AM bookkeeping this
        #: survives AM restarts, so failure-aware placement policies
        #: (e.g. the atlas zoo policy) can recognise a flapping node
        #: even when the job's own outcome history died with the AM.
        self.node_lost_counts: dict[int, int] = {}
        if self._columnar:
            for nm in self.node_managers.values():
                self._nm_by_slot[nm.slot] = nm
            # Created before rm-liveness, exactly where the per-NM
            # periodics were: stamps land before the liveness check at
            # shared instants in both planes.
            sim.periodic(self.config.nm_heartbeat_interval, self._stamp_tick,
                         pure=True, name="rm-heartbeats")
        else:
            for nm in self.node_managers.values():
                self._start_heartbeat(nm)
        sim.periodic(self.config.nm_heartbeat_interval, self._liveness_tick,
                     name="rm-liveness")

    # -- container lifecycle ----------------------------------------------
    def request_container(
        self,
        memory_mb: int,
        priority: float = 10.0,
        preferred_nodes: list[Node] | None = None,
        exclude_nodes: list[Node] | None = None,
        *,
        request_id: str | None = None,
        grant: Event | None = None,
    ) -> Event:
        """Ask for a container; the returned event's value is the
        :class:`Container` once granted (after ``allocation_latency``).

        ``request_id`` makes the call idempotent: a retransmit carrying
        an id the RM has already seen returns the original request's
        grant event and enqueues nothing, so an AM that re-sends after
        a lost response can never be granted two containers for one
        ask. ``grant`` lets the caller supply the event to fulfil
        (the AM-side retry loop hands out its event *before* the first
        send reaches the RM).
        """
        if request_id is not None:
            prior = self._requests_by_id.get(request_id)
            if prior is not None:
                return prior.grant
        cfg = self.config
        memory_mb = max(cfg.min_allocation_mb, min(int(memory_mb), cfg.max_allocation_mb))
        req = _PendingRequest(
            priority=priority,
            seq=next(self._seq),
            memory_mb=memory_mb,
            preferred=tuple(preferred_nodes or ()),
            grant=grant if grant is not None else self.sim.event(),
        )
        if exclude_nodes:
            req.excluded = {n.node_id for n in exclude_nodes}
            req.preferred = tuple(n for n in req.preferred if n.node_id not in req.excluded)
        if request_id is not None:
            self._requests_by_id[request_id] = req
        self._pending.append(req)
        self._pending.sort()
        self._match()
        return req.grant

    def cancel_request(self, grant: Event) -> None:
        for req in self._pending:
            if req.grant is grant:
                req.cancelled = True
                return

    def release_container(self, container: Container) -> None:
        if self.rpc.fallible:
            # A lost release is retransmitted on the heartbeat cadence
            # until it lands (it is idempotent on the NM side), so loss
            # only *delays* the capacity reclaim. The whole schedule is
            # hash-deterministic, so the delay is computed up front and
            # one sleeper process covers it; the zero-delay case stays
            # synchronous.
            lane = f"release|r{next(self._release_seq)}"
            delay = 0.0
            for _ in range(100):
                outcome = self.rpc.send(lane)
                if not outcome.dropped:
                    delay += outcome.delay
                    break
                delay += self.config.rpc_retry_base
            if delay > 0.0:
                self.sim.process(self._delayed_release(container, delay),
                                 name=f"release-c{container.container_id}")
                return
        nm = self.node_managers.get(container.node.node_id)
        if nm is not None:
            nm.release(container)
        self._match()

    def _delayed_release(self, container: Container, delay: float):
        yield self.sim.timeout(delay)
        nm = self.node_managers.get(container.node.node_id)
        if nm is not None:
            nm.release(container)
        self._match()

    def available_mb(self) -> int:
        cols = self.columns
        if cols is not None:
            n = cols.size
            mask = cols.used[:n] & ~cols.col("lost")[:n]
            avail = cols.col("capacity_mb")[:n] - cols.col("used_mb")[:n]
            return int(avail[mask].sum())
        return sum(nm.available_mb for nm in self.node_managers.values() if not nm.lost)

    def healthy_nodes(self) -> list[Node]:
        cols = self.columns
        if cols is not None:
            # Ascending slot order == node_managers insertion order
            # (re-registration reuses the freed slot), so both planes
            # return the same node list.
            n = cols.size
            mask = cols.used[:n] & ~cols.col("lost")[:n]
            mask &= self.cluster.columns.alive[cols.col("node_id")[:n]]
            return [self._nm_by_slot[slot].node for slot in np.flatnonzero(mask)]
        return [nm.node for nm in self.node_managers.values() if not nm.lost and nm.node.alive]

    def is_lost(self, node: Node) -> bool:
        return node.node_id in self._lost_nodes

    def register_node(self, node: Node) -> None:
        """NM (re-)registration after a restart or partition heal.

        A lost NodeManager is terminal (its heartbeat loop has exited
        and its containers were killed), so rejoining builds a *fresh*
        NM with empty capacity accounting — exactly what a restarted NM
        daemon reports. If the partition healed before the liveness
        timeout expired, the old NM is still valid and only its
        heartbeat clock needs resetting.
        """
        old = self.node_managers.get(node.node_id)
        if old is None or not node.reachable:
            return  # not one of our workers, or still unreachable
        if not old.lost:
            old.last_heartbeat = self.sim.now
            return
        if self._columnar:
            # Free-then-alloc reuses the same slot (LIFO free list), so
            # slot order keeps tracking node_managers insertion order.
            # The fresh slot is zero-filled with in_batch=False: the
            # rejoined NM heartbeats through its own periodic below,
            # phase-shifted to this instant exactly as the scalar
            # plane's would be.
            self.columns.free(old.slot)
            nm: NodeManager = ColumnarNodeManager(node, self.config, self.sim, self.columns)
            self._nm_by_slot[nm.slot] = nm
        else:
            nm = NodeManager(node, self.config, self.sim)
        self.node_managers[node.node_id] = nm
        self._lost_nodes.discard(node.node_id)
        self._start_heartbeat(nm)
        for fn in list(self.node_rejoined_listeners):
            fn(node)
        self._match()

    # -- scheduler core -----------------------------------------------------
    def _usable(self, nm: NodeManager, req: _PendingRequest) -> bool:
        holder = self._reservations.get(nm.node.node_id)
        return (
            not nm.lost
            and nm.node.reachable
            and nm.available_mb >= req.memory_mb
            and nm.node.node_id not in req.excluded
            and (holder is None or holder is req)
        )

    def _match(self) -> None:
        granted: list[_PendingRequest] = []
        for req in self._pending:
            if req.cancelled:
                self._drop_reservation(req)
                granted.append(req)  # drop silently
                continue
            nm = self._pick_node(req)
            if nm is None:
                self._maybe_reserve(req)
                continue
            self._drop_reservation(req)
            container = nm.allocate(req.memory_mb)
            granted.append(req)
            self._deliver(req, container)
        for req in granted:
            self._pending.remove(req)

    def _maybe_reserve(self, req: _PendingRequest) -> None:
        """Reserve the most-promising node for a starving request so
        smaller, lower-priority requests stop backfilling it."""
        if self.config.max_reserved_nodes <= 0:
            return
        if any(holder is req for holder in self._reservations.values()):
            return  # already holds a reservation; wait for it to fill
        if len(self._reservations) >= self.config.max_reserved_nodes:
            return  # don't freeze the cluster for a burst of big asks
        candidates = [
            nm for nm in self.node_managers.values()
            if not nm.lost and nm.node.reachable
            and nm.node.node_id not in req.excluded
            and nm.node.node_id not in self._reservations
        ]
        if not candidates:
            return
        preferred_ids = {n.node_id for n in req.preferred}
        candidates.sort(key=lambda nm: (nm.node.node_id not in preferred_ids,
                                        -nm.available_mb))
        self._reservations[candidates[0].node.node_id] = req

    def _drop_reservation(self, req: _PendingRequest) -> None:
        for node_id, holder in list(self._reservations.items()):
            if holder is req:
                del self._reservations[node_id]

    def _pick_node(self, req: _PendingRequest) -> NodeManager | None:
        for pref in req.preferred:
            nm = self.node_managers.get(pref.node_id)
            if nm is not None and self._usable(nm, req):
                return nm
        # Fall back to a least-loaded usable node. Ties are broken
        # randomly: real YARN allocates in NM-heartbeat arrival order,
        # which is effectively arbitrary, and that arbitrariness is what
        # occasionally leaves a node without any ReduceTask (the paper's
        # Fig. 4 setup).
        cols = self.columns
        if cols is not None:
            # Vectorized _usable over all slots. Ascending slot order ==
            # node_managers iteration order, and the tie-break draw uses
            # the same candidate count, so the rng stream and the picked
            # node match the scalar scan exactly.
            n = cols.size
            nid = cols.col("node_id")[:n]
            avail = cols.col("capacity_mb")[:n] - cols.col("used_mb")[:n]
            mask = cols.used[:n] & ~cols.col("lost")[:n]
            mask &= self.cluster.columns.reachable[nid]
            mask &= avail >= req.memory_mb
            if req.excluded:
                mask &= ~np.isin(nid, list(req.excluded))
            for node_id, holder in self._reservations.items():
                if holder is not req:
                    rnm = self.node_managers.get(node_id)
                    if rnm is not None:
                        mask[rnm.slot] = False
            idx = np.flatnonzero(mask)
            if idx.size == 0:
                return None
            cand_avail = avail[idx]
            top = idx[cand_avail >= cand_avail.max() - 512]
            return self._nm_by_slot[int(top[int(self.cluster.rng.integers(top.size))])]
        candidates = [nm for nm in self.node_managers.values() if self._usable(nm, req)]
        if not candidates:
            return None
        best = max(nm.available_mb for nm in candidates)
        top = [nm for nm in candidates if nm.available_mb >= best - 512]
        return top[int(self.cluster.rng.integers(len(top)))]

    def _deliver(self, req: _PendingRequest, container: Container) -> None:
        def requeue() -> None:
            # Free the stranded allocation first — a short partition can
            # heal before the liveness timeout, so the node-lost
            # kill_all cannot be relied on to reclaim it — then
            # transparently retry with the same grant event.
            nm = self.node_managers.get(container.node.node_id)
            if nm is not None:
                nm.release(container)
            self._pending.append(
                _PendingRequest(
                    req.priority, next(self._seq), req.memory_mb,
                    req.preferred, req.grant, excluded=req.excluded,
                )
            )
            self._pending.sort()
            self._match()

        def handout(sim=self.sim):
            yield sim.timeout(self.config.allocation_latency)
            if self.rpc.fallible:
                # The grant response can be lost on the wire; the RM
                # retransmits with backoff. The container was allocated
                # exactly once above — only its *delivery* retries, so a
                # lossy channel can delay but never double-allocate.
                lane = f"grant|g{next(self._grant_seq)}"
                for attempt in range(self.config.rpc_retry_limit + 1):
                    outcome = self.rpc.send(lane)
                    if not outcome.dropped:
                        if outcome.delay > 0.0:
                            yield sim.timeout(outcome.delay)
                        break
                    yield sim.timeout(self.retry_policy.interval(attempt, lane))
                else:
                    requeue()  # undeliverable: reclaim and start over
                    return
            if container.alive and container.node.alive and container.node.reachable:
                req.grant.succeed(container)
            else:
                # Node died during handout.
                requeue()

        self.sim.process(handout(), name=f"grant-c{container.container_id}")

    # -- heartbeats & liveness ------------------------------------------------
    # Both daemons are fixed-interval wakeups with non-yielding bodies,
    # so they ride the allocation-free Simulator.periodic path.
    def _start_heartbeat(self, nm: NodeManager) -> None:
        # pure: the tick only stamps last_heartbeat — never schedules.
        self.sim.periodic(self.config.nm_heartbeat_interval,
                          lambda: self._heartbeat_tick(nm),
                          pure=True, name=f"hb:{nm.node.name}")

    def _heartbeat_tick(self, nm: NodeManager):
        if nm.lost:
            return False  # stop: a lost NM never heartbeats again
        if nm.node.reachable:
            if self.rpc.fallible and self.rpc.heartbeat_dropped(
                    nm.node.node_id, self.sim.now):
                return None  # lost on the wire; liveness clock keeps aging
            nm.last_heartbeat = self.sim.now

    def _stamp_tick(self) -> None:
        """One vectorized heartbeat stamp for every batch-member NM
        (columnar plane). Fires exactly where the contiguous block of
        per-NM stamps would: same instants, same values, and pure ticks
        are unobservable between the stamps, so digests cannot move."""
        cols = self.columns
        n = cols.size
        nid = cols.col("node_id")[:n]
        mask = cols.col("in_batch")[:n] & ~cols.col("lost")[:n]
        mask &= self.cluster.columns.reachable[nid]
        if self.rpc.fallible and self.rpc.drop_prob > 0.0:
            # Heartbeat fates are hashed from (node_id, now), so this
            # per-slot filter agrees bit-for-bit with the scalar plane's
            # per-NM draws regardless of iteration order.
            now = self.sim.now
            for slot in np.flatnonzero(mask):
                if self.rpc.heartbeat_dropped(int(nid[slot]), now):
                    mask[slot] = False
        cols.col("last_heartbeat")[:n][mask] = self.sim.now

    def _liveness_tick(self) -> None:
        cols = self.columns
        if cols is not None:
            # One vectorized overdue scan; ascending slot order ==
            # registration order, matching the scalar dict walk. The
            # per-slot recheck mirrors the scalar loop's lost-guard in
            # case a node_lost listener mutates RM state mid-tick.
            n = cols.size
            overdue = np.flatnonzero(
                cols.used[:n] & ~cols.col("lost")[:n]
                & (self.sim.now - cols.col("last_heartbeat")[:n]
                   >= self.config.nm_liveness_timeout))
            for slot in overdue:
                nm = self._nm_by_slot.get(int(slot))
                if nm is None or nm.lost:
                    continue
                if self.sim.now - nm.last_heartbeat >= self.config.nm_liveness_timeout:
                    self._declare_lost(nm)
            if self.rpc.fallible:
                self._reregister_false_losses()
            return
        for nm in self.node_managers.values():
            if nm.lost:
                continue
            if self.sim.now - nm.last_heartbeat >= self.config.nm_liveness_timeout:
                self._declare_lost(nm)
        if self.rpc.fallible:
            self._reregister_false_losses()

    def _reregister_false_losses(self) -> None:
        """Re-admit nodes declared lost purely through heartbeat loss.

        A healthy NM whose heartbeats were eaten by the channel keeps
        running and re-registers on its next successful round trip —
        modelled here as the next liveness tick after the false
        declaration. Its containers were already killed by
        ``_declare_lost`` (as in real YARN without NM work-preserving
        restart), so re-admission is a fresh, empty NM. Only reachable
        fallible-channel setups ever enter this path."""
        for node_id in sorted(self._lost_nodes):
            nm = self.node_managers.get(node_id)
            if nm is not None and nm.node.alive and nm.node.reachable:
                self.register_node(nm.node)

    def _declare_lost(self, nm: NodeManager) -> None:
        nm.lost = True
        self._lost_nodes.add(nm.node.node_id)
        self.node_lost_counts[nm.node.node_id] = \
            self.node_lost_counts.get(nm.node.node_id, 0) + 1
        self._reservations.pop(nm.node.node_id, None)
        nm.kill_all(f"{nm.node.name} lost")
        for fn in list(self.node_lost_listeners):
            fn(nm.node)
        self._match()
