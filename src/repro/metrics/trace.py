"""Structured event trace for a simulated job.

Everything the experiment drivers report — recovery timelines (Figs. 3,
10), additional-failure counts (Fig. 4, Table II), phase durations — is
derived from this trace rather than ad-hoc counters, so tests and
benchmarks read the same source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.core import Simulator

__all__ = ["ProgressSampler", "Trace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    data: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


class Trace:
    """Append-only log of job events plus sampled time series."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.series: dict[str, list[tuple[float, float]]] = {}

    # -- events -----------------------------------------------------------
    def log(self, kind: str, **data: Any) -> None:
        self.events.append(TraceEvent(self.sim.now, kind, data))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str, **match: Any) -> int:
        return sum(1 for e in self.of_kind(kind) if all(e.data.get(k) == v for k, v in match.items()))

    def first(self, kind: str, **match: Any) -> TraceEvent | None:
        for e in self.of_kind(kind):
            if all(e.data.get(k) == v for k, v in match.items()):
                return e
        return None

    def last(self, kind: str, **match: Any) -> TraceEvent | None:
        found = None
        for e in self.of_kind(kind):
            if all(e.data.get(k) == v for k, v in match.items()):
                found = e
        return found

    def times(self, kind: str, **match: Any) -> list[float]:
        return [e.time for e in self.of_kind(kind) if all(e.data.get(k) == v for k, v in match.items())]

    # -- series ----------------------------------------------------------
    def sample(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append((self.sim.now, float(value)))

    def series_values(self, name: str) -> list[tuple[float, float]]:
        return list(self.series.get(name, []))


class ProgressSampler:
    """Periodically samples callables into trace series (e.g. the reduce
    progress curves plotted in Figs. 3, 4 and 10)."""

    def __init__(self, sim: Simulator, trace: Trace, interval: float = 1.0) -> None:
        self.sim = sim
        self.trace = trace
        self.interval = interval
        self._probes: dict[str, Any] = {}
        self._running = False

    def add_probe(self, name: str, fn) -> None:
        self._probes[name] = fn

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.process(self._loop(), name="progress-sampler")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            for name, fn in self._probes.items():
                self.trace.sample(name, fn())
            yield self.sim.timeout(self.interval)


def phase_durations(events: Iterable[TraceEvent], start_kind: str, end_kind: str) -> list[float]:
    """Pair up start/end events in order and return durations."""
    starts = [e.time for e in events if e.kind == start_kind]
    ends = [e.time for e in events if e.kind == end_kind]
    return [b - a for a, b in zip(starts, ends)]
