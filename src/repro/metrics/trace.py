"""Structured event trace for a simulated job.

Everything the experiment drivers report — recovery timelines (Figs. 3,
10), additional-failure counts (Fig. 4, Table II), phase durations — is
derived from this trace rather than ad-hoc counters, so tests and
benchmarks read the same source of truth.

Queries are backed by a per-kind index maintained on ``log``: the hot
paths (``of_kind``/``count``/``first``/``last``/``times``) touch only
the events of the requested kind instead of scanning the whole log,
which matters once the runner fans out thousands of trials.

Recording is on the simulation hot path (one ``log`` call per flow
completion, heartbeat decision, attempt transition, ...), so it is
built lean: ``TraceEvent`` is a ``__slots__`` class, the no-listener
case appends without copying any listener list, and the determinism
digest is maintained incrementally as events are recorded (see
:meth:`Trace.digest`) instead of JSON-encoding the whole trace at trial
end.

``REPRO_TRACE_COUNT_ONLY=kindA,kindB`` switches the named kinds to
count-only recording: ``count(kind)`` and ``summary()`` still see them,
but no per-event object is stored (and they drop out of exports and
digests, which is why the knob defaults to unset — full fidelity).
Listeners still fire for count-only kinds, so event-triggered faults
keep working.

High-volume kinds can opt into *columnar* storage
(:meth:`Trace.columnar`): rows land in preallocated numpy columns with
amortized-doubling growth instead of one ``TraceEvent`` + dict per
occurrence. Digests are unchanged by construction — every record is
hashed into the streaming digest *before* it is stored, whichever
representation stores it — and exports interleave both streams in log
order via a per-record ordinal (:meth:`Trace.iter_records`).
Count-only wins over columnar registration for the same kind.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from collections import deque
from typing import Any, Iterable

import numpy as np

from repro.sim.core import SimulationError, Simulator

__all__ = ["ColumnarEventBuffer", "ProgressSampler", "Trace", "TraceEvent",
           "first_divergence", "phase_durations"]


class TraceEvent:
    """One logged occurrence: ``(time, kind, data)``.

    A ``__slots__`` value class (not a dataclass): traces hold hundreds
    of thousands of these per trial, so no per-instance ``__dict__``.
    """

    __slots__ = ("time", "kind", "data")

    def __init__(self, time: float, kind: str, data: dict[str, Any]) -> None:
        self.time = time
        self.kind = kind
        self.data = data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.time, self.kind, self.data) == (other.time, other.kind, other.data)

    def __repr__(self) -> str:
        return f"TraceEvent(time={self.time!r}, kind={self.kind!r}, data={self.data!r})"


def _matches(event: TraceEvent, match: dict[str, Any]) -> bool:
    return all(event.data.get(k) == v for k, v in match.items())


def _count_only_kinds() -> frozenset[str]:
    raw = os.environ.get("REPRO_TRACE_COUNT_ONLY", "")
    return frozenset(k.strip() for k in raw.split(",") if k.strip())


#: json.dumps kwargs shared by the incremental digest and the legacy
#: whole-trace path in ``repro.runner`` — both must produce identical
#: bytes for identical traces.
_DUMPS_KW = dict(sort_keys=True, separators=(",", ":"), default=str)


def _export_record(time: float, kind: str, data: dict[str, Any]) -> dict[str, Any]:
    """One export-shaped record; the single place record coercion is
    defined (the streaming digest and JSON exports both go through it,
    which is what keeps digest == hash-of-export)."""
    record: dict[str, Any] = {"time": time, "kind": kind}
    for k, v in data.items():
        record[k] = v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
    return record


class ColumnarEventBuffer:
    """Append-only struct-of-arrays storage for one high-volume kind.

    One preallocated numpy column per declared field plus ``time`` and
    a global ``ordinal`` (the record's position in the whole log, used
    to interleave columnar rows with regular events on export). Rows
    append in O(1) amortized via capacity doubling.

    The schema is strict: every ``log`` call for the kind must supply
    exactly the declared fields, and each value must survive the
    column's dtype round trip (a lossy store would silently desynchronise
    the export from the already-streamed digest, so it raises instead).
    """

    __slots__ = ("kind", "time", "ordinal", "cols", "size")

    def __init__(self, kind: str, fields: dict[str, str], capacity: int = 64) -> None:
        if not fields:
            raise SimulationError(f"columnar kind {kind!r} needs at least one field")
        cap = max(int(capacity), 1)
        self.kind = kind
        self.time = np.zeros(cap, dtype="f8")
        self.ordinal = np.zeros(cap, dtype="i8")
        self.cols = {name: np.zeros(cap, dtype=dt) for name, dt in fields.items()}
        self.size = 0

    @property
    def capacity(self) -> int:
        return len(self.time)

    def append(self, ordinal: int, time: float, data: dict[str, Any]) -> None:
        i = self.size
        if i >= len(self.time):
            self._grow()
        self.time[i] = time
        self.ordinal[i] = ordinal
        for name, arr in self.cols.items():
            try:
                value = data[name]
            except KeyError:
                raise SimulationError(
                    f"columnar kind {self.kind!r} missing field {name!r}") from None
            arr[i] = value
            if arr[i] != value:
                raise SimulationError(
                    f"columnar kind {self.kind!r} field {name!r}: {value!r} does not "
                    f"round-trip dtype {arr.dtype}")
        if len(data) != len(self.cols):
            extra = sorted(set(data) - set(self.cols))
            raise SimulationError(
                f"columnar kind {self.kind!r} got undeclared field(s): {', '.join(extra)}")
        self.size = i + 1

    def _grow(self) -> None:
        new_cap = max(self.capacity * 2, 8)

        def grow(arr: np.ndarray) -> np.ndarray:
            grown = np.zeros(new_cap, dtype=arr.dtype)
            grown[: len(arr)] = arr
            return grown

        self.time = grow(self.time)
        self.ordinal = grow(self.ordinal)
        self.cols = {name: grow(arr) for name, arr in self.cols.items()}

    # -- materialization ---------------------------------------------------
    def record(self, i: int) -> dict[str, Any]:
        rec: dict[str, Any] = {"time": self.time[i].item(), "kind": self.kind}
        for name, arr in self.cols.items():
            rec[name] = arr[i].item()
        return rec

    def event(self, i: int) -> TraceEvent:
        return TraceEvent(self.time[i].item(), self.kind,
                          {name: arr[i].item() for name, arr in self.cols.items()})


class Trace:
    """Append-only log of job events plus sampled time series.

    ``events`` keeps the global order (exports and text reports render
    it); ``_by_kind`` indexes the same event objects per kind so the
    query helpers are O(matching events), not O(all events).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._by_kind: dict[str, list[TraceEvent]] = {}
        self._listeners: dict[str, list[Any]] = {}
        self._count_only = _count_only_kinds()
        self._suppressed: dict[str, int] = {}
        #: kind -> ColumnarEventBuffer for kinds registered via columnar().
        self._col_kinds: dict[str, ColumnarEventBuffer] = {}
        #: Global ordinal of each stored self.events entry (maintained
        #: only once a columnar kind exists; interleaves the streams).
        self._ordinals: list[int] = []
        self._ordinal = 0
        # Incremental digest state: every recorded event is hashed here
        # as it lands, byte-compatible with json.dumps of the whole
        # {"events": [...], "series": {...}} document (see digest()).
        self._hasher = hashlib.sha256(b'{"events":[')
        self._first_hashed = True

    # -- events -----------------------------------------------------------
    def columnar(self, kind: str, capacity: int = 64,
                 **fields: str) -> ColumnarEventBuffer | None:
        """Store future ``kind`` events in numpy columns instead of
        ``TraceEvent`` objects. ``fields`` maps field name -> dtype
        string (e.g. ``node="i8"``); every later ``log(kind, ...)``
        must supply exactly those fields with dtype-round-trippable
        values. Digests and exports are unchanged — records hash before
        storage and exports merge both streams in log order.

        Must be called before anything is logged (the ordinal
        bookkeeping that keeps export order correct starts at record
        zero). Count-only kinds win: registration returns ``None`` and
        the kind stays count-only.
        """
        if kind in self._count_only:
            return None
        if self.events or self._suppressed or self._ordinal:
            raise SimulationError("columnar() must be called before any events are logged")
        if kind in self._col_kinds:
            raise SimulationError(f"kind {kind!r} already columnar")
        buf = ColumnarEventBuffer(kind, fields, capacity)
        self._col_kinds[kind] = buf
        return buf

    def log(self, kind: str, **data: Any) -> None:
        listeners = self._listeners.get(kind)
        if kind in self._count_only:
            self._suppressed[kind] = self._suppressed.get(kind, 0) + 1
            if listeners:
                event = TraceEvent(self.sim.now, kind, data)
                for fn in list(listeners):
                    fn(event)
            return
        now = self.sim.now
        if self._col_kinds:
            buf = self._col_kinds.get(kind)
            if buf is not None:
                # Hash first (digest sees the same bytes either way),
                # then store the row; a TraceEvent exists only
                # transiently for listeners.
                self._hash_record(now, kind, data)
                buf.append(self._ordinal, now, data)
                self._ordinal += 1
                if listeners:
                    event = TraceEvent(now, kind, data)
                    for fn in list(listeners):
                        fn(event)
                return
            self._ordinals.append(self._ordinal)
            self._ordinal += 1
        event = TraceEvent(now, kind, data)
        self.events.append(event)
        bucket = self._by_kind.get(kind)
        if bucket is None:
            bucket = self._by_kind[kind] = []
        bucket.append(event)
        self._hash_record(now, kind, data)
        if listeners:
            for fn in list(listeners):
                fn(event)

    def _hash_record(self, time: float, kind: str, data: dict[str, Any]) -> None:
        # The digest is defined over the exported record shape, so both
        # go through _export_record.
        record = _export_record(time, kind, data)
        if self._first_hashed:
            self._first_hashed = False
        else:
            self._hasher.update(b",")
        self._hasher.update(json.dumps(record, **_DUMPS_KW).encode())

    def digest(self) -> str:
        """Determinism digest of everything recorded so far.

        Byte-identical to hashing ``json.dumps({"events": trace_records
        (self), "series": self.series}, sort_keys=True, separators=
        (",", ":"), default=str)`` — the pre-streaming definition — but
        events were already hashed when logged, so only the (small)
        series dict is encoded here. Cheap to call repeatedly: the
        event hasher is cloned, never consumed.
        """
        h = self._hasher.copy()
        h.update(b'],"series":')
        h.update(json.dumps(self.series, **_DUMPS_KW).encode())
        h.update(b"}")
        return h.hexdigest()

    def subscribe(self, kind: str, fn) -> None:
        """Call ``fn(event)`` synchronously on every future ``kind``
        event. This is what lets fault triggers key on trace events
        ("second crash 10 s after the first node_lost") without
        polling: the listener fires at the exact log instant, so
        event-triggered faults stay deterministic."""
        self._listeners.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn) -> None:
        bucket = self._listeners.get(kind)
        if bucket and fn in bucket:
            bucket.remove(fn)

    def _kind_events(self, kind: str):
        """Events of one kind, whichever representation stores them
        (columnar rows materialize to TraceEvents lazily — cold query
        paths only; hot paths use the buffer's columns directly)."""
        if self._col_kinds:
            buf = self._col_kinds.get(kind)
            if buf is not None:
                return [buf.event(i) for i in range(buf.size)]
        return self._by_kind.get(kind, ())

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return list(self._kind_events(kind))

    def count(self, kind: str, **match: Any) -> int:
        if not match and kind in self._suppressed:
            return self._suppressed[kind]
        if not match and kind in self._col_kinds:
            return self._col_kinds[kind].size
        bucket = self._kind_events(kind)
        if not match:
            return len(bucket)
        return sum(1 for e in bucket if _matches(e, match))

    def first(self, kind: str, **match: Any) -> TraceEvent | None:
        for e in self._kind_events(kind):
            if _matches(e, match):
                return e
        return None

    def last(self, kind: str, **match: Any) -> TraceEvent | None:
        for e in reversed(self._kind_events(kind)):
            if _matches(e, match):
                return e
        return None

    def times(self, kind: str, **match: Any) -> list[float]:
        if not match and kind in self._col_kinds:
            return self.times_array(kind).tolist()
        return [e.time for e in self._kind_events(kind) if _matches(e, match)]

    def times_array(self, kind: str) -> np.ndarray:
        """Event times of ``kind`` as a float array without
        materializing events — the bulk-analytics read path."""
        if kind in self._col_kinds:
            buf = self._col_kinds[kind]
            return buf.time[: buf.size].copy()
        return np.asarray([e.time for e in self._by_kind.get(kind, ())], dtype="f8")

    # -- export -----------------------------------------------------------
    def iter_records(self):
        """Export-shaped records (dicts) in global log order.

        Interleaves regular events with columnar rows by the per-record
        ordinal; with no columnar kinds this is just the events list.
        """
        if not self._col_kinds:
            for e in self.events:
                yield _export_record(e.time, e.kind, e.data)
            return

        def stored():
            for ordinal, e in zip(self._ordinals, self.events):
                yield ordinal, _export_record(e.time, e.kind, e.data)

        def rows(buf: ColumnarEventBuffer):
            for i in range(buf.size):
                yield buf.ordinal[i].item(), buf.record(i)

        streams = [stored()] + [rows(buf) for buf in self._col_kinds.values()]
        for _ordinal, record in heapq.merge(*streams, key=lambda pair: pair[0]):
            yield record

    def total_events(self) -> int:
        """Stored record count across both representations (count-only
        kinds excluded, as ever)."""
        return len(self.events) + sum(buf.size for buf in self._col_kinds.values())

    # -- series ----------------------------------------------------------
    def sample(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append((self.sim.now, float(value)))

    def series_values(self, name: str) -> list[tuple[float, float]]:
        return list(self.series.get(name, []))

    # -- aggregates -------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Cheap aggregate view: per-kind counts, series lengths and the
        event time span — no per-event detail, safe to ship across
        process boundaries or into JSON. Count-only kinds appear in
        ``kinds`` (that is the point of keeping their counts) but do not
        contribute to ``events`` or the time span."""
        kinds = {kind: len(bucket) for kind, bucket in self._by_kind.items()}
        kinds.update(self._suppressed)
        first_time = self.events[0].time if self.events else None
        last_time = self.events[-1].time if self.events else None
        for kind, buf in self._col_kinds.items():
            if not buf.size:
                continue
            kinds[kind] = buf.size
            # Times are monotone in log order, so the span merge is a
            # min/max over each stream's endpoints.
            t0, t1 = buf.time[0].item(), buf.time[buf.size - 1].item()
            first_time = t0 if first_time is None else min(first_time, t0)
            last_time = t1 if last_time is None else max(last_time, t1)
        return {
            "events": self.total_events(),
            "kinds": kinds,
            "series": {name: len(points) for name, points in self.series.items()},
            "first_time": first_time,
            "last_time": last_time,
        }


class ProgressSampler:
    """Periodically samples callables into trace series (e.g. the reduce
    progress curves plotted in Figs. 3, 4 and 10).

    Built on :meth:`Simulator.periodic` (``immediate=True``: the first
    sample lands at the start instant, as the old generator loop did).
    ``stop`` cancels the periodic outright, so a stop→start cycle hands
    over cleanly by construction — the cancelled wakeup is discarded by
    the kernel and at most one periodic ever samples.
    """

    def __init__(self, sim: Simulator, trace: Trace, interval: float = 1.0) -> None:
        self.sim = sim
        self.trace = trace
        self.interval = interval
        self._probes: dict[str, Any] = {}
        self._blocks: list[Any] = []
        self._running = False
        self._periodic = None

    def add_probe(self, name: str, fn) -> None:
        self._probes[name] = fn

    def add_probe_block(self, fn) -> None:
        """Register a *batched* probe: ``fn()`` returns an iterable of
        ``(name, value)`` pairs, all sampled at the tick instant. One
        block can derive many series from a single vectorized pass over
        columnar state — one callback where per-name probes would each
        rescan the cluster. Series are keyed by name and the digest
        sorts keys, so block samples digest identically to the same
        values sampled through individual probes."""
        self._blocks.append(fn)

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._periodic = self.sim.periodic(
                self.interval, self._tick, immediate=True, name="progress-sampler")

    def stop(self) -> None:
        self._running = False
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    def _tick(self):
        if not self._running:
            return False
        for name, fn in self._probes.items():
            self.trace.sample(name, fn())
        for block in self._blocks:
            for name, value in block():
                self.trace.sample(name, value)


def _record_key(record: Any) -> bytes:
    """Canonical bytes for one event record (or :class:`TraceEvent`)."""
    if isinstance(record, TraceEvent):
        record = {"time": record.time, "kind": record.kind, **record.data}
    return json.dumps(record, **_DUMPS_KW).encode()


def first_divergence(a: Iterable[Any], b: Iterable[Any]) -> int | None:
    """Index of the first position where two event streams differ.

    Accepts lists of exported records (dicts) or :class:`TraceEvent`
    objects. Returns ``None`` when the streams are identical (same
    records, same length); when one stream is a strict prefix of the
    other, the divergence index is the shorter length.

    Two streams that share a long prefix are the common case (a kernel
    regression fires thousands of events in before drifting), so the
    search is binary, not linear: each record is hashed once into a
    cumulative prefix digest, and prefix equality at any cut point is
    then an O(1) comparison. Equal cumulative digests at index ``i``
    mean the first ``i`` records agree — hashes are chained, so a
    coincidental re-match after a divergence cannot fool the search.
    """
    a = list(a)
    b = list(b)
    n = min(len(a), len(b))

    def prefixes(events: list[Any]) -> list[bytes]:
        out: list[bytes] = []
        h = hashlib.sha256()
        for record in events[:n]:
            h.update(_record_key(record))
            out.append(h.digest())
        return out

    pa, pb = prefixes(a), prefixes(b)
    if n and pa[n - 1] == pb[n - 1]:
        return None if len(a) == len(b) else n
    # Smallest i with prefix-digest mismatch == first diverging index.
    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if pa[mid] == pb[mid]:
            lo = mid + 1
        else:
            hi = mid
    if n == 0:
        return None if len(a) == len(b) else 0
    return lo


def phase_durations(
    events: Iterable[TraceEvent],
    start_kind: str,
    end_kind: str,
    key: str | None = None,
    strict: bool = False,
) -> list[float]:
    """Pair start/end events and return durations, in end order.

    With ``key`` (e.g. ``"task"``), a start only pairs with an end that
    carries the same ``data[key]`` — interleaved phases from different
    tasks no longer misalign every subsequent pair. Within one key,
    pairing is FIFO (earliest open start first). Ends with no open start
    are ignored; unmatched starts are dropped, or raise ``ValueError``
    when ``strict`` is set.
    """
    open_starts: dict[Any, deque[float]] = {}
    durations: list[float] = []
    for e in events:
        if e.kind not in (start_kind, end_kind):
            continue
        k = e.data.get(key) if key is not None else None
        if e.kind == start_kind:
            open_starts.setdefault(k, deque()).append(e.time)
        else:
            queue = open_starts.get(k)
            if queue:
                durations.append(e.time - queue.popleft())
    if strict:
        unmatched = sum(len(q) for q in open_starts.values())
        if unmatched:
            raise ValueError(
                f"{unmatched} unmatched {start_kind!r} event(s) with no {end_kind!r}"
            )
    return durations
