"""Structured event trace for a simulated job.

Everything the experiment drivers report — recovery timelines (Figs. 3,
10), additional-failure counts (Fig. 4, Table II), phase durations — is
derived from this trace rather than ad-hoc counters, so tests and
benchmarks read the same source of truth.

Queries are backed by a per-kind index maintained on ``log``: the hot
paths (``of_kind``/``count``/``first``/``last``/``times``) touch only
the events of the requested kind instead of scanning the whole log,
which matters once the runner fans out thousands of trials.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.core import Simulator

__all__ = ["ProgressSampler", "Trace", "TraceEvent", "phase_durations"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    data: dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


def _matches(event: TraceEvent, match: dict[str, Any]) -> bool:
    return all(event.data.get(k) == v for k, v in match.items())


class Trace:
    """Append-only log of job events plus sampled time series.

    ``events`` keeps the global order (exports and text reports render
    it); ``_by_kind`` indexes the same event objects per kind so the
    query helpers are O(matching events), not O(all events).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._by_kind: dict[str, list[TraceEvent]] = {}
        self._listeners: dict[str, list[Any]] = {}

    # -- events -----------------------------------------------------------
    def log(self, kind: str, **data: Any) -> None:
        event = TraceEvent(self.sim.now, kind, data)
        self.events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        for fn in list(self._listeners.get(kind, ())):
            fn(event)

    def subscribe(self, kind: str, fn) -> None:
        """Call ``fn(event)`` synchronously on every future ``kind``
        event. This is what lets fault triggers key on trace events
        ("second crash 10 s after the first node_lost") without
        polling: the listener fires at the exact log instant, so
        event-triggered faults stay deterministic."""
        self._listeners.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn) -> None:
        bucket = self._listeners.get(kind)
        if bucket and fn in bucket:
            bucket.remove(fn)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return list(self._by_kind.get(kind, ()))

    def count(self, kind: str, **match: Any) -> int:
        bucket = self._by_kind.get(kind, ())
        if not match:
            return len(bucket)
        return sum(1 for e in bucket if _matches(e, match))

    def first(self, kind: str, **match: Any) -> TraceEvent | None:
        for e in self._by_kind.get(kind, ()):
            if _matches(e, match):
                return e
        return None

    def last(self, kind: str, **match: Any) -> TraceEvent | None:
        for e in reversed(self._by_kind.get(kind, ())):
            if _matches(e, match):
                return e
        return None

    def times(self, kind: str, **match: Any) -> list[float]:
        return [e.time for e in self._by_kind.get(kind, ()) if _matches(e, match)]

    # -- series ----------------------------------------------------------
    def sample(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append((self.sim.now, float(value)))

    def series_values(self, name: str) -> list[tuple[float, float]]:
        return list(self.series.get(name, []))

    # -- aggregates -------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Cheap aggregate view: per-kind counts, series lengths and the
        event time span — no per-event detail, safe to ship across
        process boundaries or into JSON."""
        return {
            "events": len(self.events),
            "kinds": {kind: len(bucket) for kind, bucket in self._by_kind.items()},
            "series": {name: len(points) for name, points in self.series.items()},
            "first_time": self.events[0].time if self.events else None,
            "last_time": self.events[-1].time if self.events else None,
        }


class ProgressSampler:
    """Periodically samples callables into trace series (e.g. the reduce
    progress curves plotted in Figs. 3, 4 and 10).

    A stop→start cycle must hand over cleanly: the old loop may still be
    suspended on its timeout when ``start`` spawns a new one, so each
    loop carries the generation it was started under and exits as soon
    as it wakes into a newer generation — at most one loop ever samples.
    """

    def __init__(self, sim: Simulator, trace: Trace, interval: float = 1.0) -> None:
        self.sim = sim
        self.trace = trace
        self.interval = interval
        self._probes: dict[str, Any] = {}
        self._running = False
        self._generation = 0

    def add_probe(self, name: str, fn) -> None:
        self._probes[name] = fn

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._generation += 1
            self.sim.process(self._loop(self._generation), name="progress-sampler")

    def stop(self) -> None:
        self._running = False

    def _loop(self, generation: int):
        while self._running and generation == self._generation:
            for name, fn in self._probes.items():
                self.trace.sample(name, fn())
            yield self.sim.timeout(self.interval)


def phase_durations(
    events: Iterable[TraceEvent],
    start_kind: str,
    end_kind: str,
    key: str | None = None,
    strict: bool = False,
) -> list[float]:
    """Pair start/end events and return durations, in end order.

    With ``key`` (e.g. ``"task"``), a start only pairs with an end that
    carries the same ``data[key]`` — interleaved phases from different
    tasks no longer misalign every subsequent pair. Within one key,
    pairing is FIFO (earliest open start first). Ends with no open start
    are ignored; unmatched starts are dropped, or raise ``ValueError``
    when ``strict`` is set.
    """
    open_starts: dict[Any, deque[float]] = {}
    durations: list[float] = []
    for e in events:
        if e.kind not in (start_kind, end_kind):
            continue
        k = e.data.get(key) if key is not None else None
        if e.kind == start_kind:
            open_starts.setdefault(k, deque()).append(e.time)
        else:
            queue = open_starts.get(k)
            if queue:
                durations.append(e.time - queue.popleft())
    if strict:
        unmatched = sum(len(q) for q in open_starts.values())
        if unmatched:
            raise ValueError(
                f"{unmatched} unmatched {start_kind!r} event(s) with no {end_kind!r}"
            )
    return durations
