"""Measurement plumbing: event traces, progress sampling, exports and
text reports."""

from repro.metrics.export import (
    export_result_json,
    export_series_csv,
    result_summary,
    trace_records,
)
from repro.metrics.report import failure_timeline, progress_curve, task_gantt
from repro.metrics.trace import ProgressSampler, Trace, TraceEvent, phase_durations

__all__ = [
    "ProgressSampler",
    "Trace",
    "TraceEvent",
    "phase_durations",
    "export_result_json",
    "export_series_csv",
    "failure_timeline",
    "progress_curve",
    "result_summary",
    "task_gantt",
    "trace_records",
]
