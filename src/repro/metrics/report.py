"""Human-readable reports rendered from a job trace.

Text-mode equivalents of the plots in the paper: a task Gantt chart,
the reduce-progress curve (Figs. 3/4/10) and a failure timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import JobResult

__all__ = ["failure_timeline", "progress_curve", "task_gantt"]


def progress_curve(trace: Trace, name: str = "reduce_progress",
                   width: int = 50, step: int = 5) -> str:
    """ASCII rendering of a sampled progress series."""
    points = trace.series_values(name)[::step]
    if not points:
        return f"(no samples for series {name!r})"
    lines = [f"{name} over time:"]
    for t, v in points:
        bar = "#" * int(max(0.0, min(v, 1.0)) * width)
        lines.append(f"  t={t:8.1f}s |{bar:<{width}}| {v * 100:5.1f}%")
    return "\n".join(lines)


def failure_timeline(trace: Trace) -> str:
    """All failure-related events in order."""
    kinds = {"fault_injected", "node_lost", "attempt_failed", "task_failed",
             "map_rerun", "sfm_regenerate", "fcm_start", "iss_switch",
             "fetch_failure_report", "speculation"}
    lines = ["failure timeline:"]
    shown = 0
    for e in trace.events:
        if e.kind not in kinds:
            continue
        if e.kind == "fetch_failure_report" and e.data.get("count", 0) > 1:
            continue  # only the first report per map keeps the log readable
        detail = ", ".join(f"{k}={v}" for k, v in e.data.items() if k != "job")
        lines.append(f"  t={e.time:8.1f}s  {e.kind:22s} {detail}")
        shown += 1
    if shown == 0:
        lines.append("  (no failures)")
    return "\n".join(lines)


def task_gantt(result: "JobResult", task_filter: str = "reduce",
               width: int = 60) -> str:
    """Per-attempt execution bars ('#' running, 'x' failed end)."""
    starts = {e.data["attempt"]: e.time for e in result.trace.of_kind("attempt_start")
              if e.data["type"] == task_filter}
    ends: dict[str, tuple[float, str]] = {}
    for e in result.trace.of_kind("attempt_success"):
        if e.data["attempt"] in starts:
            ends[e.data["attempt"]] = (e.time, "ok")
    for e in result.trace.of_kind("attempt_failed"):
        if e.data["attempt"] in starts:
            ends[e.data["attempt"]] = (e.time, "fail")
    for e in result.trace.of_kind("attempt_killed_node_lost"):
        if e.data["attempt"] in starts:
            ends[e.data["attempt"]] = (e.time, "killed")
    span = max(result.elapsed, 1e-9)
    lines = [f"{task_filter} attempts (0 .. {span:.0f}s):"]
    for attempt in sorted(starts):
        t0 = starts[attempt]
        t1, state = ends.get(attempt, (result.end_time, "ok"))
        a = int(t0 / span * width)
        b = max(a + 1, int(t1 / span * width))
        mark = {"ok": "#", "fail": "x", "killed": "k"}[state]
        bar = " " * a + mark * (b - a)
        lines.append(f"  {attempt:16s} |{bar:<{width}}| {state}")
    return "\n".join(lines)
