"""Export job traces and results to JSON/CSV for external analysis."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.metrics.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import JobResult

__all__ = ["export_result_json", "export_series_csv", "result_summary", "trace_records"]


def trace_records(trace: Trace) -> list[dict[str, Any]]:
    """Flatten trace events into JSON-serialisable records (regular
    events and columnar rows interleaved in log order)."""
    return list(trace.iter_records())


def result_summary(result: "JobResult") -> dict[str, Any]:
    """Compact job summary (no per-event detail)."""
    return {
        "job_name": result.job_name,
        "workload": result.workload,
        "policy": result.policy,
        "success": result.success,
        "elapsed": result.elapsed,
        "start_time": result.start_time,
        "end_time": result.end_time,
        "counters": dict(result.counters),
        "trace": result.trace.summary(),
    }


def export_result_json(result: "JobResult", path: str | Path,
                       include_events: bool = True,
                       include_series: bool = True) -> Path:
    """Write a full job report as JSON; returns the path written."""
    payload: dict[str, Any] = {"summary": result_summary(result)}
    if include_events:
        payload["events"] = trace_records(result.trace)
    if include_series:
        payload["series"] = {
            name: [{"time": t, "value": v} for t, v in points]
            for name, points in result.trace.series.items()
        }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def export_series_csv(trace: Trace, name: str, path: str | Path) -> Path:
    """Write one sampled series (e.g. ``reduce_progress``) as CSV."""
    points = trace.series_values(name)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", name])
        writer.writerows(points)
    return path


