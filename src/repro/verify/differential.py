"""The differential runner: scenario corpus x implementation matrix.

The repo carries two implementations of its DES kernel
(``REPRO_KERNEL`` default/reference) and two of its max-min flow
scheduler (``REPRO_SCHEDULER`` incremental/reference), kept byte-
equivalent by construction. This module is the enforcement: every
scenario runs under every kernel x scheduler pair through the
:class:`~repro.runner.TrialRunner` fan-out, and any digest divergence
is a hard failure that names the scenario, its seed, and the **first
diverging trace event** — located by re-running the two disagreeing
combinations in-process and binary-searching the event streams
(:func:`repro.metrics.trace.first_divergence`), so the report points at
the regression, not just at a hash mismatch.

Golden digests pin the corpus against *time* as well: the expected
digest of every scenario lives in ``tests/golden/scenarios.json`` and
``python -m repro verify --refresh-golden`` is the only sanctioned way
to move it.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.sim.core import SimulationError
from repro.verify.scenarios import SCENARIOS, corpus, quick_corpus, run_verify_spec

__all__ = [
    "COMBOS",
    "Divergence",
    "DivergenceError",
    "GOLDEN_FILE",
    "QUICK_COMBOS",
    "check_golden",
    "load_golden",
    "locate_divergence",
    "refresh_golden",
    "run_matrix",
    "run_matrix_trial",
]

#: The full implementation matrix: (kernel, scheduler) environment
#: selections. "default" leaves the knob unset.
COMBOS: tuple[tuple[str, str], ...] = (
    ("default", "default"),
    ("reference", "default"),
    ("default", "reference"),
    ("reference", "reference"),
    # Pins the incremental scalar flow scheduler against the columnar
    # one under the default (columnar) data plane; the reference eager
    # scheduler is already covered by the rows above.
    ("default", "incremental"),
)

#: The --quick budget still crosses both axes at once: one combo with
#: everything default, one with everything swapped.
QUICK_COMBOS: tuple[tuple[str, str], ...] = (
    ("default", "default"),
    ("reference", "reference"),
)


class DivergenceError(SimulationError):
    """Two implementation combinations disagreed on a scenario."""

    def __init__(self, divergence: "Divergence") -> None:
        super().__init__(str(divergence))
        self.divergence = divergence


@dataclass
class Divergence:
    """Everything needed to chase one digest mismatch."""

    scenario: str
    seed: int
    combo_a: tuple[str, str]
    combo_b: tuple[str, str]
    digest_a: str
    digest_b: str
    event_index: int | None = None
    event_a: dict[str, Any] | None = None
    event_b: dict[str, Any] | None = None

    def __str__(self) -> str:
        head = (f"scenario {self.scenario!r} (seed {self.seed}) diverges "
                f"between kernel/scheduler={'/'.join(self.combo_a)} "
                f"({self.digest_a[:12]}) and {'/'.join(self.combo_b)} "
                f"({self.digest_b[:12]})")
        if self.event_index is None:
            return head
        return (f"{head}; first diverging trace event at index "
                f"{self.event_index}: {self.event_a!r} != {self.event_b!r}")


@contextmanager
def _impl_env(kernel: str, scheduler: str) -> Iterator[None]:
    """Select one implementation pair for the current process only."""
    saved = {k: os.environ.get(k) for k in ("REPRO_KERNEL", "REPRO_SCHEDULER")}
    try:
        for key, choice in (("REPRO_KERNEL", kernel), ("REPRO_SCHEDULER", scheduler)):
            if choice == "default":
                os.environ.pop(key, None)
            else:
                os.environ[key] = choice
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _apply_mutation(payload: dict[str, Any], mutate: str) -> None:
    """Test-only divergence seeding: ``mutate`` perturbs the payload the
    way a real regression would. Only the verify tests pass one."""
    if mutate == "":
        return
    if mutate == "append-event":
        records = payload.get("trace_records")
        if records is not None:
            records.append({"time": -1.0, "kind": "verify_divergence_probe"})
        payload["digest"] = "diverged-" + payload["digest"][:32]
        return
    raise SimulationError(f"unknown verify mutation {mutate!r}")


def run_matrix_trial(seed: int, jobs: tuple[tuple[str, str, str, str], ...],
                     collect_trace: bool = False) -> dict[str, Any]:
    """:class:`TrialRunner` fan-out target. ``seed`` indexes ``jobs``;
    each entry is ``(scenario, kernel, scheduler, mutate)``. The
    implementation pair is selected *inside* the trial so it holds in
    whichever worker process the trial lands in."""
    name, kernel, scheduler, mutate = jobs[seed]
    with _impl_env(kernel, scheduler):
        payload = run_verify_spec(SCENARIOS[name].to_spec(),
                                  collect_trace=collect_trace)
    payload["combo"] = (kernel, scheduler)
    _apply_mutation(payload, mutate)
    return payload


def locate_divergence(divergence: Divergence,
                      mutations: dict[tuple[str, str, str], str] | None = None,
                      ) -> Divergence:
    """Re-run the two disagreeing combinations in-process with full
    trace capture and fill in the first diverging event."""
    from repro.metrics.trace import first_divergence

    records = {}
    for combo in (divergence.combo_a, divergence.combo_b):
        mutate = (mutations or {}).get((divergence.scenario, *combo), "")
        jobs = ((divergence.scenario, combo[0], combo[1], mutate),)
        records[combo] = run_matrix_trial(0, jobs, collect_trace=True)["trace_records"]
    a, b = records[divergence.combo_a], records[divergence.combo_b]
    index = first_divergence(a, b)
    if index is not None:
        divergence.event_index = index
        divergence.event_a = a[index] if index < len(a) else None
        divergence.event_b = b[index] if index < len(b) else None
    return divergence


def run_matrix(
    names: list[str] | None = None,
    combos: Sequence[tuple[str, str]] = COMBOS,
    quick: bool = False,
    mutations: dict[tuple[str, str, str], str] | None = None,
    echo=print,
    store: Any = None,
) -> dict[str, Any]:
    """Run the corpus across the implementation matrix.

    Raises :class:`DivergenceError` on the first scenario whose digests
    disagree, after locating the first diverging trace event. Returns a
    report with the per-scenario digests (from the first combo) for
    golden comparison. ``mutations`` maps ``(scenario, kernel,
    scheduler)`` to a test-only perturbation name — how the tests prove
    a divergence is caught and reported.

    The matrix runs on the campaign layer: with ``store`` (a path or an
    open :class:`~repro.campaign.CampaignStore`) every scenario × combo
    run is checkpointed as it completes, so a killed full-matrix sweep
    resumes via the same call (or ``python -m repro campaign resume``)
    re-running only the missing cells; ``None`` keeps the one-shot
    in-memory behaviour.
    """
    from repro.campaign import CampaignScheduler, CampaignStore, build_plan
    from repro.invariants import InvariantViolation

    scenarios = quick_corpus() if quick and names is None else corpus(names)
    jobs: list[tuple[str, str, str, str]] = []
    for scenario in scenarios:
        for kernel, scheduler in combos:
            mutate = (mutations or {}).get((scenario.name, kernel, scheduler), "")
            jobs.append((scenario.name, kernel, scheduler, mutate))

    plan = build_plan({"kind": "verify-matrix", "jobs": [list(j) for j in jobs]})
    owns_store = not isinstance(store, CampaignStore)
    opened = CampaignStore(store if store is not None else ":memory:") \
        if owns_store else store
    try:
        stats = CampaignScheduler(opened).run(plan)
        payloads = dict(opened.payloads(stats["campaign_id"]))
    finally:
        if owns_store:
            opened.close()

    # Trials loaded from a resumed store bypassed the runner's payload
    # check — re-assert here so a violating cell can never slip through.
    violating = [f"verify-matrix seed {seed}: {v}"
                 for seed, payload in sorted(payloads.items())
                 for v in (payload.get("invariant_violations") or ())]
    if violating:
        raise InvariantViolation(violating)

    by_scenario: dict[str, list[tuple[int, tuple[str, str], dict]]] = {}
    for seed in range(len(jobs)):
        name = jobs[seed][0]
        by_scenario.setdefault(name, []).append(
            (seed, (jobs[seed][1], jobs[seed][2]), payloads[seed]))

    digests: dict[str, str] = {}
    for scenario in scenarios:
        rows = by_scenario[scenario.name]
        base_seed, base_combo, base = rows[0]
        digests[scenario.name] = base["digest"]
        for seed, combo, payload in rows[1:]:
            if payload["digest"] != base["digest"]:
                divergence = Divergence(
                    scenario=scenario.name, seed=SCENARIOS[scenario.name].seed,
                    combo_a=base_combo, combo_b=combo,
                    digest_a=base["digest"], digest_b=payload["digest"])
                raise DivergenceError(locate_divergence(divergence, mutations))
        echo(f"  {scenario.name:28s} {len(rows)} combos  "
             f"digest {base['digest'][:12]}  "
             f"{'ok' if base['success'] else 'job-failed'}")
    return {
        "scenarios": len(scenarios),
        "combos": list(combos),
        "runs": len(jobs),
        "digests": digests,
    }


# -- golden digests ----------------------------------------------------------

GOLDEN_FILE = "scenarios.json"


def golden_path() -> Path:
    """``tests/golden/scenarios.json``, overridable for tests via
    ``REPRO_GOLDEN_DIR``."""
    override = os.environ.get("REPRO_GOLDEN_DIR", "")
    if override:
        return Path(override) / GOLDEN_FILE
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / GOLDEN_FILE


def load_golden() -> dict[str, str]:
    path = golden_path()
    try:
        return json.loads(path.read_text())
    except OSError:
        return {}


def check_golden(digests: dict[str, str]) -> list[str]:
    """Compare scenario digests to the checked-in golden file. Every
    message ends with the remediation, because the right fix is usually
    a deliberate refresh, not a revert."""
    golden = load_golden()
    problems = []
    for name, digest in digests.items():
        expected = golden.get(name)
        if expected is None:
            problems.append(f"scenario {name!r} has no golden digest")
        elif expected != digest:
            problems.append(f"scenario {name!r} digest drifted: expected "
                            f"{expected[:12]}, got {digest[:12]}")
    if problems:
        problems.append("if the change is intentional, run "
                        "`python -m repro verify --refresh-golden` and commit "
                        "the updated tests/golden/scenarios.json")
    return problems


def refresh_golden(digests: dict[str, str]) -> Path:
    from repro.runner import atomic_write_text

    path = golden_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic: the golden file is the corpus's source of truth — a kill
    # mid-refresh must not leave it torn.
    atomic_write_text(path, json.dumps(digests, indent=2, sort_keys=True) + "\n")
    return path
