"""Differential verification: scenario corpus x implementation matrix,
golden trace digests, and metamorphic oracles with automatic shrinking.

Entry points:

- ``python -m repro verify`` — everything (matrix + golden +
  metamorphic); ``--quick`` for the tier-1 budget, ``--matrix`` /
  ``--metamorphic`` to select one layer, ``--refresh-golden`` to move
  the pins deliberately.
- :func:`run_matrix` — corpus x (``REPRO_KERNEL`` x ``REPRO_SCHEDULER``)
  with first-diverging-event reporting.
- :func:`run_all_relations` — the metamorphic relations, shrinking any
  failure to a minimal JSON reproducer.
"""

from repro.verify.differential import (
    COMBOS,
    QUICK_COMBOS,
    Divergence,
    DivergenceError,
    check_golden,
    load_golden,
    locate_divergence,
    refresh_golden,
    run_matrix,
    run_matrix_trial,
)
from repro.verify.metamorphic import (
    RELATIONS,
    Relation,
    RelationResult,
    register_relation,
    run_all_relations,
    run_relation,
)
from repro.verify.scenarios import (
    SCENARIOS,
    Scenario,
    corpus,
    quick_corpus,
    register,
    run_verify_spec,
    scenario_spec,
)

__all__ = [
    "COMBOS",
    "QUICK_COMBOS",
    "Divergence",
    "DivergenceError",
    "RELATIONS",
    "Relation",
    "RelationResult",
    "SCENARIOS",
    "Scenario",
    "check_golden",
    "corpus",
    "load_golden",
    "locate_divergence",
    "quick_corpus",
    "refresh_golden",
    "register",
    "register_relation",
    "run_all_relations",
    "run_matrix",
    "run_matrix_trial",
    "run_relation",
    "run_verify_spec",
    "scenario_spec",
]
