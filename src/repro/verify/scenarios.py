"""The scenario corpus: named, seeded end-to-end runs.

A :class:`Scenario` is a fully-determined job: workload, cluster shape,
recovery policy, HDFS/YARN knobs and a JSON fault schedule (the same
spec language the chaos campaigns speak — :func:`repro.faults.chaos.
build_fault` materialises it). Scenarios are the unit the differential
verifier iterates: every one runs under every kernel x scheduler
implementation pair, and its trace digest is pinned in
``tests/golden/scenarios.json``.

The corpus deliberately spans the axes the paper's claims live on:
workloads (terasort / wordcount / secondarysort) x recovery policies
(yarn / ALG / SFM / ALM / ISS) x fault kinds (none, task OOM, recurring
OOM, node crash, transient partition on both sides of the liveness
timeout, rack failure, degraded node, map wave, event-triggered double
crash). Some scenarios are hand-derived from the experiment drivers
(Fig. 8's ALG task failure, Fig. 9's SFM node failure, Fig. 13's
replication sweep); others are frozen trials of the chaos spec
generator, so generator drift is itself a digest change.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.cluster import ClusterSpec
from repro.faults.chaos import build_fault, generate_trial
from repro.faults.inject import FaultInjector
from repro.hdfs.hdfs import HdfsConfig
from repro.mapreduce.config import JobConf
from repro.mapreduce.job import MapReduceRuntime
from repro.sim.core import SimulationError
from repro.workloads import BENCHMARKS
from repro.yarn.rm import YarnConfig

__all__ = [
    "SCENARIOS",
    "Scenario",
    "corpus",
    "quick_corpus",
    "register",
    "run_verify_spec",
    "scenario_spec",
]


@dataclass(frozen=True)
class Scenario:
    """One named, seeded end-to-end verification run.

    ``faults`` is a tuple of chaos-style JSON fault specs (dicts), so a
    scenario round-trips through JSON untouched — reproducers, golden
    files and worker processes all see the same value.
    """

    name: str
    workload: str = "terasort"
    input_gb: float = 1.0
    reducers: int = 3
    nodes: int = 7
    racks: int = 2
    seed: int = 11
    policy: str = "yarn"
    faults: tuple[dict[str, Any], ...] = ()
    liveness: float = 20.0
    replication: int = 2
    #: JobConf overrides, as a tuple of (field, value) pairs (a dict
    #: would break the frozen dataclass's hashability).
    conf: tuple[tuple[str, Any], ...] = ()
    #: RPC-channel knobs, as (name, value) pairs without the ``rpc_``
    #: prefix (e.g. ``("drop_prob", 0.1)`` -> ``rpc_drop_prob=0.1``).
    rpc: tuple[tuple[str, Any], ...] = ()
    #: Enable LATE-style speculative execution (stock defaults).
    speculation: bool = False
    #: Register the high-volume trace kinds (``task_progress``,
    #: ``flow_done``) — the columnar-storage exercise path.
    trace_columnar: bool = False
    tags: frozenset[str] = field(default_factory=frozenset)

    def to_spec(self) -> dict[str, Any]:
        """The scenario as a plain JSON-able dict (the executable form:
        :func:`run_verify_spec` runs it, the shrinker mutates it)."""
        spec = {
            "name": self.name,
            "workload": self.workload,
            "input_gb": self.input_gb,
            "reducers": self.reducers,
            "nodes": self.nodes,
            "racks": self.racks,
            "seed": self.seed,
            "policy": self.policy,
            "faults": [dict(f) for f in self.faults],
            "liveness": self.liveness,
            "replication": self.replication,
        }
        # Only present when set, so pre-existing scenario specs (and
        # anything keyed on their JSON form) are byte-identical.
        if self.conf:
            spec["conf"] = dict(self.conf)
        if self.rpc:
            spec["rpc"] = dict(self.rpc)
        if self.speculation:
            spec["speculation"] = True
        if self.trace_columnar:
            spec["trace_columnar"] = True
        return spec


#: Name -> scenario. Populated at import time, deterministically, so
#: worker processes rebuild the identical registry from the module.
SCENARIOS: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    from repro.policies import policy_names

    if scenario.name in SCENARIOS:
        raise SimulationError(f"duplicate scenario name {scenario.name!r}")
    if scenario.policy not in policy_names():
        raise SimulationError(f"scenario {scenario.name}: unknown policy "
                              f"{scenario.policy!r}")
    if scenario.workload not in BENCHMARKS:
        raise SimulationError(f"scenario {scenario.name}: unknown workload "
                              f"{scenario.workload!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def corpus(names: list[str] | None = None) -> list[Scenario]:
    """The selected scenarios, in registration order."""
    if names is None:
        return list(SCENARIOS.values())
    missing = [n for n in names if n not in SCENARIOS]
    if missing:
        raise SimulationError(f"unknown scenario(s): {', '.join(missing)}")
    return [SCENARIOS[n] for n in names]


def quick_corpus() -> list[Scenario]:
    """The ``quick``-tagged subset (the tier-1 / ``--quick`` budget)."""
    return [s for s in SCENARIOS.values() if "quick" in s.tags]


def scenario_spec(name: str) -> dict[str, Any]:
    return corpus([name])[0].to_spec()


# -- execution ---------------------------------------------------------------

def run_verify_spec(spec: dict[str, Any],
                    collect_trace: bool = False) -> dict[str, Any]:
    """Run one scenario spec end-to-end; return a JSON-able payload.

    Every verify run also runs the full invariant suite — the payload
    carries violations under ``invariant_violations``, the key the
    :class:`~repro.runner.TrialRunner` hard-fails on, so a scenario
    that breaks an invariant can never quietly pass a digest check.

    ``collect_trace=True`` additionally returns the exported event
    records (``trace_records``) for first-divergence location; such
    payloads are for in-process use (they are large and not cached).
    """
    from repro.experiments.common import make_policy
    from repro.invariants import check_invariants

    wl = BENCHMARKS[spec["workload"]](spec["input_gb"],
                                      num_reducers=spec["reducers"])
    rpc_kwargs = {f"rpc_{k}": v for k, v in (spec.get("rpc") or {}).items()}
    # rpc-loss entries in the fault list (frozen chaos trials) are
    # channel overlays, not injectors — same contract as run_trial_spec.
    fault_dicts = []
    for d in spec["faults"]:
        if d["kind"] == "rpc-loss":
            rpc_kwargs.update(
                rpc_drop_prob=float(d.get("drop_prob", 0.0)),
                rpc_delay_prob=float(d.get("delay_prob", 0.0)),
                rpc_max_delay=float(d.get("max_delay", 2.0)),
                rpc_seed=int(d.get("seed", 0)),
            )
        else:
            fault_dicts.append(d)
    rt = MapReduceRuntime(
        wl,
        conf=JobConf(**spec["conf"]) if spec.get("conf") else None,
        cluster_spec=ClusterSpec(num_nodes=spec["nodes"], num_racks=spec["racks"],
                                 seed=spec["seed"]),
        yarn_config=YarnConfig(nm_liveness_timeout=spec["liveness"], **rpc_kwargs),
        hdfs_config=HdfsConfig(replication=spec["replication"]),
        policy=make_policy(spec["policy"]),
        job_name=f"verify-{spec['name']}",
        speculation=bool(spec.get("speculation", False)),
        trace_columnar=bool(spec.get("trace_columnar", False)),
    )
    if fault_dicts:
        FaultInjector(*[build_fault(d) for d in fault_dicts]).install(rt)
    result = rt.run()
    violations = check_invariants(rt, result)

    trace = result.trace
    kinds = dict(trace.summary()["kinds"])
    inj = trace.first("fault_injected")
    lost = trace.first("node_lost")
    payload: dict[str, Any] = {
        "scenario": spec["name"],
        "digest": trace.digest(),
        "success": result.success,
        "elapsed": result.elapsed,
        "kinds": kinds,
        "task_attempts": {
            t.name: len(t.attempts)
            for t in rt.am.map_tasks + rt.am.reduce_tasks if len(t.attempts) != 1
        },
        "reduce_commits": len(rt.am.reduce_commits),
        "num_reduces": rt.am.num_reduces,
        "detect_latency": (lost.time - inj.time) if inj and lost else None,
        "invariant_violations": violations,
    }
    if collect_trace:
        from repro.metrics.export import trace_records

        payload["trace_records"] = trace_records(trace)
    return payload


# -- the corpus --------------------------------------------------------------

def _crash(progress: float = 0.5, target: str | int = "reducer",
           **kw: Any) -> dict[str, Any]:
    return {"kind": "node-crash", "target": target, "at_progress": progress, **kw}


def _from_chaos(campaign_seed: int, index: int, name: str,
                tags: frozenset[str] = frozenset()) -> Scenario:
    """Freeze one generated chaos trial into a named scenario. The
    generator's sampled cluster/fault parameters become part of the
    corpus, so a change to the generator shows up as a digest drift."""
    spec = generate_trial({"seed": campaign_seed, "scale": 0.5}, index)
    return Scenario(
        name=name,
        workload=spec["workload"],
        input_gb=spec["input_gb"],
        reducers=spec["reducers"],
        nodes=spec["nodes"],
        racks=spec["racks"],
        seed=spec["runtime_seed"],
        policy=spec["policy"],
        faults=tuple(spec["faults"]),
        liveness=spec["liveness"],
        tags=tags,
    )


# Fault-free baselines: one per workload, three different policies.
register(Scenario("clean-terasort-yarn", tags=frozenset({"quick", "clean"})))
register(Scenario("clean-wordcount-alg", workload="wordcount", policy="alg",
                  reducers=2, tags=frozenset({"clean"})))
register(Scenario("clean-secondarysort-alm", workload="secondarysort",
                  input_gb=0.75, policy="alm", tags=frozenset({"clean"})))

# Task failures (Fig. 8's shape: OOM mid-reduce under yarn vs ALG).
register(Scenario("oom-reduce-yarn", tags=frozenset({"quick"}), faults=(
    {"kind": "task-oom", "task_type": "reduce", "task_index": 0,
     "at_progress": 0.5},)))
register(Scenario("oom-recurring-alm", policy="alm", faults=(
    {"kind": "task-oom", "task_type": "reduce", "task_index": 1,
     "at_progress": 0.4, "repeat": 2},)))
register(Scenario("oom-map-alg", policy="alg", workload="wordcount",
                  reducers=2, faults=(
    {"kind": "task-oom", "task_type": "map", "task_index": 0,
     "at_progress": 0.6},)))

# Node failures (Fig. 9 / Fig. 10: reducer-hosting node dies mid-phase).
register(Scenario("crash-reducer-sfm", policy="sfm",
                  tags=frozenset({"quick"}),
                  faults=(_crash(0.5),)))
register(Scenario("netfail-reducer-yarn", faults=(
    {"kind": "node-network", "target": "reducer", "at_progress": 0.5},)))
# Spatial amplification (Fig. 4 / Table II: a map-only node dies and
# every reducer re-fetches).
register(Scenario("crash-mapnode-alg", policy="alg", faults=(
    {"kind": "node-crash", "target": "map-only", "at_time": 10.0},)))
# Fig. 13's axis: the same crash with replication raised to 3.
register(Scenario("replication3-crash-alm", policy="alm", replication=3,
                  faults=(_crash(0.5),)))

# Transient partitions on both sides of the liveness timeout.
register(Scenario("partition-straddle-yarn", input_gb=2.5, faults=(
    {"kind": "partition", "node_indices": [1, 2], "at_time": 8.0,
     "duration": 30.0},)))
register(Scenario("partition-short-alm", policy="alm", input_gb=2.5, faults=(
    {"kind": "partition", "node_indices": [3], "at_time": 8.0,
     "duration": 10.0},)))

# Correlated / degraded-mode failures.
register(Scenario("rack-recover-alm", policy="alm", nodes=8, faults=(
    {"kind": "rack", "rack_index": 1, "count": 2, "at_time": 8.0,
     "mode": "crash", "stagger": 1.5, "duration": 60.0},)))
register(Scenario("slow-node-iss", policy="iss", faults=(
    {"kind": "degraded", "node_index": 2, "at_time": 10.0,
     "disk_factor": 0.15, "nic_factor": 0.5, "duration": 60.0},)))
register(Scenario("map-wave-yarn", faults=(
    {"kind": "map-wave", "count": 2, "at_time": 8.0},)))

# Failure amplification during recovery: second crash keyed on the
# trace ("another node dies 10 s after the first node_lost").
register(Scenario("double-crash-recovery-alm", policy="alm", faults=(
    _crash(0.4),
    {"kind": "node-crash", "target": 1,
     "after": {"kind": "node_lost", "delay": 10.0}},)))

# Frozen chaos-generator trials (indices chosen so the sampled faults
# actually fire: sfm under a double node-crash + map wave, iss under a
# recurring task OOM).
register(_from_chaos(2015, 7, "chaos-2015-7"))
register(_from_chaos(2015, 9, "chaos-2015-9"))

# Control-plane failures: the AM itself dies mid-reduce. The quick one
# recovers from the job-history log (completed maps whose MOFs survive
# are not re-executed); the second pairs the scratch-recovery ablation
# with a lossy RPC channel, exercising allocate retries, grant
# redelivery and heartbeat-drop tolerance on the same run.
register(Scenario("am-restart-log-yarn", tags=frozenset({"quick", "am"}),
                  faults=({"kind": "am-crash", "at_progress": 0.5},)))
register(Scenario("am-restart-rerunall-rpcloss-alg", policy="alg",
                  tags=frozenset({"am"}),
                  conf=(("am_recovery", "rerun-all"),
                        ("keep_containers_across_am_restart", True)),
                  rpc=(("drop_prob", 0.08), ("delay_prob", 0.15),
                       ("max_delay", 1.5), ("seed", 42)),
                  faults=({"kind": "am-crash", "at_progress": 0.5},)))
# Two kills against a budget of two incarnations: the second crash
# exhausts am_max_attempts and the job fails for a modelled reason.
# Also the base leg of the am-max-attempts-monotone relation.
register(Scenario("am-exhaust-yarn", tags=frozenset({"am"}),
                  conf=(("am_max_attempts", 2),),
                  faults=({"kind": "am-crash", "at_progress": 0.4,
                           "repeat": 2, "repeat_gap": 6.0},)))

# Columnar task/flow data-plane exercisers. ``shuffle-heavy-yarn``
# maximises concurrent shuffle flows (many reducers, extra input) with
# the high-volume trace kinds on; ``straggler-spec-alm`` degrades a
# node hard enough that LATE speculation actually duplicates tasks, so
# the vectorized speculator scan and per-attempt progress records are
# on the digest-pinned path.
register(Scenario("shuffle-heavy-yarn", input_gb=2.0, reducers=6, nodes=9,
                  trace_columnar=True, tags=frozenset({"flows"})))
register(Scenario("straggler-spec-alm", policy="alm", speculation=True,
                  trace_columnar=True, tags=frozenset({"flows"}), faults=(
    {"kind": "degraded", "node_index": 2, "at_time": 5.0,
     "disk_factor": 0.08, "nic_factor": 0.3, "duration": 300.0},)))

# Policy-zoo exercisers: one scenario per non-seed registry policy,
# each shaped so the policy's distinctive machinery is on the
# digest-pinned path (appended after the historical corpus so the 23
# pre-existing golden digests are untouched).
register(Scenario("binocular-crash-reducer", policy="binocular",
                  tags=frozenset({"zoo"}), faults=(_crash(0.5),)))
register(Scenario("atlas-oom-recurring", policy="atlas",
                  tags=frozenset({"zoo"}), faults=(
    {"kind": "task-oom", "task_type": "reduce", "task_index": 0,
     "at_progress": 0.3, "repeat": 3},)))
register(Scenario("quantile-straggler-spec", policy="quantile",
                  speculation=True, tags=frozenset({"zoo"}), faults=(
    {"kind": "degraded", "node_index": 2, "at_time": 5.0,
     "disk_factor": 0.08, "nic_factor": 0.3, "duration": 300.0},)))
register(Scenario("m3r-crash-mapnode", policy="m3r",
                  tags=frozenset({"zoo"}), faults=(
    {"kind": "node-crash", "target": "map-only", "at_time": 10.0},)))
