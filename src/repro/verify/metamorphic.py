"""Metamorphic relations: properties that must hold across *related*
runs.

A single run has no oracle beyond the invariant suite — but a **pair**
of runs does. Raising HDFS replication must never lose reduce output
after a crash; adding an idle node must never stretch a fault-free
job's critical path; a recurring task fault with ``repeat=N`` must
produce exactly ``N`` extra attempts; a fault scheduled after job
completion must be a byte-identical no-op. Each relation is a
``(scenario, transform, oracle)`` triple: the transform derives the
related spec, the oracle compares the two payloads.

On failure the relation shrinks its scenario with the chaos campaign's
greedy drop-one-fault minimizer (:func:`repro.faults.chaos.
minimize_spec`, ``floor=0`` — a relation can fail with an empty
schedule) and emits a self-contained JSON reproducer.

Every run in a relation also runs the full invariant suite; an
invariant violation in either leg fails the relation outright.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.faults.chaos import minimize_spec
from repro.sim.core import SimulationError
from repro.verify.scenarios import run_verify_spec, scenario_spec

__all__ = [
    "RELATIONS",
    "Relation",
    "RelationResult",
    "register_relation",
    "run_all_relations",
    "run_relation",
]

#: Placement noise allowance for "no worse" elapsed-time comparisons:
#: changing the cluster shape reshuffles seeded block placement, which
#: legitimately moves the critical path by a hair in either direction.
_ELAPSED_SLACK = 1.02


@dataclass(frozen=True)
class Relation:
    """One metamorphic relation.

    ``transform`` maps the base spec to the related spec (pure — it
    receives its own deep copy). ``oracle`` sees both payloads plus the
    two specs and returns violation messages (empty = relation holds).
    """

    name: str
    scenario: str
    description: str
    transform: Callable[[dict[str, Any]], dict[str, Any]]
    oracle: Callable[..., list[str]]


@dataclass
class RelationResult:
    relation: str
    violations: list[str] = field(default_factory=list)
    minimized_faults: list[dict[str, Any]] | None = None
    reproducer: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


RELATIONS: dict[str, Relation] = {}


def register_relation(relation: Relation) -> Relation:
    if relation.name in RELATIONS:
        raise SimulationError(f"duplicate relation name {relation.name!r}")
    RELATIONS[relation.name] = relation
    return relation


# -- execution ---------------------------------------------------------------

def _check_pair(relation: Relation, base_spec: dict[str, Any]) -> list[str]:
    """Run base + transformed spec and apply the oracle (plus the
    invariant suite on both legs)."""
    variant_spec = relation.transform(copy.deepcopy(base_spec))
    base = run_verify_spec(base_spec)
    variant = run_verify_spec(variant_spec)
    violations = [
        f"{leg}: invariant violated — {v}"
        for leg, payload in (("base", base), ("variant", variant))
        for v in payload["invariant_violations"]
    ]
    violations.extend(relation.oracle(base, variant, base_spec, variant_spec))
    return violations


def run_relation(relation: Relation | str,
                 out_dir: str | Path | None = None) -> RelationResult:
    """Check one relation; on failure, shrink and emit a reproducer."""
    if isinstance(relation, str):
        try:
            relation = RELATIONS[relation]
        except KeyError:
            raise SimulationError(f"unknown relation {relation!r}") from None
    base_spec = scenario_spec(relation.scenario)
    violations = _check_pair(relation, base_spec)
    result = RelationResult(relation.name, violations)
    if not violations:
        return result

    def still_fails(spec: dict[str, Any]) -> bool:
        # A candidate the transform/oracle cannot even process (e.g. the
        # transform indexes a fault the shrinker just dropped) is not a
        # reproduction — keep that fault.
        try:
            return bool(_check_pair(relation, spec))
        except Exception:
            return False

    minimized = minimize_spec(base_spec, violates=still_fails, floor=0)
    result.minimized_faults = minimized["faults"]
    reproducer = {
        "relation": relation.name,
        "description": relation.description,
        "scenario": relation.scenario,
        "violations": violations,
        "spec": base_spec,
        "minimized_faults": minimized["faults"],
    }
    if out_dir is not None:
        from repro.runner import atomic_write_text

        path = Path(out_dir) / f"metamorphic-{relation.name}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(reproducer, indent=2, sort_keys=True) + "\n")
        result.reproducer = str(path)
    return result


def run_all_relations(names: list[str] | None = None,
                      out_dir: str | Path | None = None,
                      echo=print) -> list[RelationResult]:
    selected = list(RELATIONS) if names is None else names
    results = []
    for name in selected:
        result = run_relation(name, out_dir=out_dir)
        status = "ok" if result.ok else "FAILED"
        echo(f"  {name:36s} {status}")
        for v in result.violations:
            echo(f"    - {v}")
        if result.reproducer:
            echo(f"    reproducer written to {result.reproducer}")
        results.append(result)
    return results


# -- the relations -----------------------------------------------------------

def _bump_replication(spec: dict[str, Any]) -> dict[str, Any]:
    spec["replication"] += 1
    return spec


def _replication_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    if base["success"] and not variant["success"]:
        out.append(f"raising replication {base_spec['replication']} -> "
                   f"{variant_spec['replication']} turned a succeeding job "
                   "into a failure")
    if base["success"] and variant["reduce_commits"] != variant["num_reduces"]:
        out.append(f"variant committed {variant['reduce_commits']} of "
                   f"{variant['num_reduces']} reduce outputs")
    return out


register_relation(Relation(
    name="replication-never-loses-output",
    scenario="replication3-crash-alm",
    description="Raising HdfsConfig.replication never loses reduce output "
                "after a node crash: if the job succeeded at level r, it "
                "still succeeds (with every reducer committed) at r+1.",
    transform=_bump_replication,
    oracle=_replication_oracle,
))


def _add_idle_node(spec: dict[str, Any]) -> dict[str, Any]:
    spec["nodes"] += 1
    return spec


def _idle_node_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    if variant["elapsed"] > base["elapsed"] * _ELAPSED_SLACK:
        return [f"adding an idle node stretched the fault-free critical path "
                f"{base['elapsed']:.3f}s -> {variant['elapsed']:.3f}s "
                f"(beyond the {_ELAPSED_SLACK:.0%} placement-noise allowance)"]
    return []


register_relation(Relation(
    name="idle-node-never-hurts",
    scenario="clean-terasort-yarn",
    description="Adding an idle node leaves a no-fault job's critical path "
                "no worse (modulo seeded-placement noise).",
    transform=_add_idle_node,
    oracle=_idle_node_oracle,
))


def _bump_repeat(spec: dict[str, Any]) -> dict[str, Any]:
    spec["faults"][0]["repeat"] = spec["faults"][0].get("repeat", 1) + 1
    return spec


def _repeat_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    for leg, payload, spec in (("base", base, base_spec),
                               ("variant", variant, variant_spec)):
        want = spec["faults"][0].get("repeat", 1)
        fired = payload["kinds"].get("fault_injected", 0)
        if fired != want:
            out.append(f"{leg}: repeat={want} task fault fired {fired} times")
    extra = (variant["kinds"].get("attempt_start", 0)
             - base["kinds"].get("attempt_start", 0))
    if extra != 1:
        out.append(f"one extra repeat must cost exactly one extra attempt, "
                   f"got {extra}")
    return out


register_relation(Relation(
    name="repeat-n-costs-n-attempts",
    scenario="oom-reduce-yarn",
    description="A repeat=N task fault fires exactly N times, and each "
                "extra repeat produces exactly one extra attempt (N faults "
                "-> N+1 attempts of the target task).",
    transform=_bump_repeat,
    oracle=_repeat_oracle,
))


def _add_post_completion_fault(spec: dict[str, Any]) -> dict[str, Any]:
    spec["faults"] = list(spec["faults"]) + [
        {"kind": "node-crash", "target": 0, "at_time": 90_000.0}]
    return spec


def _noop_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    if base["digest"] != variant["digest"]:
        return [f"a fault scheduled after job completion changed the trace "
                f"digest: {base['digest'][:12]} != {variant['digest'][:12]}"]
    return []


register_relation(Relation(
    name="post-completion-fault-is-noop",
    scenario="clean-terasort-yarn",
    description="A fault scheduled after the job has completed is a no-op: "
                "the trace digest is byte-identical to the fault-free run.",
    transform=_add_post_completion_fault,
    oracle=_noop_oracle,
))


def _double_liveness(spec: dict[str, Any]) -> dict[str, Any]:
    spec["liveness"] *= 2.0
    return spec


def _liveness_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    for leg, payload in (("base", base), ("variant", variant)):
        if payload["detect_latency"] is None:
            out.append(f"{leg}: node crash was never detected (no node_lost)")
    if out:
        return out
    if base["detect_latency"] > variant["detect_latency"]:
        out.append(f"doubling the liveness timeout shortened detection "
                   f"latency: {base['detect_latency']:.2f}s -> "
                   f"{variant['detect_latency']:.2f}s")
    return out


register_relation(Relation(
    name="detection-tracks-liveness-timeout",
    scenario="crash-reducer-sfm",
    description="Doubling the NM liveness timeout never shortens the "
                "crash-to-node_lost detection latency (the paper's T_detect "
                "scales with the configured timeout).",
    transform=_double_liveness,
    oracle=_liveness_oracle,
))


def _grow_input(spec: dict[str, Any]) -> dict[str, Any]:
    spec["input_gb"] = round(spec["input_gb"] * 1.5, 6)
    return spec


def _scale_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    if variant["elapsed"] < base["elapsed"]:
        return [f"a 1.5x larger input finished faster: {base['elapsed']:.3f}s "
                f"-> {variant['elapsed']:.3f}s"]
    return []


register_relation(Relation(
    name="input-scale-monotone",
    scenario="clean-wordcount-alg",
    description="Growing the input never makes a fault-free job finish "
                "faster.",
    transform=_grow_input,
    oracle=_scale_oracle,
))


def _drop_faults(spec: dict[str, Any]) -> dict[str, Any]:
    spec["faults"] = []
    return spec


def _fault_slowdown_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    if base["kinds"].get("fault_injected", 0) == 0:
        out.append("base run never fired its fault — the relation is vacuous")
    if variant["elapsed"] > base["elapsed"]:
        out.append(f"removing the injected fault slowed the job down: "
                   f"{base['elapsed']:.3f}s faulted vs "
                   f"{variant['elapsed']:.3f}s clean")
    return out


def _raise_am_attempts(spec: dict[str, Any]) -> dict[str, Any]:
    spec.setdefault("conf", {})["am_max_attempts"] = 4
    return spec


def _am_attempts_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    if (base["kinds"].get("am_attempts_exhausted", 0) == 0
            and not base["success"]):
        out.append("base run failed without exhausting its AM attempts — "
                   "the relation is not testing the exhaustion path")
    if base["success"] and not variant["success"]:
        out.append("raising am_max_attempts turned a succeeding job into a "
                   "failure")
    if not variant["success"]:
        out.append("with am_max_attempts=4 the job must survive two AM "
                   "crashes, but failed")
    if variant["kinds"].get("am_restarted", 0) != 2:
        out.append(f"variant must restart the AM exactly twice, saw "
                   f"{variant['kinds'].get('am_restarted', 0)}")
    return out


register_relation(Relation(
    name="am-max-attempts-monotone",
    scenario="am-exhaust-yarn",
    description="Raising am_max_attempts never makes a job worse: a "
                "two-kill schedule that exhausts a budget of 2 incarnations "
                "must succeed once the budget covers both kills.",
    transform=_raise_am_attempts,
    oracle=_am_attempts_oracle,
))


register_relation(Relation(
    name="fault-never-speeds-completion",
    scenario="oom-reduce-yarn",
    description="An injected task fault never makes the job finish earlier "
                "than the fault-free run of the same scenario.",
    transform=_drop_faults,
    oracle=_fault_slowdown_oracle,
))


def _add_mapnode_crash(spec: dict[str, Any]) -> dict[str, Any]:
    spec["faults"] = list(spec["faults"]) + [
        {"kind": "node-crash", "target": "map-only", "at_progress": 0.35}]
    return spec


def _amplification_oracle(base, variant, base_spec, variant_spec) -> list[str]:
    out = []
    added = (variant["kinds"].get("fault_injected", 0)
             - base["kinds"].get("fault_injected", 0))
    if added < 1:
        out.append("the added node crash never fired — the relation is "
                   "vacuous")
    if base["success"] and not variant["success"]:
        out.append("the extra crash turned a recoverable run into a failure")
    if (base["success"] and variant["success"]
            and variant["elapsed"] < base["elapsed"]):
        out.append(f"adding a node crash made the job finish earlier: "
                   f"{base['elapsed']:.3f}s -> {variant['elapsed']:.3f}s — "
                   "recovery amplification cannot be negative")
    return out


register_relation(Relation(
    name="amplification-ordering",
    scenario="binocular-crash-reducer",
    description="Adding a node crash to an already-faulted schedule never "
                "decreases job time: failure amplification is monotone in "
                "the fault set (checked on the binocular zoo policy, whose "
                "dual recovery attempts are the likeliest to mask it).",
    transform=_add_mapnode_crash,
    oracle=_amplification_oracle,
))
