"""A small HDFS: NameNode metadata, block placement and replication.

Only the aspects the paper exercises are modelled: block-granular
placement with rack awareness, pipelined replicated writes (whose cost
grows with the replication *level* — node, rack or cluster — exactly
the knob ALG tunes in Fig. 13), locality-aware reads with failover
across replicas, and replica loss when a node dies.
"""

from repro.hdfs.hdfs import (
    Block,
    BlockLostError,
    Hdfs,
    HdfsConfig,
    HdfsError,
    HdfsFile,
    ReplicationLevel,
)

__all__ = [
    "Block",
    "BlockLostError",
    "Hdfs",
    "HdfsConfig",
    "HdfsError",
    "HdfsFile",
    "ReplicationLevel",
]
