"""Background re-replication of under-replicated HDFS blocks.

Real HDFS detects under-replicated blocks after a DataNode is declared
dead and schedules copies from surviving replicas. The paper's
experiments are too short for stock re-replication (10-minute DataNode
timeout) to matter, so the daemon is **opt-in**: attach one to a
simulation when modelling long-running clusters or studying durability
under repeated failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.hdfs import Block, Hdfs
from repro.sim.core import Interrupt, SimulationError
from repro.sim.flows import FlowCancelled

__all__ = ["ReReplicationDaemon", "ReReplicationConfig"]


@dataclass(frozen=True)
class ReReplicationConfig:
    """Re-replication policy knobs."""

    #: Delay between a replica loss and scheduling the copy (stands in
    #: for the DataNode dead-declaration interval).
    detection_delay: float = 30.0
    #: Scan period of the under-replication monitor.
    scan_interval: float = 5.0
    #: Maximum concurrent block copies cluster-wide.
    max_concurrent: int = 8

    def __post_init__(self) -> None:
        if self.detection_delay < 0 or self.scan_interval <= 0:
            raise SimulationError("bad re-replication timings")
        if self.max_concurrent < 1:
            raise SimulationError("max_concurrent must be >= 1")


class ReReplicationDaemon:
    """Monitors block replica counts and restores the target factor."""

    def __init__(self, hdfs: Hdfs, config: ReReplicationConfig | None = None) -> None:
        self.hdfs = hdfs
        self.sim = hdfs.sim
        self.cluster = hdfs.cluster
        self.config = config or ReReplicationConfig()
        self.copies_done = 0
        self.bytes_copied = 0.0
        self._in_flight = 0
        self._loss_times: dict[int, float] = {}
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.sim.process(self._monitor(), name="hdfs-rereplication")

    def stop(self) -> None:
        self._running = False

    # -- internals -------------------------------------------------------------
    def _under_replicated(self) -> list[Block]:
        out = []
        for f in self.hdfs._files.values():
            for b in f.blocks:
                live = b.live_replicas()
                if live and len(live) < self.hdfs.config.replication:
                    out.append(b)
        return out

    def _monitor(self):
        cfg = self.config
        while self._running:
            yield self.sim.timeout(cfg.scan_interval)
            now = self.sim.now
            for block in self._under_replicated():
                first_seen = self._loss_times.setdefault(block.block_id, now)
                if now - first_seen < cfg.detection_delay:
                    continue
                if self._in_flight >= cfg.max_concurrent:
                    break
                target = self._pick_target(block)
                if target is None:
                    continue
                self._in_flight += 1
                # Optimistically count the pending replica so the next
                # scan doesn't double-schedule this block. All copies
                # scheduled in this scan tick start their flows at the
                # same instant, which the scheduler coalesces into one
                # rate recompute.
                block.replicas.append(target)
                self.sim.process(self._copy(block, target),
                                 name=f"rerepl:blk{block.block_id}")

    def _pick_target(self, block: Block) -> "Node | None":
        holders = set(block.live_replicas())
        pool = [n for n in self.hdfs.datanodes
                if n.reachable and n not in holders]
        if not pool:
            return None
        return pool[int(self.hdfs.rng.integers(len(pool)))]

    def _copy(self, block: Block, target):
        src_candidates = [n for n in block.live_replicas()
                          if n.reachable and n is not target]
        try:
            if not src_candidates:
                raise SimulationError("no live source")
            src = src_candidates[0]
            fl = self.cluster.net_transfer(
                src, target, block.size, name=f"rerepl:{block.block_id}",
                read_src_disk=True, write_dst_disk=True)
            yield fl.done
        except (FlowCancelled, SimulationError, Interrupt):
            if target in block.replicas:
                block.replicas.remove(target)
            self._in_flight -= 1
            return
        if target.alive:
            target.write_file(self.hdfs._replica_path(block), block.size, kind="hdfs")
        self.copies_done += 1
        self.bytes_copied += block.size
        self._loss_times.pop(block.block_id, None)
        self._in_flight -= 1
