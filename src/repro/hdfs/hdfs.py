"""Simulated HDFS NameNode + DataNode behaviour."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.cluster.node import MB, Node
from repro.sim.core import Interrupt, Process, SimulationError, Simulator
from repro.sim.flows import FlowCancelled

__all__ = [
    "Block",
    "BlockLostError",
    "Hdfs",
    "HdfsConfig",
    "HdfsError",
    "HdfsFile",
    "ReplicationLevel",
]


class HdfsError(Exception):
    """Base error for file-system operations."""


class BlockLostError(HdfsError):
    """All replicas of a required block are gone."""


class ReplicationLevel(enum.Enum):
    """How far replicas are allowed to spread (paper §V-D / Fig. 13).

    - ``NODE``: all replicas stay on the writer (no network cost).
    - ``RACK``: remote replicas stay inside the writer's rack.
    - ``CLUSTER``: standard HDFS policy — second replica off-rack.
    """

    NODE = "node"
    RACK = "rack"
    CLUSTER = "cluster"


@dataclass(frozen=True)
class HdfsConfig:
    """Table I values relevant to HDFS."""

    block_size: float = 128.0 * MB
    replication: int = 2
    level: ReplicationLevel = ReplicationLevel.CLUSTER

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise SimulationError("block size must be positive")
        if self.replication < 1:
            raise SimulationError("replication must be >= 1")


@dataclass
class Block:
    """One HDFS block and the nodes currently holding a replica."""

    block_id: int
    path: str
    size: float
    replicas: list[Node] = field(default_factory=list)

    def live_replicas(self) -> list[Node]:
        return [n for n in self.replicas if n.alive]

    @property
    def lost(self) -> bool:
        return not self.live_replicas()


@dataclass
class HdfsFile:
    path: str
    size: float
    blocks: list[Block] = field(default_factory=list)

    @property
    def available(self) -> bool:
        return all(not b.lost for b in self.blocks)


class Hdfs:
    """NameNode metadata plus simulated data-plane operations."""

    def __init__(self, sim: Simulator, cluster: Cluster, config: HdfsConfig | None = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config or HdfsConfig()
        self.rng = cluster.rng
        self._files: dict[str, HdfsFile] = {}
        self._next_block = 0
        #: Nodes eligible to store blocks (excludes e.g. the RM/NameNode host).
        self.datanodes: list[Node] = list(cluster.nodes)
        cluster.failure_listeners.append(self._on_node_failure)
        cluster.rejoin_listeners.append(self._on_node_rejoin)

    # -- metadata -----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def file(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise HdfsError(f"no such file: {path}") from None

    def blocks(self, path: str) -> list[Block]:
        return self.file(path).blocks

    def delete(self, path: str) -> None:
        f = self._files.pop(path, None)
        if f is None:
            return
        for b in f.blocks:
            for n in b.live_replicas():
                n.delete_file(self._replica_path(b))

    def total_bytes(self) -> float:
        return sum(f.size for f in self._files.values())

    def _replica_path(self, block: Block) -> str:
        return f"hdfs/{block.path}/blk_{block.block_id}"

    def _new_block(self, path: str, size: float) -> Block:
        self._next_block += 1
        return Block(self._next_block, path, size, [])

    # -- placement --------------------------------------------------------
    def _choose_replicas(
        self, writer: Node | None, replication: int, level: ReplicationLevel
    ) -> list[Node]:
        """Pick replica nodes for one block.

        First replica is the writer when it is a live datanode
        (HDFS's write-locality rule); remaining replicas follow the
        configured spread level.
        """
        alive = [n for n in self.datanodes if n.alive and n.reachable]
        if not alive:
            raise HdfsError("no live datanodes")
        chosen: list[Node] = []
        if writer is not None and writer.alive and writer.reachable and writer in self.datanodes:
            chosen.append(writer)
        else:
            chosen.append(alive[int(self.rng.integers(len(alive)))])
        anchor = chosen[0]

        if level is ReplicationLevel.NODE:
            # All replicas collapse onto the writer: no replication traffic.
            return chosen

        def pick(pool: list[Node]) -> Node | None:
            pool = [n for n in pool if n not in chosen]
            if not pool:
                return None
            return pool[int(self.rng.integers(len(pool)))]

        while len(chosen) < replication:
            if level is ReplicationLevel.RACK:
                cand = pick([n for n in alive if n.rack is anchor.rack])
            else:  # CLUSTER: second replica off-rack, rest anywhere
                if len(chosen) == 1:
                    cand = pick([n for n in alive if n.rack is not anchor.rack]) or pick(alive)
                else:
                    cand = pick(alive)
            if cand is None:
                break  # cluster too small for the requested replication
            chosen.append(cand)
        return chosen

    # -- bulk ingest (no simulated time) ------------------------------------
    def ingest(self, path: str, size: float, replication: int | None = None) -> HdfsFile:
        """Instantly materialise a file (e.g. job input before t=0)."""
        if self.exists(path):
            raise HdfsError(f"file exists: {path}")
        repl = replication if replication is not None else self.config.replication
        f = HdfsFile(path, float(size))
        remaining = float(size)
        alive = [n for n in self.datanodes if n.alive and n.reachable]
        start = int(self.rng.integers(len(alive)))
        i = 0
        while remaining > 0:
            bsize = min(self.config.block_size, remaining)
            block = self._new_block(path, bsize)
            # Spread primaries round-robin so map input is balanced.
            primary = alive[(start + i) % len(alive)]
            block.replicas = self._choose_replicas(primary, repl, ReplicationLevel.CLUSTER)
            for n in block.replicas:
                n.write_file(self._replica_path(block), bsize, kind="hdfs")
            f.blocks.append(block)
            remaining -= bsize
            i += 1
        self._files[path] = f
        return f

    # -- write path ----------------------------------------------------------
    def write(
        self,
        writer: Node,
        path: str,
        size: float,
        replication: int | None = None,
        level: ReplicationLevel | None = None,
        overwrite: bool = False,
    ) -> Process:
        """Write ``size`` bytes from ``writer`` as ``path``.

        Returns a process event; its value is the :class:`HdfsFile`.
        The write is a replication pipeline: the writer streams to its
        local disk and forwards to the next replica concurrently, so
        wall time is governed by the slowest hop — which is what makes
        cluster-level replication expensive (Fig. 13).
        """
        repl = replication if replication is not None else self.config.replication
        lvl = level if level is not None else self.config.level
        return self.sim.process(
            self._write_proc(writer, path, size, repl, lvl, overwrite),
            name=f"hdfs-write:{path}",
        )

    def _write_proc(self, writer, path, size, repl, lvl, overwrite):
        if self.exists(path):
            if not overwrite:
                raise HdfsError(f"file exists: {path}")
            self.delete(path)
        f = HdfsFile(path, float(size))
        remaining = float(size)
        while remaining > 0:
            bsize = min(self.config.block_size, remaining)
            block = self._new_block(path, bsize)
            targets = self._choose_replicas(writer, repl, lvl)
            # The whole replication pipeline starts at one instant, so
            # open it as a single batch: one progress advance and one
            # deferred rate recompute for all pipeline stages.
            with self.cluster.flows.batch():
                flows = []
                if targets[0] is writer:
                    flows.append(self.cluster.disk_write(writer, bsize,
                                                         name=f"hdfs-w{block.block_id}"))
                else:
                    # Writer is not a datanode (or not usable): stream the
                    # block to the first replica over the network.
                    flows.append(self.cluster.net_transfer(
                        writer, targets[0], bsize, name=f"hdfs-w{block.block_id}",
                        read_src_disk=False, write_dst_disk=True))
                prev = targets[0]
                for nd in targets[1:]:
                    flows.append(
                        self.cluster.net_transfer(
                            prev, nd, bsize,
                            name=f"hdfs-pipe{block.block_id}",
                            read_src_disk=False,
                            write_dst_disk=True,
                        )
                    )
                    prev = nd
            try:
                yield self.sim.all_of([fl.done for fl in flows])
            except FlowCancelled as exc:
                # A pipeline node died; real HDFS rebuilds the pipeline with
                # the survivors. Retry the block with a fresh replica set.
                self.cluster.flows.cancel_many(
                    [fl for fl in flows if fl.active], "pipeline rebuild")
                if not writer.alive:
                    raise HdfsError(f"writer died during write of {path}") from exc
                continue
            except Interrupt:
                # The writing task was killed: abandon the file and drop
                # the in-flight pipeline instead of streaming into the
                # void as an orphaned flow.
                self.cluster.flows.cancel_many(
                    [fl for fl in flows if fl.active], "write abandoned")
                return None
            block.replicas = [n for n in targets if n.alive]
            for n in block.replicas:
                n.write_file(self._replica_path(block), bsize, kind="hdfs")
            f.blocks.append(block)
            remaining -= bsize
        # A replica holder may die after its block's pipeline finished
        # but before file close. The file is only registered at close,
        # so ``_on_node_failure`` never saw it — prune the casualties
        # here (real HDFS validates replica lists at close the same way).
        for b in f.blocks:
            b.replicas = [n for n in b.replicas if n.alive]
        self._files[path] = f
        return f

    # -- read path ---------------------------------------------------------
    def read(self, reader: Node, path: str) -> Process:
        """Read the whole file to ``reader``; returns a process event."""
        return self.sim.process(self._read_proc(reader, self.file(path).blocks), name=f"hdfs-read:{path}")

    def read_block(self, reader: Node, block: Block) -> Process:
        return self.sim.process(self._read_proc(reader, [block]), name=f"hdfs-readblk:{block.block_id}")

    def _read_proc(self, reader, blocks):
        total = 0.0
        for block in blocks:
            candidates = self._ordered_replicas(reader, block)
            if not candidates:
                raise BlockLostError(f"block {block.block_id} of {block.path} lost")
            done = False
            for src in candidates:
                try:
                    if src is reader:
                        fl = self.cluster.disk_read(reader, block.size, name=f"hdfs-r{block.block_id}")
                    else:
                        fl = self.cluster.net_transfer(
                            src, reader, block.size, name=f"hdfs-r{block.block_id}"
                        )
                    yield fl.done
                    done = True
                    break
                except (FlowCancelled, SimulationError):
                    continue  # replica died mid-read: try the next one
            if not done:
                raise BlockLostError(f"block {block.block_id} of {block.path} lost mid-read")
            total += block.size
        return total

    def _ordered_replicas(self, reader: Node, block: Block) -> list[Node]:
        """Replicas sorted by locality: local, rack-local, remote."""

        def rank(n: Node) -> int:
            if n is reader:
                return 0
            return 1 if n.rack is reader.rack else 2

        live = [n for n in block.live_replicas() if n.reachable or n is reader]
        return sorted(live, key=rank)

    def preferred_nodes(self, path: str) -> list[list[Node]]:
        """Per-block locality hints for the scheduler (split placement)."""
        return [b.live_replicas() for b in self.blocks(path)]

    def num_blocks(self, size: float) -> int:
        return max(1, math.ceil(size / self.config.block_size))

    # -- failure handling --------------------------------------------------
    def _on_node_failure(self, node: Node) -> None:
        if node.alive:
            return  # network-only failure keeps replicas intact
        for f in self._files.values():
            for b in f.blocks:
                if node in b.replicas:
                    b.replicas = [n for n in b.replicas if n is not node]

    def _on_node_rejoin(self, node: Node) -> None:
        """DataNode block report: a rejoining node re-registers every
        replica that survived on its disk. A healed partition never
        pruned metadata, so this only matters after a crash+restart —
        the NameNode forgot the replicas, the disk did not."""
        if not node.reachable:
            return
        for f in self._files.values():
            for b in f.blocks:
                if node not in b.replicas and node.has_file(self._replica_path(b)):
                    b.replicas.append(node)
