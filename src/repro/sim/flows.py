"""Max-min fair bandwidth sharing for disks and network links.

Data movement in the cluster model is a *fluid* approximation: a
:class:`Flow` carries ``size`` bytes through an ordered set of
:class:`LinkResource` objects (source disk, source NIC egress,
destination NIC ingress, ...). At any instant every active flow
receives its **max-min fair** rate, computed by progressive filling:
repeatedly find the most-contended resource, freeze all its flows at
the equal share, subtract, and continue. Between rate changes all rates
are constant, so flow completions can be scheduled exactly.

Two structural optimisations keep the hot path sublinear per event at
cluster scale without changing a single allocated rate:

**Same-timestamp coalescing.** Starting, finishing or cancelling a flow
only marks the scheduler *dirty*; the progressive-filling pass runs
once per simulated instant (a zero-delay flush event, or lazily the
moment any rate is observed). A 500-flow shuffle wave arriving at one
timestamp therefore pays one filling pass instead of 500. This is
exact: rates only matter once simulated time advances, and the flush is
guaranteed to run before it does.

**Scoped incremental recomputation.** The flush re-shares only the
connected component of the flow/resource bipartite graph reachable from
the dirtied flows and links. Max-min allocation decomposes across
connected components, so untouched components keep their frozen rates —
which are bit-identical to what a full recompute would reassign them.

The filling loop itself scans only the component's resources per round
(not the cluster's) and tracks flows by dense integer ids rather than
``id()`` dictionaries.

This fluid model is standard in cluster simulators; it preserves the
qualitative behaviour the reproduction needs (disk-bound merging,
NIC-bound shuffles, contention slowdowns) without per-packet events.
:mod:`repro.sim.flows_reference` keeps the eager O(flows · resources)
reference scheduler; equivalence tests pin this implementation to it.
"""

from __future__ import annotations

import itertools
import math
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.sim.core import Event, SimulationError, Simulator, Timeout

__all__ = ["Flow", "FlowCancelled", "FlowScheduler", "LinkResource"]

#: Relative tolerance for declaring a flow complete.
_EPS = 1e-9


class FlowCancelled(Exception):
    """Failure payload delivered to waiters of a cancelled flow."""

    def __init__(self, flow: "Flow", reason: str = "") -> None:
        super().__init__(reason or f"flow {flow.name} cancelled")
        self.flow = flow
        self.reason = reason


class LinkResource:
    """A capacity-limited bandwidth resource (bytes/second).

    One instance models one contended device direction: a disk's
    aggregate bandwidth, a NIC's egress, a NIC's ingress, etc.
    """

    __slots__ = ("name", "_capacity", "_scheduler", "_rid")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"link capacity must be > 0, got {capacity}")
        self.name = name
        self._capacity = float(capacity)
        self._scheduler = None
        #: Dense id assigned by a columnar scheduler at first use.
        self._rid = -1

    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change capacity at the current simulated time (e.g. a slow
        disk on a faulty node). Active flows are re-shared immediately.
        """
        if capacity <= 0:
            raise SimulationError(f"link capacity must be > 0, got {capacity}")
        self._capacity = float(capacity)
        if self._scheduler is not None:
            self._scheduler._reshare(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkResource {self.name} {self._capacity:.3g} B/s>"


class Flow:
    """An in-flight transfer of ``size`` bytes across resources."""

    __slots__ = ("name", "size", "remaining", "resources", "done", "fid",
                 "_rate", "_active", "_sched", "_cols", "_slot")

    def __init__(self, name: str, size: float, resources: tuple[LinkResource, ...], done: Event) -> None:
        self.name = name
        self.size = float(size)
        self.remaining = float(size)
        self.resources = resources
        #: Event triggered when the transfer completes (value: the flow)
        #: or fails with :class:`FlowCancelled`.
        self.done = done
        #: Dense per-scheduler integer id, assigned at admission;
        #: monotone in admission order, so sorting fids recovers the
        #: scheduler's flow ordering without touching the flow list.
        self.fid = -1
        self._rate = 0.0
        self._active = True
        self._sched = None
        #: While attached to a columnar scheduler, (_cols, _slot) name
        #: the authoritative remaining/rate cells; the instance
        #: attributes are written back at detach.
        self._cols = None
        self._slot = -1

    @property
    def rate(self) -> float:
        """Current allocated rate. Observing the rate flushes any
        pending (coalesced) recompute so callers never see a stale
        mid-instant allocation."""
        sched = self._sched
        if sched is not None and sched._dirty:
            sched._flush()
        cols = self._cols
        if cols is not None:
            return float(cols.col("rate")[self._slot])
        return self._rate

    @property
    def active(self) -> bool:
        """True while the flow is admitted and moving bytes."""
        return self._active

    @property
    def transferred(self) -> float:
        """Bytes moved so far, accurate at the current simulated time."""
        cols = self._cols
        if cols is not None:
            remaining = float(cols.col("remaining")[self._slot])
            rate = float(cols.col("rate")[self._slot])
        else:
            remaining = self.remaining
            rate = self._rate
        if self._active and self._sched is not None and rate > 0:
            dt = self._sched.sim.now - self._sched._last_update
            if dt > 0:
                remaining = max(0.0, remaining - rate * dt)
        return self.size - remaining

    @property
    def progress(self) -> float:
        return 1.0 if self.size == 0 else self.transferred / self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flow {self.name} {self.remaining:.3g}/{self.size:.3g}B @{self._rate:.3g}B/s>"


class FlowScheduler:
    """Tracks active flows and keeps their max-min rates current.

    Mutations (:meth:`transfer`, :meth:`cancel`, capacity changes,
    completions) are cheap: they update the flow/resource adjacency and
    mark the touched resources dirty. Rates are re-shared once per
    simulated instant, scoped to the dirty connected component.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: fid -> Flow, in admission order (dict preserves insertion).
        self._active: dict[int, Flow] = {}
        #: resource -> {fid: Flow} adjacency, each bucket in admission order.
        self._res_flows: dict[LinkResource, dict[int, Flow]] = {}
        self._last_update = sim.now
        self._names = itertools.count()
        self._next_fid = 0
        self._dirty = False
        self._dirty_res: dict[LinkResource, None] = {}
        self._flush_scheduled = False
        self._in_batch = False
        self._timer: Timeout | None = None
        self._timer_fire = math.inf
        #: Optional hook called with each flow the instant it completes
        #: (before its ``done`` event succeeds) — the ``flow_done``
        #: trace kind hangs off this, identically across schedulers.
        self.on_complete = None
        #: Observability counters for benchmarks / REPRO_PROFILE.
        self.stats = {
            "transfers": 0,
            "cancels": 0,
            "completions": 0,
            "recomputes": 0,
            "recomputed_flows": 0,
            "filling_rounds": 0,
            "timer_pushes": 0,
            "timer_reuses": 0,
            "column_ops": 0,
        }

    @property
    def active_flows(self) -> tuple[Flow, ...]:
        return tuple(self._active.values())

    @property
    def active_count(self) -> int:
        return len(self._active)

    def total_transferred(self) -> float:
        """Bytes moved so far across all active flows, in one pass.

        Bit-identical to ``sum(f.transferred for f in active_flows)``
        (same per-flow arithmetic, same admission-order accumulation)
        but reads the clock once and materializes no flow tuple — the
        bulk-rate read activity monitors poll every few seconds.
        """
        dt = self.sim.now - self._last_update
        total = 0.0
        if dt > 0:
            for f in self._active.values():
                remaining = f.remaining
                if f._rate > 0:
                    remaining = max(0.0, remaining - f._rate * dt)
                total += f.size - remaining
        else:
            for f in self._active.values():
                total += f.size - f.remaining
        return total

    # -- public API --------------------------------------------------------
    def transfer(
        self,
        size: float,
        resources: Iterable[LinkResource],
        name: str | None = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Start moving ``size`` bytes through ``resources``.

        ``rate_cap`` bounds this flow's own rate regardless of
        contention (e.g. a memory-to-memory copy limited by memcpy
        bandwidth); it is implemented as a private single-flow resource
        so the fairness computation stays uniform.
        """
        if size < 0:
            raise SimulationError(f"flow size must be >= 0, got {size}")
        res = tuple(dict.fromkeys(resources))
        if rate_cap is not None:
            res = res + (LinkResource(f"cap-{name or next(self._names)}", rate_cap),)
        if not res:
            raise SimulationError("a flow needs at least one resource or a rate_cap")
        for r in res:
            if r._scheduler is None:
                r._scheduler = self
            elif r._scheduler is not self:
                raise SimulationError(f"{r!r} belongs to another FlowScheduler")
        done = self.sim.event()
        flow = Flow(name or f"flow-{next(self._names)}", size, res, done)
        flow._sched = self
        if size == 0:
            flow._active = False
            done.succeed(flow)
            return flow
        if not self._in_batch:
            self._advance()
        flow.fid = self._next_fid
        self._next_fid += 1
        self._active[flow.fid] = flow
        for r in res:
            self._res_flows.setdefault(r, {})[flow.fid] = flow
        self._mark_dirty(res)
        self.stats["transfers"] += 1
        return flow

    def transfer_many(self, requests: Iterable[dict]) -> list[Flow]:
        """Start several flows at the current instant in one batch.

        Each request is a dict of :meth:`transfer` keyword arguments.
        All flows share a single progress advance and a single deferred
        recompute.
        """
        with self.batch():
            return [self.transfer(**req) for req in requests]

    def cancel(self, flow: Flow, reason: str = "") -> None:
        """Abort a flow; its ``done`` event fails with :class:`FlowCancelled`."""
        if not flow._active:
            return
        if not self._in_batch:
            self._advance()
        self._remove(flow)
        flow.done.defuse()
        flow.done.fail(FlowCancelled(flow, reason))
        self.stats["cancels"] += 1

    def cancel_many(self, flows: Iterable[Flow], reason: str = "") -> list[Flow]:
        """Cancel several flows with one progress advance and one
        deferred recompute; returns the flows that were still active.

        Bookkeeping completes for the whole batch before the first
        ``done`` event fails, so failure callbacks observe a consistent
        scheduler (mirroring :meth:`_complete_finished`).
        """
        victims = [f for f in flows if f._active]
        if not victims:
            return victims
        with self.batch():
            for f in victims:
                self._remove(f)
            for f in victims:
                f.done.defuse()
                f.done.fail(FlowCancelled(f, reason))
        self.stats["cancels"] += len(victims)
        return victims

    def cancel_flows_using(self, resources, reason: str = "") -> list[Flow]:
        """Cancel every active flow routed through ``resources`` (a
        single :class:`LinkResource` or an iterable of them, e.g. all
        three device directions of a dead node) in one batch."""
        if isinstance(resources, LinkResource):
            resources = (resources,)
        victims: list[Flow] = []
        seen: set[int] = set()
        for r in resources:
            for fid, f in self._res_flows.get(r, {}).items():
                if fid not in seen:
                    seen.add(fid)
                    victims.append(f)
        return self.cancel_many(victims, reason)

    @contextmanager
    def batch(self) -> Iterator["FlowScheduler"]:
        """Group several mutations at the current instant: progress is
        advanced once on entry and per-operation advances are skipped.
        Must not span simulated time (don't yield to the simulator
        inside the block)."""
        if self._in_batch:
            yield self
            return
        self._advance()
        self._in_batch = True
        try:
            yield self
        finally:
            self._in_batch = False

    # -- internals ---------------------------------------------------------
    def _advance(self) -> None:
        """Account progress made since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for f in self._active.values():
            f.remaining = max(0.0, f.remaining - f._rate * dt)

    def _reshare(self, resource: LinkResource | None = None) -> None:
        """Re-run fairness after an external capacity change."""
        self._advance()
        self._complete_finished()
        self._mark_dirty((resource,) if resource is not None else tuple(self._res_flows))

    def _complete_finished(self) -> None:
        finished = [f for f in self._active.values()
                    if f.remaining <= _EPS * max(f.size, 1.0)]
        # Bookkeeping before completions so callbacks observing the
        # scheduler see a consistent state.
        for f in finished:
            f.remaining = 0.0
            self._remove(f)
        hook = self.on_complete
        for f in finished:
            if hook is not None:
                hook(f)
            f.done.succeed(f)
        self.stats["completions"] += len(finished)

    def _remove(self, flow: Flow) -> None:
        flow._active = False
        del self._active[flow.fid]
        for r in flow.resources:
            bucket = self._res_flows.get(r)
            if bucket is not None:
                bucket.pop(flow.fid, None)
                if not bucket:
                    del self._res_flows[r]
        self._mark_dirty(flow.resources)

    def _mark_dirty(self, resources: Iterable[LinkResource]) -> None:
        for r in resources:
            self._dirty_res[r] = None
        self._dirty = True
        if not self._flush_scheduled:
            # One zero-delay flush per instant: it lands after every
            # already-queued event at the current time, coalescing all
            # of the instant's flow churn into one recompute.
            self._flush_scheduled = True
            self.sim.timeout(0.0)._add_callback(self._flush_cb)

    def _flush_cb(self, _event: Event) -> None:
        self._flush_scheduled = False
        if self._dirty:
            self._flush()

    def _flush(self) -> None:
        """Recompute rates for the dirty connected component and
        refresh the completion timer."""
        self._dirty = False
        dirty = self._dirty_res
        self._dirty_res = {}
        self.stats["recomputes"] += 1
        if self._active and dirty:
            fids = self._component_fids(dirty)
            if fids:
                self._fill(fids)
        self._schedule_timer()

    def _component_fids(self, dirty: Iterable[LinkResource]) -> set[int]:
        """Flows in the connected component(s) reachable from the dirty
        resources over the flow/resource bipartite graph."""
        seen_res = set(dirty)
        stack = list(seen_res)
        fids: set[int] = set()
        res_flows = self._res_flows
        while stack:
            r = stack.pop()
            for fid, f in res_flows.get(r, {}).items():
                if fid not in fids:
                    fids.add(fid)
                    for r2 in f.resources:
                        if r2 not in seen_res:
                            seen_res.add(r2)
                            stack.append(r2)
        return fids

    def _fill(self, fids: set[int]) -> None:
        """Progressive-filling max-min allocation over one component.

        Bit-identical to a full recompute restricted to these flows:
        resources are visited in first-encounter order over flows in
        admission order, and each round's bottleneck is picked by the
        same strictly-smaller linear scan as the reference scheduler —
        just over the component's resources instead of the cluster's.

        (A lazy min-heap selection is tempting but wrong here: shares
        are monotone non-decreasing during filling only in exact
        arithmetic. In floats, ``(C - 2s)/1`` can round an ulp *below*
        ``C/3``, so a stale heap key is not a lower bound and the heap
        can freeze resources in a different order than the reference —
        breaking bit-identical rates.)
        """
        flows = [self._active[fid] for fid in sorted(fids)]
        self.stats["recomputed_flows"] += len(flows)

        users: dict[LinkResource, list[Flow]] = {}
        remaining_cap: dict[LinkResource, float] = {}
        counts: dict[LinkResource, int] = {}
        for f in flows:
            for r in f.resources:
                bucket = users.get(r)
                if bucket is None:
                    users[r] = [f]
                    remaining_cap[r] = r.capacity
                    counts[r] = 1
                else:
                    bucket.append(f)
                    counts[r] += 1

        unfrozen = set(fids)
        rounds = 0
        while unfrozen:
            bottleneck: LinkResource | None = None
            best_share = math.inf
            for r, cnt in counts.items():
                if cnt > 0:
                    share = max(remaining_cap[r], 0.0) / cnt
                    if share < best_share:
                        best_share = share
                        bottleneck = r
            if bottleneck is None:  # pragma: no cover - defensive
                break
            rounds += 1
            for f in users[bottleneck]:
                fid = f.fid
                if fid in unfrozen:
                    unfrozen.discard(fid)
                    f._rate = best_share
                    for r2 in f.resources:
                        remaining_cap[r2] -= best_share
                        counts[r2] -= 1
            counts[bottleneck] = 0
        for fid in unfrozen:  # pragma: no cover - defensive
            self._active[fid]._rate = 0.0
        self.stats["filling_rounds"] += rounds

    def _schedule_timer(self) -> None:
        horizon = math.inf
        for f in self._active.values():
            if f._rate > 0:
                h = f.remaining / f._rate
                if h < horizon:
                    horizon = h
        if not math.isfinite(horizon):
            self._cancel_timer()
            return
        fire = self.sim.now + max(horizon, 0.0)
        if self._timer is not None and self._timer_fire == fire:
            # Horizon unchanged: reuse the pending timer instead of
            # piling a dead entry onto the event heap.
            self.stats["timer_reuses"] += 1
            return
        self._cancel_timer()
        timer = self.sim.timeout(max(horizon, 0.0))
        timer._add_callback(self._on_timer)
        self._timer = timer
        self._timer_fire = fire
        self.stats["timer_pushes"] += 1

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
            self._timer_fire = math.inf

    def _on_timer(self, event: Event) -> None:
        if event is not self._timer:  # pragma: no cover - defensive
            return
        self._timer = None
        self._timer_fire = math.inf
        self._advance()
        self._complete_finished()
        if not self._dirty:
            # Nothing completed (floating-point residue fire): the
            # flush that would refresh the timer never runs, so refresh
            # it here from the advanced remainders.
            self._schedule_timer()
