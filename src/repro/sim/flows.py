"""Max-min fair bandwidth sharing for disks and network links.

Data movement in the cluster model is a *fluid* approximation: a
:class:`Flow` carries ``size`` bytes through an ordered set of
:class:`LinkResource` objects (source disk, source NIC egress,
destination NIC ingress, ...). At any instant every active flow
receives its **max-min fair** rate, computed by progressive filling:
repeatedly find the most-contended resource, freeze all its flows at
the equal share, subtract, and continue. Rates are recomputed whenever
a flow starts, finishes or is cancelled, and whenever a resource's
capacity changes — between such events all rates are constant, so flow
completions can be scheduled exactly.

This fluid model is standard in cluster simulators; it preserves the
qualitative behaviour the reproduction needs (disk-bound merging,
NIC-bound shuffles, contention slowdowns) without per-packet events.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterable

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Flow", "FlowCancelled", "FlowScheduler", "LinkResource"]

#: Relative tolerance for declaring a flow complete.
_EPS = 1e-9


class FlowCancelled(Exception):
    """Failure payload delivered to waiters of a cancelled flow."""

    def __init__(self, flow: "Flow", reason: str = "") -> None:
        super().__init__(reason or f"flow {flow.name} cancelled")
        self.flow = flow
        self.reason = reason


class LinkResource:
    """A capacity-limited bandwidth resource (bytes/second).

    One instance models one contended device direction: a disk's
    aggregate bandwidth, a NIC's egress, a NIC's ingress, etc.
    """

    __slots__ = ("name", "_capacity", "_scheduler")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"link capacity must be > 0, got {capacity}")
        self.name = name
        self._capacity = float(capacity)
        self._scheduler: "FlowScheduler | None" = None

    @property
    def capacity(self) -> float:
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change capacity at the current simulated time (e.g. a slow
        disk on a faulty node). Active flows are re-shared immediately.
        """
        if capacity <= 0:
            raise SimulationError(f"link capacity must be > 0, got {capacity}")
        self._capacity = float(capacity)
        if self._scheduler is not None:
            self._scheduler._reshare()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkResource {self.name} {self._capacity:.3g} B/s>"


class Flow:
    """An in-flight transfer of ``size`` bytes across resources."""

    __slots__ = ("name", "size", "remaining", "rate", "resources", "done", "_active", "_sched")

    def __init__(self, name: str, size: float, resources: tuple[LinkResource, ...], done: Event) -> None:
        self.name = name
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.resources = resources
        #: Event triggered when the transfer completes (value: the flow)
        #: or fails with :class:`FlowCancelled`.
        self.done = done
        self._active = True
        self._sched: "FlowScheduler | None" = None

    @property
    def transferred(self) -> float:
        """Bytes moved so far, accurate at the current simulated time."""
        remaining = self.remaining
        if self._active and self._sched is not None and self.rate > 0:
            dt = self._sched.sim.now - self._sched._last_update
            if dt > 0:
                remaining = max(0.0, remaining - self.rate * dt)
        return self.size - remaining

    @property
    def progress(self) -> float:
        return 1.0 if self.size == 0 else self.transferred / self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Flow {self.name} {self.remaining:.3g}/{self.size:.3g}B @{self.rate:.3g}B/s>"


class FlowScheduler:
    """Tracks active flows and keeps their max-min rates current."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._active: list[Flow] = []
        self._last_update = sim.now
        self._timer_version = 0
        self._names = itertools.count()

    @property
    def active_flows(self) -> tuple[Flow, ...]:
        return tuple(self._active)

    def transfer(
        self,
        size: float,
        resources: Iterable[LinkResource],
        name: str | None = None,
        rate_cap: float | None = None,
    ) -> Flow:
        """Start moving ``size`` bytes through ``resources``.

        ``rate_cap`` bounds this flow's own rate regardless of
        contention (e.g. a memory-to-memory copy limited by memcpy
        bandwidth); it is implemented as a private single-flow resource
        so the fairness computation stays uniform.
        """
        if size < 0:
            raise SimulationError(f"flow size must be >= 0, got {size}")
        res = tuple(resources)
        if rate_cap is not None:
            res = res + (LinkResource(f"cap-{name or next(self._names)}", rate_cap),)
        if not res:
            raise SimulationError("a flow needs at least one resource or a rate_cap")
        for r in res:
            if r._scheduler is None:
                r._scheduler = self
            elif r._scheduler is not self:
                raise SimulationError(f"{r!r} belongs to another FlowScheduler")
        done = self.sim.event()
        flow = Flow(name or f"flow-{next(self._names)}", size, res, done)
        flow._sched = self
        if size == 0:
            flow._active = False
            done.succeed(flow)
            return flow
        self._advance()
        self._active.append(flow)
        self._recompute()
        return flow

    def cancel(self, flow: Flow, reason: str = "") -> None:
        """Abort a flow; its ``done`` event fails with :class:`FlowCancelled`."""
        if not flow._active:
            return
        self._advance()
        flow._active = False
        self._active.remove(flow)
        exc = FlowCancelled(flow, reason)
        flow.done.defuse()
        flow.done.fail(exc)
        self._recompute()

    def cancel_flows_using(self, resource: LinkResource, reason: str = "") -> list[Flow]:
        """Cancel every active flow routed through ``resource`` (node death)."""
        victims = [f for f in self._active if resource in f.resources]
        for f in victims:
            self.cancel(f, reason)
        return victims

    # -- internals ---------------------------------------------------------
    def _advance(self) -> None:
        """Account progress made since the last rate change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for f in self._active:
            f.remaining = max(0.0, f.remaining - f.rate * dt)

    def _reshare(self) -> None:
        """Re-run fairness after an external capacity change."""
        self._advance()
        self._complete_finished()
        self._recompute()

    def _complete_finished(self) -> None:
        finished = [f for f in self._active if f.remaining <= _EPS * max(f.size, 1.0)]
        for f in finished:
            f.remaining = 0.0
            f._active = False
            self._active.remove(f)
        # Trigger completions after bookkeeping so callbacks observing the
        # scheduler see a consistent state.
        for f in finished:
            f.done.succeed(f)

    def _recompute(self) -> None:
        """Progressive-filling max-min allocation over active flows."""
        flows = self._active
        if not flows:
            return
        res_flows: dict[LinkResource, list[Flow]] = {}
        for f in flows:
            for r in f.resources:
                res_flows.setdefault(r, []).append(f)
        remaining_cap = {r: r.capacity for r in res_flows}
        unfrozen_count = {r: len(fl) for r, fl in res_flows.items()}
        unfrozen = set(map(id, flows))
        rate: dict[int, float] = {}

        while unfrozen:
            bottleneck: LinkResource | None = None
            best_share = math.inf
            for r, cnt in unfrozen_count.items():
                if cnt > 0:
                    share = max(remaining_cap[r], 0.0) / cnt
                    if share < best_share:
                        best_share = share
                        bottleneck = r
            if bottleneck is None:  # pragma: no cover - defensive
                break
            for f in res_flows[bottleneck]:
                if id(f) in unfrozen:
                    unfrozen.discard(id(f))
                    rate[id(f)] = best_share
                    for r2 in f.resources:
                        remaining_cap[r2] -= best_share
                        unfrozen_count[r2] -= 1
            unfrozen_count[bottleneck] = 0

        for f in flows:
            f.rate = rate.get(id(f), 0.0)
        self._schedule_timer()

    def _schedule_timer(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        horizon = math.inf
        for f in self._active:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if not math.isfinite(horizon):
            return

        def fire(_event: Event) -> None:
            if version != self._timer_version:
                return
            self._advance()
            self._complete_finished()
            self._recompute()

        self.sim.timeout(max(horizon, 0.0))._add_callback(fire)
