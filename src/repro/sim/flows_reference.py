"""Reference (eager, full-recompute) max-min flow scheduler.

This is the seed implementation of :class:`~repro.sim.flows.FlowScheduler`
kept verbatim as an executable specification: every flow start, finish,
cancel or capacity change runs one progressive-filling pass over *all*
active flows with a linear bottleneck scan, and every recompute pushes a
fresh (version-checked) completion timer onto the event heap.

It exists for two jobs:

- **Equivalence testing.** The incremental/coalesced scheduler must
  produce bit-identical rates, completion times and experiment trace
  digests. ``REPRO_SCHEDULER=reference`` makes :class:`~repro.cluster.Cluster`
  use this class so whole seeded experiments can be diffed end-to-end.
- **Benchmarking.** ``benchmarks/bench_flow_scheduler.py`` reports
  events/sec before (this class) vs. after (the incremental one).

It shares :class:`~repro.sim.flows.Flow`, ``LinkResource`` and
``FlowCancelled`` with the production module, so model code cannot tell
the schedulers apart; it also mirrors the batch API (``transfer_many``,
``cancel_many``, iterable ``cancel_flows_using``, ``batch()``) by
degrading each to the seed's sequential per-operation behaviour.
"""

from __future__ import annotations

import itertools
import math
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.sim.core import Event, SimulationError, Simulator
from repro.sim.flows import _EPS, Flow, FlowCancelled, LinkResource

__all__ = ["ReferenceFlowScheduler"]


class ReferenceFlowScheduler:
    """Eager full-recompute scheduler (the seed implementation)."""

    #: The production scheduler defers recomputes behind this flag and
    #: ``Flow.rate`` consults it; the reference never defers.
    _dirty = False

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._active: list[Flow] = []
        self._last_update = sim.now
        self._timer_version = 0
        self._names = itertools.count()
        self._next_fid = 0
        #: Completion hook, mirrored from the production scheduler so
        #: the ``flow_done`` trace kind fires identically here.
        self.on_complete = None
        self.stats = {
            "transfers": 0,
            "cancels": 0,
            "completions": 0,
            "recomputes": 0,
            "recomputed_flows": 0,
            "filling_rounds": 0,
            "timer_pushes": 0,
            "timer_reuses": 0,
            "column_ops": 0,
        }

    @property
    def active_flows(self) -> tuple[Flow, ...]:
        return tuple(self._active)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def total_transferred(self) -> float:
        """See ``FlowScheduler.total_transferred`` — same single-pass
        bulk read, bit-identical to summing ``Flow.transferred``."""
        dt = self.sim.now - self._last_update
        total = 0.0
        if dt > 0:
            for f in self._active:
                remaining = f.remaining
                if f._rate > 0:
                    remaining = max(0.0, remaining - f._rate * dt)
                total += f.size - remaining
        else:
            for f in self._active:
                total += f.size - f.remaining
        return total

    # -- public API --------------------------------------------------------
    def transfer(
        self,
        size: float,
        resources: Iterable[LinkResource],
        name: str | None = None,
        rate_cap: float | None = None,
    ) -> Flow:
        if size < 0:
            raise SimulationError(f"flow size must be >= 0, got {size}")
        res = tuple(dict.fromkeys(resources))
        if rate_cap is not None:
            res = res + (LinkResource(f"cap-{name or next(self._names)}", rate_cap),)
        if not res:
            raise SimulationError("a flow needs at least one resource or a rate_cap")
        for r in res:
            if r._scheduler is None:
                r._scheduler = self
            elif r._scheduler is not self:
                raise SimulationError(f"{r!r} belongs to another FlowScheduler")
        done = self.sim.event()
        flow = Flow(name or f"flow-{next(self._names)}", size, res, done)
        flow._sched = self
        if size == 0:
            flow._active = False
            done.succeed(flow)
            return flow
        self._advance()
        flow.fid = self._next_fid
        self._next_fid += 1
        self._active.append(flow)
        self._recompute()
        self.stats["transfers"] += 1
        return flow

    def transfer_many(self, requests: Iterable[dict]) -> list[Flow]:
        return [self.transfer(**req) for req in requests]

    def cancel(self, flow: Flow, reason: str = "") -> None:
        if not flow._active:
            return
        self._advance()
        flow._active = False
        self._active.remove(flow)
        exc = FlowCancelled(flow, reason)
        flow.done.defuse()
        flow.done.fail(exc)
        self._recompute()
        self.stats["cancels"] += 1

    def cancel_many(self, flows: Iterable[Flow], reason: str = "") -> list[Flow]:
        victims = [f for f in flows if f._active]
        for f in victims:
            self.cancel(f, reason)
        return victims

    def cancel_flows_using(self, resources, reason: str = "") -> list[Flow]:
        if isinstance(resources, LinkResource):
            resources = (resources,)
        all_victims: list[Flow] = []
        # The seed behaviour: one sequential cancel sweep per resource,
        # each victim paying its own advance + full recompute.
        for resource in resources:
            victims = [f for f in self._active if resource in f.resources]
            for f in victims:
                self.cancel(f, reason)
            all_victims.extend(victims)
        return all_victims

    @contextmanager
    def batch(self) -> Iterator["ReferenceFlowScheduler"]:
        yield self

    # -- internals ---------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for f in self._active:
            f.remaining = max(0.0, f.remaining - f._rate * dt)

    def _reshare(self, resource: LinkResource | None = None) -> None:
        self._advance()
        self._complete_finished()
        self._recompute()

    def _complete_finished(self) -> None:
        finished = [f for f in self._active
                    if f.remaining <= _EPS * max(f.size, 1.0)]
        for f in finished:
            f.remaining = 0.0
            f._active = False
            self._active.remove(f)
        hook = self.on_complete
        for f in finished:
            if hook is not None:
                hook(f)
            f.done.succeed(f)
        self.stats["completions"] += len(finished)

    def _recompute(self) -> None:
        """Progressive-filling max-min allocation over *all* active flows."""
        flows = self._active
        if not flows:
            return
        self.stats["recomputes"] += 1
        self.stats["recomputed_flows"] += len(flows)
        res_flows: dict[LinkResource, list[Flow]] = {}
        for f in flows:
            for r in f.resources:
                res_flows.setdefault(r, []).append(f)
        remaining_cap = {r: r.capacity for r in res_flows}
        unfrozen_count = {r: len(fl) for r, fl in res_flows.items()}
        unfrozen = set(f.fid for f in flows)
        rate: dict[int, float] = {}

        while unfrozen:
            bottleneck: LinkResource | None = None
            best_share = math.inf
            for r, cnt in unfrozen_count.items():
                if cnt > 0:
                    share = max(remaining_cap[r], 0.0) / cnt
                    if share < best_share:
                        best_share = share
                        bottleneck = r
            if bottleneck is None:  # pragma: no cover - defensive
                break
            self.stats["filling_rounds"] += 1
            for f in res_flows[bottleneck]:
                if f.fid in unfrozen:
                    unfrozen.discard(f.fid)
                    rate[f.fid] = best_share
                    for r2 in f.resources:
                        remaining_cap[r2] -= best_share
                        unfrozen_count[r2] -= 1
            unfrozen_count[bottleneck] = 0

        for f in flows:
            f._rate = rate.get(f.fid, 0.0)
        self._schedule_timer()

    def _schedule_timer(self) -> None:
        self._timer_version += 1
        version = self._timer_version
        horizon = math.inf
        for f in self._active:
            if f._rate > 0:
                horizon = min(horizon, f.remaining / f._rate)
        if not math.isfinite(horizon):
            return

        def fire(_event: Event) -> None:
            if version != self._timer_version:
                return
            self._advance()
            self._complete_finished()
            self._recompute()

        self.sim.timeout(max(horizon, 0.0))._add_callback(fire)
        self.stats["timer_pushes"] += 1
