"""Queueing resources for the simulation kernel.

:class:`Resource` is a counting semaphore with FIFO (optionally
prioritised) granting; :class:`Store` is an unbounded FIFO of Python
objects with blocking ``get``. Both hand out plain :class:`Event`
objects, so model processes simply ``yield`` the result of
``request()`` / ``get()``.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.sim.core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counting resource with ``capacity`` identical slots.

    ``request(priority=...)`` returns an event that triggers when a
    slot is granted (lower priority value first, FIFO within equal
    priority). The holder must call ``release()`` exactly once per
    granted request. Pending (ungranted) requests can be ``cancel``-ed.
    """

    def __init__(self, sim: Simulator, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._seq = 0
        self._waiting: list[tuple[float, int, Event]] = []
        self._cancelled: set[int] = set()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queued(self) -> int:
        return sum(
            1
            for _, _, ev in self._waiting
            if not ev.triggered and id(ev) not in self._cancelled
        )

    def request(self, priority: float = 0.0) -> Event:
        ev = self.sim.event()
        if self.in_use < self.capacity and not self._waiting:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._seq += 1
            heapq.heappush(self._waiting, (priority, self._seq, ev))
            self._grant()
        return ev

    def cancel(self, request: Event) -> None:
        """Withdraw a not-yet-granted request (no-op if already granted).

        Removal is lazy: the request is skipped when it reaches the head
        of the wait queue, so ``cancel`` is O(1).
        """
        if not request.triggered:
            self._cancelled.add(id(request))

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without a matching grant")
        self.in_use -= 1
        self._grant()

    def _grant(self) -> None:
        while self._waiting and self.in_use < self.capacity:
            _, _, ev = heapq.heappop(self._waiting)
            if ev.triggered or id(ev) in self._cancelled:
                self._cancelled.discard(id(ev))
                continue
            self.in_use += 1
            ev.succeed(self)


class Store:
    """Unbounded FIFO store of arbitrary items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            ev = self._getters.pop(0)
            if ev.triggered:
                continue
            ev.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.pop(0))
        else:
            self._getters.append(ev)
        return ev
