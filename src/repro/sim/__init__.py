"""Discrete-event simulation kernel.

A compact, dependency-free engine in the style of SimPy: a
:class:`~repro.sim.core.Simulator` drives generator-based
:class:`~repro.sim.core.Process` coroutines that yield
:class:`~repro.sim.core.Event` objects (timeouts, conditions, other
processes). On top of the kernel sit counting resources, FIFO stores
(:mod:`repro.sim.resources`) and a max-min fair bandwidth allocator
(:mod:`repro.sim.flows`) used to model disks and network links.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.flows import Flow, FlowScheduler, LinkResource
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Flow",
    "FlowScheduler",
    "Interrupt",
    "LinkResource",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
