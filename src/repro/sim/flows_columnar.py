"""Columnar max-min flow scheduler: vectorized progressive filling.

:class:`ColumnarFlowScheduler` keeps per-flow ``remaining``/``rate``
state in :class:`~repro.sim.columns.FlowColumns` instead of on the
``Flow`` objects, so the per-instant hot loops — progress advance,
completion scan, timer horizon, and the progressive-filling refill
itself — are single numpy passes over the flow population rather than
per-object python loops. At shuffle-wave scale (thousands of concurrent
flows per instant) this is where the model spends its time once the
kernel and node plane are columnar.

Bit-identity contract (the same one the incremental scheduler pins
against the eager reference, DESIGN.md §13):

- **Same arithmetic, elementwise.** Every vectorized expression is the
  exact float expression the scalar loops evaluate per flow
  (`max(0.0, rem - rate*dt)`, `max(cap, 0.0)/cnt`, `rem/rate`), and
  IEEE float ops are elementwise-deterministic, so columns hold the
  same bits the object attributes would.
- **Same fill order.** Flows enter the fill in fid (admission) order,
  resources in first-encounter order over that flow order, and each
  round's bottleneck is ``np.argmin`` — the *first* strict minimum,
  exactly the scalar linear scan's tie-break. Freeze-round capacity
  subtractions are applied in the scalar's flow-major edge order.
- **Conservative components.** Resource connectivity is tracked with a
  union-find that only ever merges (never splits), so a refill may
  cover a *superset* of the true dirty component. Max-min filling
  decomposes across connected components — a merged fill executes each
  true component's round sequence unchanged, interleaved — so the
  extra coverage re-derives identical rates (§13 gives the argument).
  Only the ``filling_rounds``/``recomputed_flows`` counters can differ
  from the incremental scheduler; no rate, completion time, or trace
  byte does.
- **Same completion order.** The completion scan yields slots in
  arbitrary (LIFO-reuse) slot order, so finishers are sorted by fid
  before bookkeeping/succeed — the admission order the scalar
  scheduler's insertion-ordered dict walks naturally.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.columns import FlowColumns
from repro.sim.core import Simulator
from repro.sim.flows import _EPS, Flow, FlowScheduler, LinkResource

__all__ = ["ColumnarFlowScheduler"]


class ColumnarFlowScheduler(FlowScheduler):
    """Incremental scheduler with column-resident flow state."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim)
        self.columns = FlowColumns()
        #: dense rid -> LinkResource, validates stale ``_rid`` tags.
        self._rid_res: list[LinkResource] = []
        self._next_rid = 0
        #: dense rid -> current capacity (refreshed on set_capacity).
        self._rid_cap = np.zeros(64)
        #: union-find parent over rids; merges only, never splits.
        self._uf_parent = np.zeros(64, dtype="i8")

    # -- resource registry / components ------------------------------------
    def _register_rid(self, r: LinkResource) -> int:
        rid = r._rid
        if 0 <= rid < self._next_rid and self._rid_res[rid] is r:
            return rid
        rid = self._next_rid
        self._next_rid += 1
        r._rid = rid
        self._rid_res.append(r)
        if rid >= len(self._rid_cap):
            new_cap = max(len(self._rid_cap) * 2, rid + 1)
            grown = np.zeros(new_cap)
            grown[: len(self._rid_cap)] = self._rid_cap
            self._rid_cap = grown
            grown_p = np.zeros(new_cap, dtype="i8")
            grown_p[: len(self._uf_parent)] = self._uf_parent
            self._uf_parent = grown_p
        self._rid_cap[rid] = r.capacity
        self._uf_parent[rid] = rid
        return rid

    def _find(self, x: int) -> int:
        parent = self._uf_parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def _resolve_roots(self, comp: np.ndarray) -> np.ndarray:
        """Vectorized find for an array of component labels, with
        write-back path compression."""
        parent = self._uf_parent
        cur = parent[comp]
        while True:
            nxt = parent[cur]
            if np.array_equal(nxt, cur):
                break
            cur = nxt
        parent[comp] = cur
        return cur

    def _attach(self, flow: Flow) -> None:
        cols = self.columns
        rids = [self._register_rid(r) for r in flow.resources]
        root = self._find(rids[0])
        for rid in rids[1:]:
            r2 = self._find(rid)
            if r2 != root:
                self._uf_parent[r2] = root
        deg = len(rids)
        cols.ensure_degree(deg)
        slot = cols.alloc(remaining=flow.remaining, rate=0.0, size=flow.size,
                          fid=flow.fid, comp=root, deg=deg)
        row = cols.rids[slot]
        row[:deg] = rids
        row[deg:] = -1
        flow._cols = cols
        flow._slot = slot

    # -- public API ---------------------------------------------------------
    def transfer(self, size, resources, name=None, rate_cap=None):
        flow = super().transfer(size, resources, name=name, rate_cap=rate_cap)
        if flow._active:
            self._attach(flow)
        return flow

    def total_transferred(self) -> float:
        cols = self.columns
        n = cols.size
        if n == 0 or not self._active:
            return 0.0
        slots = np.flatnonzero(cols.used[:n])
        order = np.argsort(cols.col("fid")[slots])
        slots = slots[order]
        rem = cols.col("remaining")[slots]
        size = cols.col("size")[slots]
        dt = self.sim.now - self._last_update
        if dt > 0:
            rate = cols.col("rate")[slots]
            rem = np.where(rate > 0, np.maximum(rem - rate * dt, 0.0), rem)
        # Accumulate sequentially in admission order: np.sum is pairwise
        # and would round differently from the scalar schedulers' loop.
        total = 0.0
        for moved in (size - rem).tolist():
            total += moved
        return total

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        cols = self.columns
        n = cols.size
        if n:
            rem = cols.col("remaining")
            rate = cols.col("rate")
            # Stale (freed) cells are advanced too — harmless, they are
            # never read without the used mask and realloc zero-fills.
            np.maximum(rem[:n] - rate[:n] * dt, 0.0, out=rem[:n])
            self.stats["column_ops"] += 1

    def _remove(self, flow: Flow) -> None:
        cols = flow._cols
        if cols is not None:
            slot = flow._slot
            flow.remaining = float(cols.col("remaining")[slot])
            flow._rate = float(cols.col("rate")[slot])
            flow._cols = None
            flow._slot = -1
            cols.free(slot)
        super()._remove(flow)

    def _reshare(self, resource: LinkResource | None = None) -> None:
        if resource is not None:
            rid = resource._rid
            if 0 <= rid < self._next_rid and self._rid_res[rid] is resource:
                self._rid_cap[rid] = resource.capacity
        super()._reshare(resource)

    def _complete_finished(self) -> None:
        cols = self.columns
        n = cols.size
        if n == 0:
            return
        rem = cols.col("remaining")[:n]
        size = cols.col("size")[:n]
        mask = cols.used[:n] & (rem <= _EPS * np.maximum(size, 1.0))
        self.stats["column_ops"] += 1
        if not mask.any():
            return
        fids = np.sort(cols.col("fid")[:n][mask])
        finished = [self._active[fid] for fid in fids.tolist()]
        # Bookkeeping before completions, in admission order — exactly
        # the scalar scheduler's insertion-ordered walk.
        for f in finished:
            f._cols.col("remaining")[f._slot] = 0.0
            self._remove(f)
        hook = self.on_complete
        for f in finished:
            if hook is not None:
                hook(f)
            f.done.succeed(f)
        self.stats["completions"] += len(finished)

    def _flush(self) -> None:
        self._dirty = False
        dirty = self._dirty_res
        self._dirty_res = {}
        self.stats["recomputes"] += 1
        if self._active and dirty:
            slots = self._dirty_slots(dirty)
            if slots is not None and len(slots):
                self._fill_columns(slots)
        self._schedule_timer()

    def _dirty_slots(self, dirty) -> np.ndarray | None:
        """Slots of every flow in the union-find component(s) of the
        dirty resources — a conservative superset of the true dirty
        component (see the module docstring for why that is exact)."""
        cols = self.columns
        n = cols.size
        if n == 0:
            return None
        droots = []
        for r in dirty:
            rid = r._rid
            if 0 <= rid < self._next_rid and self._rid_res[rid] is r:
                droots.append(self._find(rid))
        if not droots:
            return None
        droots = np.unique(np.asarray(droots, dtype="i8"))
        roots = self._resolve_roots(cols.col("comp")[:n])
        mask = cols.used[:n] & np.isin(roots, droots)
        self.stats["column_ops"] += 1
        return np.flatnonzero(mask)

    def _fill_columns(self, slots: np.ndarray) -> None:
        """Vectorized progressive filling over one component slice.

        Mirrors ``FlowScheduler._fill`` round for round: same flow
        order (fid-sorted), same resource first-encounter order, same
        first-strict-minimum bottleneck, same flow-major subtraction
        order within a freeze round.
        """
        cols = self.columns
        order = np.argsort(cols.col("fid")[slots])
        slots = slots[order]
        n = len(slots)
        self.stats["recomputed_flows"] += n
        self.stats["column_ops"] += 1

        deg = cols.col("deg")[slots].astype("i8")
        width = int(deg.max())
        rmat = cols.rids[slots, :width]
        emask = np.arange(width) < deg[:, None]
        e_rid = rmat[emask]                       # flow-major edge list
        e_flow = np.repeat(np.arange(n), deg)
        uniq, first_idx, inv = np.unique(e_rid, return_index=True,
                                         return_inverse=True)
        num_res = len(uniq)
        enc = np.argsort(first_idx, kind="stable")  # first-encounter order
        rank = np.empty(num_res, dtype="i8")
        rank[enc] = np.arange(num_res)
        e_local = rank[inv]
        rcap = self._rid_cap[uniq[enc]].copy()
        cnt = np.bincount(e_local, minlength=num_res)

        frate = np.zeros(n)
        unfrozen = np.ones(n, dtype=bool)
        fsel = np.empty(n, dtype=bool)
        rounds = 0
        share = np.empty(num_res)
        while unfrozen.any():
            active = cnt > 0
            if not active.any():  # pragma: no cover - defensive
                break
            share.fill(math.inf)
            np.divide(np.maximum(rcap, 0.0), cnt, out=share, where=active)
            b = int(np.argmin(share))             # first strict minimum
            best = share[b]
            rounds += 1
            fb = e_flow[e_local == b]
            fb = fb[unfrozen[fb]]
            if len(fb):
                unfrozen[fb] = False
                frate[fb] = best
                fsel.fill(False)
                fsel[fb] = True
                rs = e_local[fsel[e_flow]]        # scalar's flow-major order
                np.subtract.at(rcap, rs, best)
                np.subtract.at(cnt, rs, 1)
            cnt[b] = 0
        cols.col("rate")[slots] = frate
        self.stats["filling_rounds"] += rounds

    def _schedule_timer(self) -> None:
        cols = self.columns
        n = cols.size
        horizon = math.inf
        if n:
            rate = cols.col("rate")[:n]
            mask = cols.used[:n] & (rate > 0)
            self.stats["column_ops"] += 1
            if mask.any():
                rem = cols.col("remaining")[:n]
                horizon = float(np.min(rem[mask] / rate[mask]))
        if not math.isfinite(horizon):
            self._cancel_timer()
            return
        fire = self.sim.now + max(horizon, 0.0)
        if self._timer is not None and self._timer_fire == fire:
            self.stats["timer_reuses"] += 1
            return
        self._cancel_timer()
        timer = self.sim.timeout(max(horizon, 0.0))
        timer._add_callback(self._on_timer)
        self._timer = timer
        self._timer_fire = fire
        self.stats["timer_pushes"] += 1
