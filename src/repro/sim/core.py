"""Core discrete-event simulation engine.

The engine follows the classic event-list design: a binary heap of
``(time, priority, sequence, event)`` tuples, popped in order. Model
code is written as generator coroutines wrapped in :class:`Process`;
each ``yield``ed :class:`Event` suspends the process until the event is
processed, at which point the event's value is sent back into the
generator (or its exception thrown into it).

Only simulation-domain concepts live here; bandwidth sharing and
resources are layered on top in sibling modules.

Hot-path design (the kernel is where large simulations spend their
time once the flow scheduler is incremental):

- **Timeout pooling** — processed :class:`Timeout` objects are recycled
  through a per-simulator free list instead of being garbage. An object
  is only recycled when a refcount check proves nothing outside the
  kernel still holds it, so model code that keeps a reference to a
  timeout (to re-wait it, to inspect ``cancelled``) is never aliased.
- **``Simulator.periodic``** — a dedicated wakeup path for fixed-interval
  daemons (heartbeats, samplers, logging ticks). One reusable heap
  entry per daemon replaces a generator frame plus a fresh ``Timeout``
  per tick, while scheduling with the exact sequence-number pattern the
  equivalent generator loop would produce (same-instant ordering, and
  therefore seeded trace digests, are unchanged).
- **Stale-entry compaction** — cancelled timeouts use lazy deletion
  (binary heaps cannot remove arbitrary entries); when stale entries
  exceed half the heap the kernel rebuilds it in place, bounding the
  memory and pop-cost of cancel-heavy workloads.
- **Locals-bound run loop** — :meth:`Simulator.run` binds the heap and
  ``heappop`` to locals and inlines :meth:`Simulator.step`.

Set ``REPRO_KERNEL=reference`` to construct simulators with pooling
disabled and ``periodic`` falling back to a plain generator loop — the
pre-optimisation behaviour, kept as an equivalence oracle (mirroring
``REPRO_SCHEDULER=reference`` for the flow scheduler).
"""

from __future__ import annotations

import heapq
import os
import sys
from collections.abc import Callable, Generator, Iterable
from heapq import heapify, heappop, heappush, heapreplace
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Periodic",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for high-urgency events (process interrupts).
URGENT = 0


def _reference_kernel() -> bool:
    """Whether new simulators should run in reference (unpooled) mode."""
    return os.environ.get("REPRO_KERNEL", "") == "reference"


def _impure_tick(event: "Periodic") -> "SimulationError":
    return SimulationError(
        f"pure periodic {event.name!r} scheduled an event during its tick — "
        "drop pure=True or make the callback pure"
    )


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence at a point in simulated time.

    Events move through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the event list with a value or
    an exception) and *processed* (callbacks have run). Processes wait
    on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed", "_defused")

    #: Class-level default consulted by the run loop's single-load fast
    #: check; only a started, uncancelled pure Periodic overrides it
    #: (via its ``_fast`` slot) to claim the root-replace tick path.
    _fast = False

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value/exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event was triggered successfully."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value is not available until the event triggers")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        If no process ever waits on the failed event and it is not
        :meth:`defused <defuse>`, the exception propagates out of
        :meth:`Simulator.run` — silent failures are bugs.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(self, NORMAL, 0.0)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    # -- callback plumbing -------------------------------------------------
    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            cb(self)
        else:
            self.callbacks.append(cb)

    def _remove_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and cb in self.callbacks:
            self.callbacks.remove(cb)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks or ():
            cb(self)
        if self._exc is not None and not callbacks and not self._defused:
            raise self._exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


#: References a freshly processed, unaliased Timeout has when the pool
#: check runs: the run-loop local, ``self`` in ``_process`` and the
#: ``getrefcount`` argument itself. Anything above this means model code
#: still holds the object and it must not be recycled.
_POOLABLE_REFS = 3


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    A pending timeout can be :meth:`cancel`\\ led; the heap entry stays
    (binary heaps cannot delete arbitrary entries) but is discarded
    without running callbacks when popped. This is what lets the flow
    scheduler keep exactly one live completion timer instead of
    accumulating thousands of version-dead entries.

    Processed timeouts are recycled through :attr:`Simulator._free_timeouts`
    when a refcount check shows no model code still references them —
    the per-wakeup allocation that used to dominate heartbeat-heavy
    workloads becomes a pop+reset.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._cancelled = False
        self._triggered = True
        self._value = value
        sim._schedule(self, NORMAL, delay)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Deactivate the timeout: callbacks will never run.

        Cancelling an already-processed timeout is a no-op.
        """
        if self._cancelled or self._processed:
            return
        self._cancelled = True
        if self.sim._pooling:
            self.sim._note_stale()

    def _process(self) -> None:
        sim = self.sim
        if self._cancelled:
            self.callbacks = None
            self._processed = True
            if sim._pooling:
                sim._stale -= 1
        else:
            callbacks, self.callbacks = self.callbacks, None
            self._processed = True
            for cb in callbacks or ():
                cb(self)
            if self._exc is not None and not callbacks and not self._defused:
                raise self._exc
        # Recycle only when provably unaliased (see _POOLABLE_REFS).
        if sim._pooling and sys.getrefcount(self) <= _POOLABLE_REFS:
            sim._free_timeouts.append(self)

    def _reset(self, delay: float, value: Any) -> None:
        """Re-arm a pooled instance as if freshly constructed."""
        self.callbacks = []
        self._value = value
        self._exc = None
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        self._cancelled = False
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now + delay, NORMAL, seq, self))


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._triggered = True
        sim._schedule(self, URGENT, 0.0)


class _InterruptEvent(Event):
    """Internal event that throws :class:`Interrupt` into a process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process", cause: Any) -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._triggered = True
        self._exc = Interrupt(cause)
        self._defused = True
        sim._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running generator coroutine; also an event that triggers when
    the generator returns (value = return value) or raises.
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str | None = None) -> None:
        if not hasattr(gen, "throw"):
            raise SimulationError(f"{gen!r} is not a generator")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: The event this process is currently waiting on, if any.
        self._target: Event | None = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        first (the event may still trigger, but will not resume this
        process for that wait).
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        _InterruptEvent(self.sim, self, cause)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # Process already ended (e.g. interrupt raced with completion).
            return
        # Detach from the current target; an interrupt may arrive while we
        # are still registered on another event.
        if self._target is not None and self._target is not event:
            self._target._remove_callback(self._resume)
            if not self._target.callbacks:
                # Abandoned with no other listeners: a later failure of
                # this event is expected fallout (e.g. flows cancelled
                # during cleanup), not an unhandled error.
                self._target._defused = True
        self._target = None

        self.sim._active_process = self
        try:
            if event._exc is not None:
                event._defused = True
                next_ev = self.gen.throw(event._exc)
            else:
                next_ev = self.gen.send(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._triggered = True
            self._value = stop.value
            self.sim._schedule(self, NORMAL, 0.0)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._triggered = True
            self._exc = exc
            self.sim._schedule(self, NORMAL, 0.0)
            return
        self.sim._active_process = None

        if not isinstance(next_ev, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_ev!r}"
            )
        if next_ev.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._target = next_ev
        next_ev._add_callback(self._resume)


class Periodic(Event):
    """A reusable fixed-interval wakeup: calls ``fn()`` every
    ``interval`` simulated seconds until ``fn`` returns ``False`` or
    :meth:`cancel` is called.

    One heap entry is reused for the daemon's whole life — no generator
    frame, no per-tick :class:`Timeout`. Scheduling mirrors the
    equivalent generator loop exactly: construction takes the urgent
    zero-delay slot an :class:`Initialize` would, the first tick's entry
    is pushed while that slot is processed (where the loop's first
    ``yield timeout`` would run), and each later tick re-pushes *after*
    ``fn`` runs (where the loop body would create its next timeout). The
    same sequence numbers are claimed at the same instants, so
    same-instant event ordering — and with it seeded trace digests — is
    identical across the two representations.

    With ``immediate=True``, ``fn`` also runs at the start instant (the
    generator-loop shape whose body precedes its first ``yield``).

    With ``pure=True`` the caller promises ``fn`` never creates or
    triggers events (heartbeat-style field updates only). The run loop
    then ticks such a periodic by *replacing* the heap root in place —
    one sift instead of a pop + push, and no ``_process`` dispatch. The
    promise is enforced: a pure ``fn`` that allocates an event sequence
    number raises ``SimulationError`` at the offending tick. Purity
    cannot change scheduling order (the fn has nothing to order
    against), so it is a pure speed knob.

    A ``Periodic`` is not waitable — it triggers nothing and carries no
    value; use a process for anything that needs to observe completion.
    """

    __slots__ = ("interval", "fn", "name", "pure", "_fast",
                 "_immediate", "_started", "_cancelled")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any], immediate: bool = False,
                 pure: bool = False, name: str | None = None) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive: {interval}")
        super().__init__(sim)
        self.callbacks = None  # never waitable
        self.interval = interval
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "periodic")
        self.pure = pure
        self._fast = False
        self._immediate = immediate
        self._started = False
        self._cancelled = False
        self._triggered = True
        sim._schedule(self, URGENT, 0.0)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the wakeups; the pending heap entry is lazily discarded."""
        self._cancelled = True
        if self._fast:
            self._fast = False
            self.sim._nfast -= 1

    def _process(self) -> None:
        # The run loop short-circuits started pure periodics before they
        # are popped; this pop-based path handles everything else (the
        # start slot, non-pure ticks, cancelled discards, step()-driven
        # tests) with identical sequence-number allocation.
        if self._cancelled:
            self._processed = True
            return
        if not self._started:
            # The Initialize-equivalent slot: claim the first tick's
            # sequence number here, run fn only if the loop shape would.
            self._started = True
            if self._immediate and self.fn() is False:
                self._processed = True
                return
            # Started, live, pure: from now on the run loop may tick
            # this event via the root-replace / batch fast paths.
            if self.pure:
                self._fast = True
                self.sim._nfast += 1
        elif self.fn() is False:
            self._processed = True
            if self._fast:
                self._fast = False
                self.sim._nfast -= 1
            return
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now + self.interval, NORMAL, seq, self))


class _GeneratorPeriodic:
    """Reference-kernel stand-in for :class:`Periodic`: the plain
    generator-loop representation, with the same ``cancel()`` surface."""

    __slots__ = ("process", "_cancelled")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any], immediate: bool, name: str | None) -> None:
        self._cancelled = False

        def _loop():
            if immediate and fn() is False:
                return
            while True:
                yield sim.timeout(interval)
                if self._cancelled or fn() is False:
                    return

        self.process = sim.process(_loop(), name=name or getattr(fn, "__name__", "periodic"))

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True


class Condition(Event):
    """Base for composite events over a fixed set of child events.

    Once the condition triggers it detaches its callback from every
    still-untriggered child, and defuses children left with no other
    listener: a loser of a decided :class:`AnyOf` (or the stragglers of
    a failed-fast :class:`AllOf`) that later fails is abandoned fallout,
    not an unhandled error escaping :meth:`Simulator.run` — and the
    condition no longer pins a callback reference on every loser.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all condition events must share one simulator")
        self._remaining = len(self.events)
        if not self.events:
            self._on_empty()
            return
        for ev in self.events:
            ev._add_callback(self._check)

    def _abandon_rest(self) -> None:
        """Unsubscribe from children that have not triggered yet."""
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is None or ev._triggered:
                continue
            if self._check in cbs:
                cbs.remove(self._check)
            if not cbs:
                ev._defused = True

    def _on_empty(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when every child event has triggered; value is the list
    of child values in their original order. Fails fast if any child
    fails.

    ``AllOf([])`` is vacuously satisfied and succeeds immediately with
    an empty value list — "wait for all of nothing" is a completed wait.
    """

    __slots__ = ()

    def _on_empty(self) -> None:
        self.succeed([])

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            self._abandon_rest()
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(Condition):
    """Triggers when the first child event triggers; value is that
    child's value. Fails if the first child to trigger fails.

    ``AnyOf([])`` raises :class:`SimulationError`: none of zero events
    can ever trigger, and succeeding immediately (the old behaviour)
    silently masked callers that built an empty child list by mistake.
    """

    __slots__ = ()

    def _on_empty(self) -> None:
        raise SimulationError(
            "AnyOf requires at least one event: an empty AnyOf can never trigger"
        )

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        else:
            self.succeed(event._value)
        self._abandon_rest()


class Simulator:
    """Owns simulated time and the pending-event heap."""

    # The run loop stores _now/_seq once per event; slot storage keeps
    # those off a dict lookup.
    __slots__ = ("_now", "_heap", "_seq", "_active_process",
                 "_free_timeouts", "_stale", "_pooling", "_nfast",
                 "_batch_abort")

    #: Compaction threshold: rebuild the heap once at least this many
    #: cancelled timeouts are buried in it *and* they outnumber the live
    #: entries. Small heaps are never worth rebuilding.
    COMPACT_MIN_STALE = 64

    #: Batch-tick threshold: the same-instant batch path (one heap scan
    #: + one heapify per instant instead of one heapreplace sift per
    #: tick) engages only when at least this many started pure periodics
    #: are live *and* they make up at least half the heap — otherwise
    #: the scan would cost more than the sifts it saves.
    BATCH_MIN_FAST = 32

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        #: Free list of processed, unaliased Timeout objects.
        self._free_timeouts: list[Timeout] = []
        #: Cancelled-but-still-heaped timeout count (lazy deletion debt).
        self._stale = 0
        self._pooling = not _reference_kernel()
        #: Live started-pure-periodic count; gates the batch tick path.
        self._nfast = 0
        #: Instant whose batch tick aborted (an impure event shares it).
        #: Every later event at this instant skips the batch attempt:
        #: without this, each of an n-member cohort retries the O(heap)
        #: scan only to hit the same abort — O(n^2) per shared instant.
        #: Time is monotonic, so a stale value can never match again;
        #: events appended mid-instant see the abort already cached.
        self._batch_abort = -1.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        free = self._free_timeouts
        if free and delay >= 0:
            t = free.pop()
            t._reset(delay, value)
            return t
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start running ``gen`` as a process at the current time."""
        return Process(self, gen, name=name)

    def periodic(self, interval: float, fn: Callable[[], Any],
                 immediate: bool = False, pure: bool = False,
                 name: str | None = None):
        """Run ``fn()`` every ``interval`` seconds (first run at
        ``now + interval``, or at the current instant too with
        ``immediate=True``) until it returns ``False`` or the returned
        handle's ``cancel()`` is called. ``pure=True`` asserts ``fn``
        never creates events, unlocking the heap-root-replace tick path
        (see :class:`Periodic`).

        This is the allocation-free representation of the ubiquitous
        ``while True: yield sim.timeout(interval); body()`` daemon loop;
        the two representations schedule identically (see
        :class:`Periodic`). Under ``REPRO_KERNEL=reference`` the
        generator representation itself is used.

        With ``REPRO_PROFILE`` set, ``fn`` is wrapped to accumulate
        per-callback wall time keyed by ``name`` (see
        :func:`repro.runner.profile.periodic_times`); the wrapper
        passes the return value through, so the ``False``-stop contract
        and purity are unaffected.
        """
        if os.environ.get("REPRO_PROFILE", "") not in ("", "0"):
            from repro.runner.profile import wrap_periodic

            fn = wrap_periodic(fn, name)
        if not self._pooling:
            return _GeneratorPeriodic(self, interval, fn, immediate, name)
        return Periodic(self, interval, fn, immediate=immediate, pure=pure, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _note_stale(self) -> None:
        """Account one newly cancelled heap entry; compact when the lazy
        deletion debt dominates the heap."""
        self._stale += 1
        if self._stale >= self.COMPACT_MIN_STALE and self._stale * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled-timeout entries and re-heapify in place.

        Removed entries are exactly those a pop would discard without
        observable effect, so compaction never changes behaviour — only
        heap size. In-place (slice assignment) so the locals-bound run
        loop keeps seeing the same list object.
        """
        heap = self._heap
        live = [entry for entry in heap
                if not (type(entry[3]) is Timeout and entry[3]._cancelled)]
        removed = len(heap) - len(live)
        if removed:
            for entry in heap:
                ev = entry[3]
                if type(ev) is Timeout and ev._cancelled and not ev._processed:
                    ev.callbacks = None
                    ev._processed = True
                    if self._pooling and sys.getrefcount(ev) <= _POOLABLE_REFS:
                        self._free_timeouts.append(ev)
            heap[:] = live
            heapq.heapify(heap)
        self._stale = 0

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, _, event = heapq.heappop(self._heap)
        self._now = when
        event._process()

    def _batch_tick(self, heap: list, t: float) -> bool:
        """Tick every started pure periodic due at instant ``t`` in one
        pass: one heap scan, callbacks in sequence order, one O(n)
        ``heapify`` — instead of one heapreplace sift per tick.

        Sequence-identical to ticking them one at a time off the heap
        root: at a single instant the pop order of the cohort is its
        sequence order (equal time and priority), each tick claims the
        next sequence number for its rescheduled entry, and pure
        callbacks cannot schedule anything that would interleave. Any
        *other* event sharing the instant could interleave, so the batch
        aborts (returns ``False``, heap untouched) and the caller falls
        back to the one-at-a-time path; dead wakeups of cancelled
        periodics are the exception — a pop would discard them with no
        observable effect, and the scan discards them the same way.

        On an exception from a callback the heap is left at the
        pre-instant state; resuming ``run()`` after a mid-instant
        failure is as undefined as it always was.
        """
        live: list = []
        cohort: list = []
        keep = live.append
        take = cohort.append
        for entry in heap:
            if entry[0] != t:
                keep(entry)
            elif entry[3]._fast:
                take(entry)
            elif type(entry[3]) is Periodic and entry[3]._cancelled:
                entry[3]._processed = True
            else:
                self._batch_abort = t
                return False
        cohort.sort()
        self._now = t
        seq = self._seq
        normal = NORMAL
        for entry in cohort:
            ev = entry[3]
            if ev._cancelled:
                # Cancelled by an earlier member of this same instant;
                # a pop would discard it without claiming a sequence
                # number, so do exactly that.
                ev._processed = True
                continue
            self._seq = seq = seq + 1
            keep((t + ev.interval, normal, seq, ev))
            if ev.fn() is False:
                ev._cancelled = True
                ev._fast = False
                self._nfast -= 1
            if self._seq != seq:
                raise _impure_tick(ev)
        heap[:] = live
        heapify(heap)
        return True

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or an
        ``until`` event triggers (returning its value).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"until={stop_time} is in the past (now={self._now})")

        if not self._pooling:
            # Reference kernel: the pre-overhaul loop, verbatim — one
            # step() call per event with per-iteration stop checks.
            while self._heap:
                if stop_event is not None and stop_event._processed:
                    return stop_event.value
                if self._heap[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self.step()
            return self._run_drained(stop_event, stop_time)

        # Hot loop: locals-bound heap + heap ops, step() inlined, and
        # started pure periodics ticked by replacing the heap root in
        # place (heapreplace: one sift, no pop+push, no _process
        # dispatch). Three specialisations keep per-event stop checks
        # out of the variants that don't need them. _compact mutates
        # self._heap in place, so the local alias stays valid.
        heap = self._heap
        normal = NORMAL
        batch_min = self.BATCH_MIN_FAST
        if stop_event is not None:
            while heap:
                item = heap[0]
                event = item[3]
                if event._fast:
                    if stop_event._processed:
                        return stop_event.value
                    if (self._nfast >= batch_min
                            and self._nfast * 2 >= len(heap)
                            and item[0] != self._batch_abort
                            and self._batch_tick(heap, item[0])):
                        continue
                    self._now = when = item[0]
                    self._seq = seq = self._seq + 1
                    heapreplace(heap, (when + event.interval, normal, seq, event))
                    if event.fn() is False:
                        event._cancelled = True
                        event._fast = False
                        self._nfast -= 1
                    if self._seq != seq:
                        raise _impure_tick(event)
                    continue
                if stop_event._processed:
                    return stop_event.value
                when, _, _, event = heappop(heap)
                # Drop the peek alias before dispatch: a live reference
                # to the popped entry would fail the recycle refcount
                # check and quietly disable Timeout pooling.
                del item
                self._now = when
                event._process()
        elif stop_time != float("inf"):
            while heap:
                item = heap[0]
                event = item[3]
                if event._fast:
                    if item[0] > stop_time:
                        self._now = stop_time
                        return None
                    if (self._nfast >= batch_min
                            and self._nfast * 2 >= len(heap)
                            and item[0] != self._batch_abort
                            and self._batch_tick(heap, item[0])):
                        continue
                    self._now = when = item[0]
                    self._seq = seq = self._seq + 1
                    heapreplace(heap, (when + event.interval, normal, seq, event))
                    if event.fn() is False:
                        event._cancelled = True
                        event._fast = False
                        self._nfast -= 1
                    if self._seq != seq:
                        raise _impure_tick(event)
                    continue
                if item[0] > stop_time:
                    self._now = stop_time
                    return None
                when, _, _, event = heappop(heap)
                # Drop the peek alias before dispatch: a live reference
                # to the popped entry would fail the recycle refcount
                # check and quietly disable Timeout pooling.
                del item
                self._now = when
                event._process()
        else:
            # Drain-everything: no stop checks at all. A heap holding
            # only live periodics would spin forever here — exactly as
            # the equivalent while-True generator loops would.
            while heap:
                item = heap[0]
                event = item[3]
                if event._fast:
                    if (self._nfast >= batch_min
                            and self._nfast * 2 >= len(heap)
                            and item[0] != self._batch_abort
                            and self._batch_tick(heap, item[0])):
                        continue
                    self._now = when = item[0]
                    self._seq = seq = self._seq + 1
                    heapreplace(heap, (when + event.interval, normal, seq, event))
                    if event.fn() is False:
                        event._cancelled = True
                        event._fast = False
                        self._nfast -= 1
                    if self._seq != seq:
                        raise _impure_tick(event)
                    continue
                when, _, _, event = heappop(heap)
                # Drop the peek alias before dispatch: a live reference
                # to the popped entry would fail the recycle refcount
                # check and quietly disable Timeout pooling.
                del item
                self._now = when
                event._process()
        return self._run_drained(stop_event, stop_time)

    def _run_drained(self, stop_event: Event | None, stop_time: float) -> Any:
        """Shared run() epilogue: the heap emptied before any stop."""
        if stop_event is not None:
            if stop_event._processed:
                return stop_event.value
            raise SimulationError("simulation ran out of events before `until` event triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
